"""Exception hierarchy for the SPROUT reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  The subclasses mirror the main subsystems:
schema/storage problems, query-model problems (malformed or unsupported
queries), planning problems (no valid plan of the requested kind), and
probability-computation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Raised for malformed schemas, unknown attributes, or arity mismatches."""


class StorageError(ReproError):
    """Raised by the storage layer (heap files, external sort, catalog)."""


class CatalogError(StorageError):
    """Raised when a table, key, or functional dependency lookup fails."""


class QueryError(ReproError):
    """Raised for malformed conjunctive queries or parse errors."""


class UnsupportedQueryError(QueryError):
    """Raised when a query falls outside the supported class.

    Examples: self-joins that cannot be partitioned into mutually exclusive
    branches, or non-hierarchical queries without a hierarchical FD-reduct
    handed to an exact evaluator that requires tractability.
    """


class NonHierarchicalQueryError(UnsupportedQueryError):
    """Raised when a hierarchical query (or FD-reduct) is required but absent."""


class PlanningError(ReproError):
    """Raised when a requested plan (safe, eager, hybrid, ...) cannot be built."""


class UnsafePlanError(PlanningError):
    """Raised when a safe plan is requested for a query that admits none."""


class ProbabilityError(ReproError):
    """Raised for invalid probabilities or failed confidence computations."""


class NumericalError(ProbabilityError):
    """Raised when a numerically fragile method (e.g. MystiQ's log-sum trick)
    fails at runtime, mirroring the runtime errors reported in Section VII."""

"""Exception hierarchy for the SPROUT reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  The subclasses mirror the main subsystems:
schema/storage problems, query-model problems (malformed or unsupported
queries), planning problems (no valid plan of the requested kind), and
probability-computation problems.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Raised for malformed schemas, unknown attributes, or arity mismatches."""


class StorageError(ReproError):
    """Raised by the storage layer (heap files, external sort, catalog)."""


class CatalogError(StorageError):
    """Raised when a table, key, or functional dependency lookup fails."""


class StorageCorruptionError(StorageError):
    """Raised when an on-disk page or sort-run file fails its integrity check.

    Heap-file pages and external-sort run files carry a length prefix and a
    CRC32 checksum; a truncated write, a flipped byte, or a short read is
    detected at scan time and raised as this class instead of leaking a bare
    ``json.JSONDecodeError`` or silently returning fewer rows.
    """


class SnapshotError(StorageError):
    """Raised when a service snapshot cannot be written or fails verification.

    On the read side this covers a missing/garbled magic header, a length
    mismatch (truncation), and a checksum mismatch (corruption); the service
    catches it at boot and starts cold with a structured warning.  On the
    write side it means the atomic temp-file+rename protocol failed — the
    previous snapshot, if any, is left intact.
    """


class QueryError(ReproError):
    """Raised for malformed conjunctive queries or parse errors."""


class UnsupportedQueryError(QueryError):
    """Raised when a query falls outside the supported class.

    Examples: self-joins that cannot be partitioned into mutually exclusive
    branches, or non-hierarchical queries without a hierarchical FD-reduct
    handed to an exact evaluator that requires tractability.
    """


class NonHierarchicalQueryError(UnsupportedQueryError):
    """Raised when a hierarchical query (or FD-reduct) is required but absent."""


class PlanningError(ReproError):
    """Raised when a requested plan (safe, eager, hybrid, ...) cannot be built."""


class ConfigurationError(PlanningError, ValueError):
    """Raised for malformed configuration knobs (environment variables).

    Every ``REPRO_*`` environment knob is parsed by the one shared parser in
    :mod:`repro.config`, and a malformed value raises this class everywhere —
    at engine construction, at backend selection, and at service start-up —
    with uniform wording.  It derives from both :class:`PlanningError` (the
    historical type engine construction raised for bad knobs) and the
    documented :class:`ValueError`, so both catch styles keep working.
    """


class ServiceError(ReproError):
    """Raised by the query service (:mod:`repro.service`) for request-level
    failures: malformed request bodies, unknown subscriptions, budgets
    outside the server's configured ceiling."""


class ServiceOverloadedError(ServiceError):
    """Raised when admission control rejects a request because the bounded
    refinement queue is full.  The HTTP layer maps it to ``429`` — the
    client should retry after the in-flight work drains."""


class ServiceConnectionError(ServiceError):
    """Raised by :class:`repro.service.ServiceClient` when the HTTP transport
    fails: connection refused/reset, a mid-response drop, or an unparsable
    (truncated) body.  Wraps the underlying socket error so callers deal with
    one structured type instead of raw ``OSError`` flavours; the client's
    retry policy treats it as retryable."""

    def __init__(self, message: str, cause: Optional[BaseException] = None):
        super().__init__(message)
        self.cause = cause


class InjectedFault(ReproError):
    """A scripted failure raised at a named seam by :mod:`repro.faults`.

    Only ever raised when a test installs a :class:`repro.faults.FaultPlan`
    (directly or via ``REPRO_FAULTS``); production code never sees it.  The
    chaos battery asserts that wherever one of these fires, the system
    returns a structured error or a correctly degraded answer — never a hang,
    never an unsound bound.
    """

    def __init__(self, seam: str, call: int):
        super().__init__(f"injected fault at seam {seam!r} (call #{call})")
        self.seam = seam
        self.call = call


class UnsafePlanError(PlanningError):
    """Raised when a safe plan is requested for a query that admits none."""


class ProbabilityError(ReproError):
    """Raised for invalid probabilities or failed confidence computations."""


class ParallelExecutionError(ReproError):
    """Raised when the parallel confidence executor cannot complete its tasks.

    Covers both a task that failed inside a worker process (``task_key`` and
    ``worker_error`` identify the failed work unit and carry the remote
    traceback text) and a worker process that died outright (e.g. killed by
    the OOM killer), in which case the underlying pool is broken and the
    engine discards it so the next call starts a fresh one.  The error is
    raised promptly — a dead worker never causes the driving process to hang.
    """

    def __init__(
        self,
        message: str,
        task_key: Optional[object] = None,
        worker_error: Optional[str] = None,
    ):
        super().__init__(message)
        self.task_key = task_key
        self.worker_error = worker_error


class NumericalError(ProbabilityError):
    """Raised when a numerically fragile method (e.g. MystiQ's log-sum trick)
    fails at runtime, mirroring the runtime errors reported in Section VII."""


class ApproximationBudgetError(ProbabilityError):
    """Raised when an anytime confidence computation exhausts its step budget
    before reaching the requested error guarantee.

    Carries the best bracket obtained so far, so callers can still use the
    partial result (or hand the lineage to the Monte Carlo fallback):
    ``lower``/``upper`` bound the true probability, ``epsilon``/``relative``
    echo the requested budget, and ``steps`` counts the d-tree expansions
    performed.
    """

    def __init__(
        self,
        lower: float,
        upper: float,
        epsilon: float,
        relative: bool = False,
        steps: int = 0,
    ):
        kind = "relative" if relative else "absolute"
        super().__init__(
            f"approximation stopped after {steps} step(s) with bounds "
            f"[{lower:.6g}, {upper:.6g}], short of the {kind} budget {epsilon:.6g}"
        )
        self.lower = lower
        self.upper = upper
        self.epsilon = epsilon
        self.relative = relative
        self.steps = steps

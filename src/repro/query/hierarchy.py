"""Hierarchical queries and their tree representations (Section II-B).

A Boolean conjunctive query is *hierarchical* if for any two join attributes
that occur in the same table, one of them participates in all joins of the
other (Definition II.1).  Hierarchical queries admit a tree representation
whose leaves are tables and whose inner nodes are join attributes occurring in
all their descendants (Fig. 3); this tree drives both the signature derivation
(Fig. 4) and the safe-plan baseline.

For non-Boolean queries the attributes in the projection list are not used
when deciding the hierarchical property (their values are fixed within a bag
of duplicate answer tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import NonHierarchicalQueryError
from repro.query.conjunctive import Atom, ConjunctiveQuery

__all__ = [
    "HierarchyNode",
    "relevant_join_attributes",
    "is_hierarchical",
    "build_hierarchy",
    "witness_non_hierarchical",
]


def relevant_join_attributes(query: ConjunctiveQuery) -> Set[str]:
    """Join attributes that matter for the hierarchical property.

    These are the attributes occurring in at least two atoms, minus the
    projection (head) attributes.
    """
    return query.join_attributes() - query.head_attributes()


def witness_non_hierarchical(query: ConjunctiveQuery) -> Optional[Tuple[str, str, str]]:
    """Return a witness ``(table, attribute_a, attribute_b)`` violating Definition II.1.

    ``None`` means the query is hierarchical.  The witness is a table in which
    both attributes occur although neither participates in all joins of the
    other — the prototypical hard-query pattern of the Introduction.
    """
    relevant = relevant_join_attributes(query)
    for atom in query.atoms:
        attributes = sorted(atom.attribute_set & relevant)
        for i, first in enumerate(attributes):
            first_tables = {a.table for a in query.atoms_with(first)}
            for second in attributes[i + 1 :]:
                second_tables = {a.table for a in query.atoms_with(second)}
                if not (first_tables <= second_tables or second_tables <= first_tables):
                    return (atom.table, first, second)
    return None


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """Whether ``query`` is hierarchical (Definition II.1, head attributes excluded)."""
    return witness_non_hierarchical(query) is None


@dataclass(frozen=True)
class HierarchyNode:
    """A node of the tree representation of a hierarchical query.

    Inner nodes carry the set of join attributes occurring in every atom below
    them (cumulative, i.e. including the attributes of their ancestors, as in
    Fig. 3 where the child of the ``ckey`` root is labelled ``ckey, okey``).
    Leaves additionally carry their atom.
    """

    attributes: FrozenSet[str]
    children: Tuple["HierarchyNode", ...] = ()
    atom: Optional[Atom] = None

    @property
    def is_leaf(self) -> bool:
        return self.atom is not None

    def tables(self) -> List[str]:
        """Tables below this node, in left-to-right (preorder) order."""
        if self.is_leaf:
            return [self.atom.table]
        result: List[str] = []
        for child in self.children:
            result.extend(child.tables())
        return result

    def leaves(self) -> List["HierarchyNode"]:
        if self.is_leaf:
            return [self]
        result: List["HierarchyNode"] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def find_leaf(self, table: str) -> Optional["HierarchyNode"]:
        for leaf in self.leaves():
            if leaf.atom.table == table:
                return leaf
        return None

    def pretty(self, indent: int = 0) -> str:
        """Indented rendering of the tree (used by explain/examples)."""
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}{self.atom}"
        label = ", ".join(sorted(self.attributes)) or "∅"
        lines = [f"{pad}[{label}]"]
        lines.extend(child.pretty(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()


def build_hierarchy(query: ConjunctiveQuery) -> HierarchyNode:
    """Build the tree representation of a hierarchical query.

    Raises :class:`NonHierarchicalQueryError` (with a witness) if the query is
    not hierarchical.  The construction follows the standard recursion: the
    root collects the join attributes shared by every atom; removing them
    splits the remaining atoms into connected components (via the remaining
    join attributes), which become the children.
    """
    witness = witness_non_hierarchical(query)
    if witness is not None:
        table, first, second = witness
        raise NonHierarchicalQueryError(
            f"query {query.name!r} is not hierarchical: attributes {first!r} and "
            f"{second!r} co-occur in {table!r} but neither joins everywhere the other does"
        )
    relevant = relevant_join_attributes(query)
    return _build(list(query.atoms), frozenset(), relevant, query.name)


def _build(
    atoms: List[Atom],
    inherited: FrozenSet[str],
    relevant: Set[str],
    query_name: str,
) -> HierarchyNode:
    if len(atoms) == 1:
        return HierarchyNode(attributes=inherited, atom=atoms[0])

    per_atom = {atom.table: atom.attribute_set & relevant for atom in atoms}
    common: FrozenSet[str] = frozenset.intersection(
        *(frozenset(attributes) for attributes in per_atom.values())
    )
    node_attributes = inherited | common

    remaining = {
        table: attributes - node_attributes for table, attributes in per_atom.items()
    }
    components = _connected_components(atoms, remaining)
    if len(components) == 1:
        # All atoms remain connected through attributes that are not shared by
        # everyone — the non-hierarchical pattern.  is_hierarchical() should
        # have caught this, so reaching here indicates an inconsistency.
        raise NonHierarchicalQueryError(
            f"query {query_name!r}: cannot split atoms "
            f"{[a.table for a in atoms]} into hierarchy components"
        )
    children = tuple(
        _build(component, node_attributes, relevant, query_name) for component in components
    )
    return HierarchyNode(attributes=node_attributes, children=children)


def _connected_components(
    atoms: List[Atom], remaining: Dict[str, FrozenSet[str]]
) -> List[List[Atom]]:
    """Group atoms connected through shared (remaining) join attributes."""
    parent = {atom.table: atom.table for atom in atoms}

    def find(table: str) -> str:
        while parent[table] != table:
            parent[table] = parent[parent[table]]
            table = parent[table]
        return table

    def union(first: str, second: str) -> None:
        root_first, root_second = find(first), find(second)
        if root_first != root_second:
            parent[root_first] = root_second

    attribute_owner: Dict[str, str] = {}
    for atom in atoms:
        for attribute in remaining[atom.table]:
            if attribute in attribute_owner:
                union(attribute_owner[attribute], atom.table)
            else:
                attribute_owner[attribute] = atom.table

    groups: Dict[str, List[Atom]] = {}
    for atom in atoms:
        groups.setdefault(find(atom.table), []).append(atom)
    # Keep the original atom order inside and across components.
    ordered: List[List[Atom]] = []
    seen: Set[str] = set()
    for atom in atoms:
        root = find(atom.table)
        if root not in seen:
            seen.add(root)
            ordered.append(groups[root])
    return ordered

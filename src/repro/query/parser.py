"""A small SQL-ish parser for conjunctive queries with ``conf()``.

SPROUT extends PostgreSQL's SQL with a ``conf()`` aggregate that requests
exact probability computation for the distinct tuples of a query answer.  The
examples in this repository accept the analogous subset:

.. code-block:: sql

    SELECT odate, conf()
    FROM cust, ord, item
    WHERE cname = 'Joe' AND discount > 0

Restrictions (matching the paper's query class): conjunctive conditions only,
equality joins expressed implicitly through shared attribute names (or
explicitly as ``r.a = s.a`` with the same attribute name on both sides), no
aggregations other than ``conf()``, no self-joins.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import QueryError
from repro.algebra.expressions import Comparison, Predicate, conjunction_of
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.storage.catalog import Catalog

__all__ = ["ParsedQuery", "parse_query"]

_SELECT_RE = re.compile(
    r"^\s*select\s+(?P<select>.*?)\s+from\s+(?P<from>.*?)(?:\s+where\s+(?P<where>.*?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_CONDITION_RE = re.compile(
    r"^\s*(?P<left>[\w.]+)\s*(?P<op><=|>=|!=|<>|=|<|>)\s*(?P<right>.+?)\s*$"
)


@dataclass(frozen=True)
class ParsedQuery:
    """Result of parsing: the conjunctive query plus the conf() flag."""

    query: ConjunctiveQuery
    wants_confidence: bool
    distinct: bool


def parse_query(sql: str, catalog: Catalog, name: str = "query") -> ParsedQuery:
    """Parse ``sql`` against ``catalog`` into a :class:`ConjunctiveQuery`.

    The catalog supplies each table's attribute list (atoms use the full data
    schema, as the paper's TPC-H atoms do).  Attribute references may be
    qualified (``ord.odate``); the qualifier is validated and dropped because
    the query model identifies join attributes by name.
    """
    match = _SELECT_RE.match(sql)
    if match is None:
        raise QueryError(f"cannot parse query: {sql!r}")

    select_clause = match.group("select").strip()
    from_clause = match.group("from").strip()
    where_clause = (match.group("where") or "").strip()

    distinct = False
    if select_clause.lower().startswith("distinct "):
        distinct = True
        select_clause = select_clause[len("distinct ") :].strip()

    tables = [t.strip() for t in from_clause.split(",") if t.strip()]
    if not tables:
        raise QueryError("FROM clause lists no tables")
    atoms = []
    table_lookup: Dict[str, str] = {}
    for table in tables:
        resolved = _resolve_table(table, catalog)
        table_lookup[table.lower()] = resolved
        atoms.append(Atom(resolved, catalog.table(resolved).schema.data_names()))

    known_attributes = {attr for atom in atoms for attr in atom.attributes}

    wants_confidence = False
    projection: List[str] = []
    for item in _split_commas(select_clause):
        item = item.strip()
        if not item:
            continue
        if item.lower() in ("conf()", "conf ( )"):
            wants_confidence = True
            continue
        if item == "*":
            raise QueryError("SELECT * is not supported; list attributes explicitly")
        projection.append(_resolve_attribute(item, known_attributes, table_lookup))

    selections: List[Predicate] = []
    if where_clause:
        for condition in re.split(r"\s+and\s+", where_clause, flags=re.IGNORECASE):
            predicate = _parse_condition(condition, known_attributes, table_lookup)
            if predicate is not None:
                selections.append(predicate)

    query = ConjunctiveQuery(
        name,
        atoms,
        projection=projection,
        selections=conjunction_of(selections),
    )
    return ParsedQuery(query=query, wants_confidence=wants_confidence, distinct=distinct)


def _split_commas(text: str) -> List[str]:
    """Split on commas that are not inside parentheses."""
    parts: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += char
    parts.append(current)
    return parts


def _resolve_table(name: str, catalog: Catalog) -> str:
    if catalog.has_table(name):
        return name
    for candidate in catalog.table_names():
        if candidate.lower() == name.lower():
            return candidate
    raise QueryError(f"unknown table {name!r}; catalog has {catalog.table_names()}")


def _resolve_attribute(
    reference: str, known_attributes: Iterable[str], table_lookup: Dict[str, str]
) -> str:
    reference = reference.strip()
    if "." in reference:
        qualifier, _, attribute = reference.partition(".")
        if qualifier.lower() not in table_lookup:
            raise QueryError(f"unknown table qualifier {qualifier!r} in {reference!r}")
    else:
        attribute = reference
    matches = [a for a in known_attributes if a.lower() == attribute.lower()]
    if not matches:
        raise QueryError(f"unknown attribute {reference!r}")
    return matches[0]


def _parse_literal(text: str) -> object:
    text = text.strip()
    if (text.startswith("'") and text.endswith("'")) or (
        text.startswith('"') and text.endswith('"')
    ):
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    raise QueryError(f"cannot parse literal {text!r} (strings need quotes)")


def _parse_condition(
    condition: str, known_attributes: Iterable[str], table_lookup: Dict[str, str]
) -> Optional[Predicate]:
    match = _CONDITION_RE.match(condition)
    if match is None:
        raise QueryError(f"cannot parse condition {condition!r}")
    left = match.group("left")
    op = match.group("op")
    right = match.group("right").strip()

    left_attribute = _resolve_attribute(left, known_attributes, table_lookup)
    right_is_attribute = bool(re.fullmatch(r"[\w.]+", right)) and not re.fullmatch(
        r"[-+]?\d+(\.\d+)?", right
    ) and not (right.lower() in ("true", "false"))
    if right_is_attribute and not (right.startswith("'") or right.startswith('"')):
        try:
            right_attribute = _resolve_attribute(right, known_attributes, table_lookup)
        except QueryError:
            right_attribute = None
        if right_attribute is not None:
            if op != "=":
                raise QueryError(
                    f"inequality joins are not supported (condition {condition!r})"
                )
            if right_attribute != left_attribute:
                raise QueryError(
                    "join conditions must equate identically named attributes "
                    f"(got {left_attribute!r} = {right_attribute!r}); rename columns "
                    "in the schema so join attributes share a name"
                )
            # A join condition on a shared attribute name is implicit in the
            # conjunctive-query model — nothing to add.
            return None
    return Comparison(left_attribute, op, _parse_literal(right))

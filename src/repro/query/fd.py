"""Functional dependencies: closure, chase, and FD-reducts (Section IV).

In a tuple-independent probabilistic database an FD holds if and only if it
holds in every possible world, so the classical notions apply unchanged.  The
paper uses FDs in two ways:

* to rewrite (possibly non-hierarchical, non-Boolean) queries into Boolean
  hierarchical **FD-reducts** whose signatures can process the original query
  (Definition IV.1, Proposition IV.5), and
* to refine signatures — attributes functionally determined by a parent node
  turn many-to-many ``*`` relationships into one-to-many ones, reducing the
  number of scans the confidence operator needs (Fig. 13).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.storage.catalog import Catalog, FunctionalDependency

__all__ = [
    "closure",
    "chase_is_hierarchical_possible",
    "chased_query",
    "fd_reduct",
    "fds_from_catalog",
]


def closure(attributes: Iterable[str], fds: Sequence[FunctionalDependency]) -> FrozenSet[str]:
    """Attribute closure under a set of FDs (the standard fixpoint chase).

    FDs are applied regardless of their table of origin: per Definition IV.1
    the closure extends an atom's attribute set with attributes functionally
    implied through join attributes (e.g. the FD ``Ord: okey -> ckey`` extends
    ``Item(okey, discount)`` with ``ckey`` because the shared ``okey`` value
    determines the same ``ckey`` in every world).
    """
    result: Set[str] = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.determinant <= result and not fd.dependent <= result:
                result |= fd.dependent
                changed = True
    return frozenset(result)


def fds_from_catalog(catalog: Catalog, tables: Iterable[str]) -> List[FunctionalDependency]:
    """FDs relevant to the given tables (keys registered in the catalog)."""
    return catalog.functional_dependencies(tables)


def fd_reduct(
    query: ConjunctiveQuery,
    fds: Sequence[FunctionalDependency],
    name: str = None,
) -> ConjunctiveQuery:
    """The FD-reduct of ``query`` under ``fds`` (Definition IV.1).

    The reduct is the Boolean query whose atoms carry the attribute closures
    minus the closure of the projection list: fixing the projection values
    (equal within a bag of duplicates of the original query) makes attributes
    functionally implied by them constant, so they are discarded to obtain a
    simpler, more precise signature (Example IV.4).
    """
    head_closure = closure(query.projection, fds)
    atoms = []
    for atom in query.atoms:
        extended = closure(atom.attributes, fds) - head_closure
        # Keep a deterministic attribute order: original attributes first,
        # then the attributes added by the closure, alphabetically.
        original = [a for a in atom.attributes if a in extended]
        added = sorted(extended - set(original))
        atoms.append(Atom(atom.table, tuple(original + added)))
    # The reduct is only used for its structure (hierarchy test, signature);
    # selection conjuncts whose attributes were discarded with the head closure
    # are dropped — they cannot influence either.
    remaining_attributes = set()
    for atom in atoms:
        remaining_attributes |= atom.attribute_set
    from repro.algebra.expressions import conjunction_of

    kept_selections = conjunction_of(
        [
            predicate
            for predicate in query.selection_predicates()
            if predicate.attributes() <= remaining_attributes
        ]
    )
    return ConjunctiveQuery(
        name or f"fd-reduct({query.name})",
        atoms,
        projection=(),
        selections=kept_selections,
    )


def chased_query(
    query: ConjunctiveQuery,
    fds: Sequence[FunctionalDependency],
    name: str = None,
) -> ConjunctiveQuery:
    """The query with every atom extended to its attribute closure.

    Unlike the FD-reduct, the projection list is kept and the head closure is
    *not* subtracted, so the chased query still mentions every physical join
    attribute.  It has the same answers as the original query in every
    possible world (the added attributes are functionally determined through
    shared join attributes) and, by Proposition IV.5, it is hierarchical
    whenever any sequence of chase steps can make the query hierarchical.
    The eager/hybrid planners build their join trees from this query: the tree
    reflects the tractable structure while remaining physically executable.
    """
    atoms = []
    for atom in query.atoms:
        extended = closure(atom.attributes, fds)
        original = [a for a in atom.attributes]
        added = sorted(extended - set(original))
        atoms.append(Atom(atom.table, tuple(original + added)))
    return ConjunctiveQuery(
        name or f"chase({query.name})",
        atoms,
        projection=query.projection,
        selections=query.selections,
    )


def chase_is_hierarchical_possible(
    query: ConjunctiveQuery, fds: Sequence[FunctionalDependency]
) -> bool:
    """Whether *some* sequence of chase steps can make the query hierarchical.

    By Proposition IV.5 it suffices to check the fixpoint of the chase, i.e.
    the FD-reduct: if any sequence of chase steps yields a hierarchical query
    then the FD-reduct is hierarchical.  Kept as a thin, well-named wrapper so
    call sites read like the paper.
    """
    from repro.query.hierarchy import is_hierarchical

    return is_hierarchical(fd_reduct(query, fds))

"""Conjunctive queries without self-joins.

The paper considers queries of the form ``π_A σ_φ (R1 ⋈ ... ⋈ Rn)`` where

* ``A`` is the projection (selection-attribute) list,
* ``φ`` is a conjunction of comparisons between attributes and constants, and
* joins are natural equi-joins — join attributes carry the same name in the
  joined tables.

:class:`ConjunctiveQuery` is the static description of such a query; it knows
nothing about data.  The hierarchy test, signature derivation, FD-reduct, and
the planners all consume this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import QueryError, UnsupportedQueryError
from repro.algebra.expressions import Conjunction, Predicate, TruePredicate, conjunction_of

__all__ = ["Atom", "ConjunctiveQuery"]


@dataclass(frozen=True)
class Atom:
    """One relation occurrence ``R(A)`` in the join query."""

    table: str
    attributes: Tuple[str, ...]

    def __init__(self, table: str, attributes: Iterable[str]):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "attributes", tuple(attributes))
        if len(set(self.attributes)) != len(self.attributes):
            raise QueryError(f"atom {table!r} lists a duplicate attribute")

    @property
    def attribute_set(self) -> FrozenSet[str]:
        return frozenset(self.attributes)

    def with_attributes(self, attributes: Iterable[str]) -> "Atom":
        return Atom(self.table, attributes)

    def __str__(self) -> str:
        return f"{self.table}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query without self-joins.

    Parameters
    ----------
    name:
        Identifier used in experiment reports (e.g. ``"Q18"`` or ``"B17"``).
    atoms:
        The relation occurrences.  Relation names must be distinct (no
        self-joins); use :meth:`allowing_self_joins` / the rewrite module for
        the mutually-exclusive partition case of Section IV.
    projection:
        The selection-attribute list ``A``.  Empty means a Boolean query.
    selections:
        Conjunction of unary predicates (attribute–constant comparisons).
    """

    name: str
    atoms: Tuple[Atom, ...]
    projection: Tuple[str, ...] = ()
    selections: Predicate = field(default_factory=TruePredicate)

    def __init__(
        self,
        name: str,
        atoms: Iterable[Atom],
        projection: Iterable[str] = (),
        selections: Optional[Predicate] = None,
        _allow_self_joins: bool = False,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "projection", tuple(projection))
        object.__setattr__(self, "selections", selections or TruePredicate())
        if not self.atoms:
            raise QueryError(f"query {name!r} has no atoms")
        tables = [atom.table for atom in self.atoms]
        if not _allow_self_joins and len(set(tables)) != len(tables):
            raise UnsupportedQueryError(
                f"query {name!r} contains a self-join; "
                "use repro.query.rewrite.partition_self_join for the mutually "
                "exclusive case"
            )
        all_attributes = self.attributes()
        for attribute in self.projection:
            if attribute not in all_attributes:
                raise QueryError(
                    f"projection attribute {attribute!r} does not occur in any atom"
                )
        for attribute in self.selections.attributes():
            if attribute not in all_attributes:
                raise QueryError(
                    f"selection attribute {attribute!r} does not occur in any atom"
                )

    # -- basic accessors ---------------------------------------------------------

    def table_names(self) -> List[str]:
        return [atom.table for atom in self.atoms]

    def atom_of(self, table: str) -> Atom:
        for atom in self.atoms:
            if atom.table == table:
                return atom
        raise QueryError(f"query {self.name!r} has no atom for table {table!r}")

    def attributes(self) -> Set[str]:
        """All attributes occurring in the query."""
        result: Set[str] = set()
        for atom in self.atoms:
            result |= atom.attribute_set
        return result

    def attributes_of(self, table: str) -> FrozenSet[str]:
        return self.atom_of(table).attribute_set

    def is_boolean(self) -> bool:
        """True if the projection list is empty (``π_∅``)."""
        return not self.projection

    def join_attributes(self) -> Set[str]:
        """Attributes occurring in at least two atoms (the join attributes)."""
        counts: Dict[str, int] = {}
        for atom in self.atoms:
            for attribute in atom.attribute_set:
                counts[attribute] = counts.get(attribute, 0) + 1
        return {attribute for attribute, count in counts.items() if count >= 2}

    def atoms_with(self, attribute: str) -> List[Atom]:
        """Atoms whose schema contains ``attribute`` (the paper's ``sg``)."""
        return [atom for atom in self.atoms if attribute in atom.attribute_set]

    def head_attributes(self) -> FrozenSet[str]:
        """Projection attributes (the paper's ``A0``)."""
        return frozenset(self.projection)

    def selection_predicates(self) -> List[Predicate]:
        """The individual conjuncts of the selection condition."""
        if isinstance(self.selections, TruePredicate):
            return []
        if isinstance(self.selections, Conjunction):
            return list(self.selections.parts)
        return [self.selections]

    def selections_on(self, table: str) -> Predicate:
        """The conjuncts of the selection condition that refer only to ``table``."""
        attributes = self.attributes_of(table)
        parts = [
            predicate
            for predicate in self.selection_predicates()
            if predicate.attributes() <= attributes
        ]
        return conjunction_of(parts)

    def uncovered_selections(self) -> List[Predicate]:
        """Selection conjuncts that do not fit within a single atom.

        The paper's query class only has unary (per-table) selection
        predicates; conjuncts spanning several tables cannot be pushed to a
        base table and are rejected by the engines rather than silently
        dropped.
        """
        return [
            predicate
            for predicate in self.selection_predicates()
            if not any(
                predicate.attributes() <= atom.attribute_set for atom in self.atoms
            )
        ]

    # -- derived queries -----------------------------------------------------------

    def boolean_version(self, name: Optional[str] = None) -> "ConjunctiveQuery":
        """The Boolean query obtained by dropping the projection list."""
        return ConjunctiveQuery(
            name or f"B({self.name})",
            self.atoms,
            projection=(),
            selections=self.selections,
        )

    def with_projection(
        self, projection: Iterable[str], name: Optional[str] = None
    ) -> "ConjunctiveQuery":
        return ConjunctiveQuery(
            name or self.name, self.atoms, projection=projection, selections=self.selections
        )

    def with_atoms(self, atoms: Iterable[Atom], name: Optional[str] = None) -> "ConjunctiveQuery":
        return ConjunctiveQuery(
            name or self.name, atoms, projection=self.projection, selections=self.selections
        )

    def restricted_to(
        self, tables: Iterable[str], name: Optional[str] = None
    ) -> "ConjunctiveQuery":
        """Subquery over a subset of the tables (Proposition V.5: still hierarchical)."""
        wanted = set(tables)
        atoms = [atom for atom in self.atoms if atom.table in wanted]
        if not atoms:
            raise QueryError(f"restriction of {self.name!r} to {sorted(wanted)} is empty")
        remaining_attributes: Set[str] = set()
        for atom in atoms:
            remaining_attributes |= atom.attribute_set
        projection = tuple(a for a in self.projection if a in remaining_attributes)
        parts = [
            predicate
            for predicate in self.selection_predicates()
            if predicate.attributes() <= remaining_attributes
        ]
        return ConjunctiveQuery(
            name or f"{self.name}|{'+'.join(sorted(wanted))}",
            atoms,
            projection=projection,
            selections=conjunction_of(parts),
        )

    # -- presentation -----------------------------------------------------------------

    def __str__(self) -> str:
        head = ", ".join(self.projection) if self.projection else "∅"
        body = " ⋈ ".join(str(atom) for atom in self.atoms)
        selection = str(self.selections)
        if selection == "true":
            return f"π[{head}]({body})"
        return f"π[{head}] σ[{selection}]({body})"

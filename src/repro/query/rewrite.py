"""Query rewritings (Section IV): FD-reducts, effective signatures, self-joins.

The planner never works on the user's query directly when functional
dependencies are available: it derives the query's *effective signature* from
the hierarchical FD-reduct and uses that signature to process the answer of
the original query.  This module bundles those rewriting entry points, plus
the mutually-exclusive self-join partition rewrite mentioned at the end of
Section IV (used by TPC-H query 7's two Nation copies and query 19's disjoint
disjuncts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import NonHierarchicalQueryError, UnsupportedQueryError
from repro.algebra.expressions import Predicate
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.fd import fd_reduct
from repro.query.hierarchy import build_hierarchy, is_hierarchical
from repro.query.signature import Signature, signature_from_tree, signature_of_query
from repro.storage.catalog import Catalog, FunctionalDependency

__all__ = [
    "effective_signature",
    "effective_boolean_query",
    "is_tractable",
    "SelfJoinPartition",
    "partition_self_join",
]


def effective_boolean_query(
    query: ConjunctiveQuery, fds: Sequence[FunctionalDependency]
) -> ConjunctiveQuery:
    """The Boolean hierarchical query whose signature processes ``query``.

    With FDs this is the FD-reduct (Definition IV.1); without FDs it is simply
    the Boolean version of the query.  The result is *not* guaranteed to be
    hierarchical — callers check with :func:`repro.query.hierarchy.is_hierarchical`.
    """
    if fds:
        return fd_reduct(query, fds)
    return query.boolean_version()


def is_tractable(query: ConjunctiveQuery, fds: Sequence[FunctionalDependency] = ()) -> bool:
    """Whether exact confidence computation is known to be in PTIME for ``query``.

    True if the query itself is hierarchical (head attributes excluded), or if
    its FD-reduct under ``fds`` is hierarchical.
    """
    if is_hierarchical(query):
        return True
    if fds and is_hierarchical(fd_reduct(query, fds)):
        return True
    return False


def effective_signature(
    query: ConjunctiveQuery,
    fds: Sequence[FunctionalDependency] = (),
    table_attributes: Optional[Mapping[str, Iterable[str]]] = None,
) -> Signature:
    """Signature used by the confidence operator to process ``query``.

    With FDs, the signature is derived from the hierarchical FD-reduct but the
    original projection attributes still count as "fixed" when deciding where
    a ``*`` can be dropped (within one bag of duplicates the projection values
    are constant, and anything they functionally determine is constant too).
    Raises :class:`NonHierarchicalQueryError` if neither the query nor its
    FD-reduct is hierarchical.
    """
    reduct = effective_boolean_query(query, fds)
    if is_hierarchical(reduct):
        tree = build_hierarchy(reduct)
        return signature_from_tree(
            tree,
            head_attributes=query.head_attributes(),
            fds=fds,
            table_attributes=table_attributes,
            atom_attributes={atom.table: atom.attribute_set for atom in reduct.atoms},
        )
    if is_hierarchical(query):
        # The reduct should never be "less hierarchical" than the query
        # (Proposition IV.5); fall back defensively to the plain signature.
        return signature_of_query(query, fds=fds, table_attributes=table_attributes)
    raise NonHierarchicalQueryError(
        f"query {query.name!r} is not hierarchical and its FD-reduct is not either; "
        "exact confidence computation is #P-hard for this query in general"
    )


def catalog_table_attributes(catalog: Catalog, tables: Iterable[str]) -> Dict[str, List[str]]:
    """Full data-attribute sets of the given tables as recorded in the catalog."""
    result: Dict[str, List[str]] = {}
    for table in tables:
        if catalog.has_table(table):
            result[table] = catalog.table(table).schema.data_names()
    return result


# ---------------------------------------------------------------------------
# Self-joins with mutually exclusive partitions (Section IV, last paragraph)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelfJoinPartition:
    """One partition of a self-joined table: an alias plus its selection."""

    base_table: str
    alias: str
    predicate: Predicate


def partition_self_join(
    name: str,
    partitions: Sequence[SelfJoinPartition],
    other_atoms: Sequence[Atom],
    alias_attributes: Mapping[str, Iterable[str]],
    projection: Iterable[str] = (),
    selections: Optional[Predicate] = None,
) -> ConjunctiveQuery:
    """Rewrite a self-join whose branches are mutually exclusive.

    The caller asserts that the partition predicates select pairwise disjoint
    sets of tuples (the paper's condition that φ and ψ are mutually
    exclusive); under that assumption the partitions behave like distinct
    tuple-independent tables and the query can be processed as if it had no
    self-join.  The returned query uses the aliases as table names; the engine
    materialises each alias by filtering the base table (sharing the original
    variables, which is sound because the partitions never contribute the same
    tuple).
    """
    if len({p.alias for p in partitions}) != len(partitions):
        raise UnsupportedQueryError("self-join partitions must use distinct aliases")
    if len({p.base_table for p in partitions}) != 1:
        raise UnsupportedQueryError("self-join partitions must share one base table")
    atoms = [Atom(p.alias, alias_attributes[p.alias]) for p in partitions]
    atoms.extend(other_atoms)
    return ConjunctiveQuery(
        name,
        atoms,
        projection=projection,
        selections=selections,
    )

"""Query model: conjunctive queries, hierarchy, signatures, FDs, rewritings.

The static-analysis layer of the reproduction (Sections III–IV of the
paper).  Submodules:

* :mod:`repro.query.conjunctive` — the query class: conjunctive queries
  without self-joins (:class:`Atom`, :class:`ConjunctiveQuery`), plus a
  textual :mod:`repro.query.parser`.
* :mod:`repro.query.hierarchy` — the hierarchical-query test and the
  hierarchy tree that safe/eager plans are shaped by.
* :mod:`repro.query.signature` — query signatures (``Cust(Ord Item*)*``
  -style expressions) that drive the confidence operator, and the 1scan
  property that decides how many sequential scans it needs.
* :mod:`repro.query.fd` / :mod:`repro.query.rewrite` — functional
  dependencies, the chase, and the FD-reduct rewriting that makes more
  queries tractable (Section IV); :func:`repro.query.rewrite.is_tractable`
  is the router between the exact operator paths and the d-tree engine.

See ``docs/architecture.md`` for how this layer feeds the planners.
"""

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.fd import chase_is_hierarchical_possible, closure, fd_reduct, fds_from_catalog
from repro.query.hierarchy import (
    HierarchyNode,
    build_hierarchy,
    is_hierarchical,
    relevant_join_attributes,
    witness_non_hierarchical,
)
from repro.query.parser import ParsedQuery, parse_query
from repro.query.rewrite import (
    SelfJoinPartition,
    catalog_table_attributes,
    effective_boolean_query,
    effective_signature,
    is_tractable,
    partition_self_join,
)
from repro.query.signature import (
    ConcatSig,
    OneScanTreeNode,
    Signature,
    StarSig,
    TableSig,
    aggregate_starred_table,
    has_one_scan_property,
    minimal_cover,
    num_scans,
    one_scan_tree,
    parse_signature,
    replace_with_leftmost_table,
    restrict_signature,
    signature_from_tree,
    signature_of_query,
    sort_table_order,
    starred_tables,
)

__all__ = [
    "Atom",
    "ConcatSig",
    "ConjunctiveQuery",
    "HierarchyNode",
    "OneScanTreeNode",
    "ParsedQuery",
    "SelfJoinPartition",
    "Signature",
    "StarSig",
    "TableSig",
    "aggregate_starred_table",
    "build_hierarchy",
    "catalog_table_attributes",
    "chase_is_hierarchical_possible",
    "closure",
    "effective_boolean_query",
    "effective_signature",
    "fd_reduct",
    "fds_from_catalog",
    "has_one_scan_property",
    "is_hierarchical",
    "is_tractable",
    "minimal_cover",
    "num_scans",
    "one_scan_tree",
    "parse_query",
    "parse_signature",
    "partition_self_join",
    "relevant_join_attributes",
    "replace_with_leftmost_table",
    "restrict_signature",
    "signature_from_tree",
    "signature_of_query",
    "sort_table_order",
    "starred_tables",
    "witness_non_hierarchical",
]

"""Query signatures (Section III) and their static properties (Section V.C).

A signature describes the nesting structure of the 1OF factorisation of the
lineage of a hierarchical query: ``R`` (one tuple/variable of table R per
group), ``α*`` (several independent groups factored according to α), and
concatenation ``αβ`` (a pair of independent sub-formulas).  Signatures drive
everything the confidence operator does statically:

* how many scans are needed (:func:`num_scans`, Definition V.8 and
  Proposition V.10),
* the sort order of the operator's input (preorder of the 1scanTree),
* which aggregations can be pushed past joins (minimal covers,
  Definition III.3).

Signatures are derived from the hierarchy tree with the rules of Fig. 4,
refined by functional dependencies: a node loses its ``*`` when the attributes
of its parent (together with the projection attributes, which are constant
within a bag of duplicates) functionally determine it.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set

from repro.errors import QueryError
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.fd import closure
from repro.query.hierarchy import HierarchyNode, build_hierarchy
from repro.storage.catalog import FunctionalDependency

__all__ = [
    "Signature",
    "TableSig",
    "StarSig",
    "ConcatSig",
    "parse_signature",
    "signature_of_query",
    "signature_from_tree",
    "has_one_scan_property",
    "num_scans",
    "starred_tables",
    "aggregate_starred_table",
    "fully_starred",
    "minimal_cover",
    "sort_table_order",
    "OneScanTreeNode",
    "one_scan_tree",
    "restrict_signature",
    "replace_with_leftmost_table",
]


class Signature(abc.ABC):
    """Abstract base of the three signature forms of Definition III.1."""

    @abc.abstractmethod
    def tables(self) -> List[str]:
        """Tables mentioned, in left-to-right order."""

    @abc.abstractmethod
    def __str__(self) -> str:
        ...

    def __repr__(self) -> str:
        return f"Signature[{self}]"

    def __eq__(self, other) -> bool:
        return isinstance(other, Signature) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))

    def table_set(self) -> FrozenSet[str]:
        return frozenset(self.tables())

    def top_level_parts(self) -> List["Signature"]:
        """The concatenation parts at the top level (a single part for non-concat)."""
        return [self]

    def subexpressions(self) -> List["Signature"]:
        """All subexpressions including self (preorder)."""
        return [self]


class TableSig(Signature):
    """A table name: exactly one tuple (variable) of this table per group."""

    __slots__ = ("table",)

    def __init__(self, table: str):
        self.table = table

    def tables(self) -> List[str]:
        return [self.table]

    def __str__(self) -> str:
        return self.table


class StarSig(Signature):
    """``α*``: several independent groups, each factored according to ``α``.

    Nested stars collapse: ``(α*)*`` is equivalent to ``α*`` (Section III), so
    the constructor never wraps a StarSig in another StarSig.
    """

    __slots__ = ("inner",)

    def __new__(cls, inner: Signature):
        if isinstance(inner, StarSig):
            return inner
        instance = super().__new__(cls)
        return instance

    def __init__(self, inner: Signature):
        if isinstance(inner, StarSig):
            return  # __new__ returned the existing instance
        self.inner = inner

    def tables(self) -> List[str]:
        return self.inner.tables()

    def __str__(self) -> str:
        inner = str(self.inner)
        if isinstance(self.inner, TableSig):
            return f"{inner}*"
        return f"({inner})*"

    def top_level_parts(self) -> List[Signature]:
        return [self]

    def subexpressions(self) -> List[Signature]:
        return [self] + self.inner.subexpressions()


class ConcatSig(Signature):
    """Concatenation ``α1 α2 ... αn``: independent sub-formulas combined by AND."""

    __slots__ = ("parts",)

    def __new__(cls, parts: Iterable[Signature]):
        flattened: List[Signature] = []
        for part in parts:
            if isinstance(part, ConcatSig):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) == 1:
            return flattened[0]
        instance = super().__new__(cls)
        instance.parts = tuple(flattened)
        return instance

    def __init__(self, parts: Iterable[Signature]):
        # parts already set in __new__ (unless __new__ returned a single part).
        if not hasattr(self, "parts"):
            return
        if not self.parts:
            raise QueryError("empty signature concatenation")

    def tables(self) -> List[str]:
        result: List[str] = []
        for part in self.parts:
            result.extend(part.tables())
        return result

    def __str__(self) -> str:
        rendered = []
        for part in self.parts:
            text = str(part)
            if isinstance(part, ConcatSig):
                text = f"({text})"
            rendered.append(text)
        return " ".join(rendered)

    def top_level_parts(self) -> List[Signature]:
        return list(self.parts)

    def subexpressions(self) -> List[Signature]:
        result: List[Signature] = [self]
        for part in self.parts:
            result.extend(part.subexpressions())
        return result


# ---------------------------------------------------------------------------
# Parsing (used by tests and the CLI-style examples)
# ---------------------------------------------------------------------------


def parse_signature(text: str) -> Signature:
    """Parse the paper's signature notation, e.g. ``(Cust(Ord Item*)*)*``.

    Table names are alphanumeric (plus ``_`` and ``.``); whitespace separates
    concatenated parts; ``*`` binds to the preceding table or parenthesised
    group.
    """
    tokens = _tokenize(text)
    position = 0

    def parse_concat() -> Signature:
        nonlocal position
        parts: List[Signature] = []
        while position < len(tokens) and tokens[position] not in (")",):
            parts.append(parse_item())
        if not parts:
            raise QueryError(f"empty signature group in {text!r}")
        return ConcatSig(parts) if len(parts) > 1 else parts[0]

    def parse_item() -> Signature:
        nonlocal position
        token = tokens[position]
        if token == "(":
            position += 1
            inner = parse_concat()
            if position >= len(tokens) or tokens[position] != ")":
                raise QueryError(f"unbalanced parentheses in signature {text!r}")
            position += 1
            result: Signature = inner
        elif token == "*" or token == ")":
            raise QueryError(f"unexpected {token!r} in signature {text!r}")
        else:
            position += 1
            result = TableSig(token)
        while position < len(tokens) and tokens[position] == "*":
            position += 1
            result = StarSig(result)
        return result

    result = parse_concat()
    if position != len(tokens):
        raise QueryError(f"trailing tokens in signature {text!r}")
    return result


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    current = ""
    for char in text:
        if char.isalnum() or char in "_.":
            current += char
            continue
        if current:
            tokens.append(current)
            current = ""
        if char in "()*":
            tokens.append(char)
        elif char.isspace():
            continue
        else:
            raise QueryError(f"unexpected character {char!r} in signature {text!r}")
    if current:
        tokens.append(current)
    return tokens


# ---------------------------------------------------------------------------
# Derivation from hierarchical queries (Fig. 4 + FD refinement)
# ---------------------------------------------------------------------------


def signature_of_query(
    query: ConjunctiveQuery,
    fds: Sequence[FunctionalDependency] = (),
    table_attributes: Optional[Mapping[str, Iterable[str]]] = None,
) -> Signature:
    """Signature of a hierarchical query, refined by the given FDs.

    ``table_attributes`` optionally maps each table to its *full* attribute
    set (from the catalog); without it the atom's attribute list is used.  The
    full set matters for dropping a leaf's star soundly: a leaf ``R`` loses its
    ``*`` only if the parent attributes (plus the projection attributes, which
    are constant within a bag of duplicates) functionally determine every
    attribute of ``R`` — i.e. they form a superkey, so at most one R-tuple can
    appear per group.
    """
    tree = build_hierarchy(query)
    return signature_from_tree(
        tree,
        head_attributes=query.head_attributes(),
        fds=fds,
        table_attributes=table_attributes,
        atom_attributes={atom.table: atom.attribute_set for atom in query.atoms},
    )


def signature_from_tree(
    tree: HierarchyNode,
    head_attributes: FrozenSet[str] = frozenset(),
    fds: Sequence[FunctionalDependency] = (),
    table_attributes: Optional[Mapping[str, Iterable[str]]] = None,
    atom_attributes: Optional[Mapping[str, FrozenSet[str]]] = None,
) -> Signature:
    """Apply the Fig. 4 rules (with FD refinement) to a hierarchy tree."""

    def determined(target: Iterable[str], parent: FrozenSet[str]) -> bool:
        known = closure(set(parent) | set(head_attributes), fds)
        return set(target) <= known

    def derive(node: HierarchyNode, parent_attributes: FrozenSet[str]) -> Signature:
        if node.is_leaf:
            table = node.atom.table
            if table_attributes is not None and table in table_attributes:
                full_attributes = set(table_attributes[table])
            elif atom_attributes is not None and table in atom_attributes:
                full_attributes = set(atom_attributes[table])
            else:
                full_attributes = set(node.atom.attribute_set)
            base: Signature = TableSig(table)
            if determined(full_attributes, parent_attributes):
                return base
            return StarSig(base)
        children = ConcatSig([derive(child, node.attributes) for child in node.children])
        if determined(node.attributes, parent_attributes):
            return children
        return StarSig(children)

    return derive(tree, frozenset())


# ---------------------------------------------------------------------------
# Static properties: 1scan, #scans, minimal covers, sort orders
# ---------------------------------------------------------------------------


def has_one_scan_property(signature: Signature) -> bool:
    """Definition V.8: every starred subexpression contains a star-free table
    at its top level and recursively has the 1scan property."""
    if isinstance(signature, TableSig):
        return True
    if isinstance(signature, StarSig):
        parts = signature.inner.top_level_parts()
        has_plain_table = any(isinstance(part, TableSig) for part in parts)
        return has_plain_table and all(has_one_scan_property(part) for part in parts)
    if isinstance(signature, ConcatSig):
        return all(has_one_scan_property(part) for part in signature.parts)
    raise QueryError(f"unknown signature node {signature!r}")


def num_scans(signature: Signature) -> int:
    """Proposition V.10: one scan plus one per starred subexpression without
    the 1scan property (including the signature itself)."""
    failing = 0
    for sub in signature.subexpressions():
        if isinstance(sub, StarSig) and not has_one_scan_property(sub):
            failing += 1
    return 1 + failing


def starred_tables(signature: Signature) -> List[str]:
    """Tables occurring directly under a star (as ``R*``), in preorder."""
    result: List[str] = []
    for sub in signature.subexpressions():
        if isinstance(sub, StarSig) and isinstance(sub.inner, TableSig):
            result.append(sub.inner.table)
    return result


def aggregate_starred_table(signature: Signature, table: str) -> Signature:
    """Signature after eagerly aggregating ``[R*]``: every ``R*`` becomes ``R``.

    This is the signature transformation performed by one GRP aggregation scan
    (Fig. 6: e.g. ``(Cust*(Ord*Item*)*)* --[Ord*]--> (Cust*(Ord Item*)*)*``).
    """
    if isinstance(signature, TableSig):
        return signature
    if isinstance(signature, StarSig):
        if isinstance(signature.inner, TableSig) and signature.inner.table == table:
            return signature.inner
        return StarSig(aggregate_starred_table(signature.inner, table))
    if isinstance(signature, ConcatSig):
        return ConcatSig([aggregate_starred_table(part, table) for part in signature.parts])
    raise QueryError(f"unknown signature node {signature!r}")


def fully_starred(signature: Signature) -> Signature:
    """The signature with every table occurrence starred.

    This is the signature one obtains without any key/FD knowledge (every
    relationship is assumed many-to-many); it is always sound for the same
    query but generally needs more scans (Fig. 13's "operator without FDs").
    """
    if isinstance(signature, TableSig):
        return StarSig(signature)
    if isinstance(signature, StarSig):
        return StarSig(fully_starred(signature.inner))
    if isinstance(signature, ConcatSig):
        return ConcatSig([fully_starred(part) for part in signature.parts])
    raise QueryError(f"unknown signature node {signature!r}")


def replace_with_leftmost_table(signature: Signature, covered: Iterable[str]) -> Signature:
    """Replace every maximal subexpression whose tables are all in ``covered``
    by its leftmost table name.

    This is the update rule of Section V.B: once a probability computation
    operator with signature ``t`` has run below, ancestors see the aggregate
    as a single variable/probability pair represented by the leftmost table
    of ``t``.
    """
    covered_set = set(covered)

    def rewrite(node: Signature) -> Signature:
        if set(node.tables()) <= covered_set:
            return TableSig(node.tables()[0])
        if isinstance(node, TableSig):
            return node
        if isinstance(node, StarSig):
            return StarSig(rewrite(node.inner))
        if isinstance(node, ConcatSig):
            return ConcatSig([rewrite(part) for part in node.parts])
        raise QueryError(f"unknown signature node {node!r}")

    return rewrite(signature)


def restrict_signature(signature: Signature, tables: Iterable[str]) -> Optional[Signature]:
    """Drop every table not in ``tables`` from the signature (Section V.B).

    Returns ``None`` if nothing remains.  Empty groups disappear; stars are
    preserved on what remains.
    """
    wanted = set(tables)

    def restrict(node: Signature) -> Optional[Signature]:
        if isinstance(node, TableSig):
            return node if node.table in wanted else None
        if isinstance(node, StarSig):
            inner = restrict(node.inner)
            return StarSig(inner) if inner is not None else None
        if isinstance(node, ConcatSig):
            parts = [restrict(part) for part in node.parts]
            parts = [part for part in parts if part is not None]
            if not parts:
                return None
            return ConcatSig(parts)
        raise QueryError(f"unknown signature node {node!r}")

    return restrict(signature)


def minimal_cover(signature: Signature, tables: Iterable[str]) -> Signature:
    """Definition III.3: the signature of the minimal subexpression containing
    all the given tables."""
    wanted = set(tables)
    if not wanted:
        raise QueryError("minimal cover of an empty table set is undefined")
    best: Optional[Signature] = None
    for sub in signature.subexpressions():
        sub_tables = set(sub.tables())
        if wanted <= sub_tables:
            if best is None or len(sub_tables) < len(set(best.tables())):
                best = sub
    if best is None:
        missing = wanted - set(signature.tables())
        raise QueryError(f"tables {sorted(missing)} do not occur in signature {signature}")
    return best


# ---------------------------------------------------------------------------
# 1scanTree and sort orders
# ---------------------------------------------------------------------------


class OneScanTreeNode:
    """A node of the 1scanTree (Section V.C): one variable column per node.

    The tree is obtained from the signature by replacing every starred
    composite with its leading star-free table; the other parts become child
    subtrees.  The preorder of the tree gives the sort order of the variable
    columns expected by the one-scan algorithm.
    """

    __slots__ = ("table", "children")

    def __init__(self, table: str, children: Sequence["OneScanTreeNode"] = ()):
        self.table = table
        self.children = tuple(children)

    def preorder(self) -> List[str]:
        result = [self.table]
        for child in self.children:
            result.extend(child.preorder())
        return result

    def __str__(self) -> str:
        if not self.children:
            return self.table
        return f"{self.table}({', '.join(str(child) for child in self.children)})"

    def __repr__(self) -> str:
        return f"OneScanTreeNode[{self}]"


def one_scan_tree(signature: Signature) -> List[OneScanTreeNode]:
    """Build the 1scanTree (a forest for top-level concatenations).

    Requires the 1scan property; raises :class:`QueryError` otherwise.
    """
    if not has_one_scan_property(signature):
        raise QueryError(
            f"signature {signature} does not have the 1scan property; "
            "schedule aggregation scans first (see repro.sprout.scans)"
        )

    def forest_of(node: Signature) -> List[OneScanTreeNode]:
        if isinstance(node, TableSig):
            return [OneScanTreeNode(node.table)]
        if isinstance(node, ConcatSig):
            result: List[OneScanTreeNode] = []
            for part in node.parts:
                result.extend(forest_of(part))
            return result
        if isinstance(node, StarSig):
            parts = node.inner.top_level_parts()
            leader_index = next(
                (i for i, part in enumerate(parts) if isinstance(part, TableSig)), None
            )
            if leader_index is None:
                # Only reachable for a bare ``R*`` via the TableSig branch above,
                # so a missing leader here means the 1scan check was bypassed.
                raise QueryError(f"starred signature {node} has no star-free leader table")
            leader = parts[leader_index]
            children: List[OneScanTreeNode] = []
            for i, part in enumerate(parts):
                if i == leader_index:
                    continue
                children.extend(forest_of(part))
            return [OneScanTreeNode(leader.table, children)]
        raise QueryError(f"unknown signature node {node!r}")

    def forest_of_top(node: Signature) -> List[OneScanTreeNode]:
        if isinstance(node, StarSig) and isinstance(node.inner, TableSig):
            return [OneScanTreeNode(node.inner.table)]
        return forest_of(node)

    return forest_of_top(signature)


def sort_table_order(signature: Signature) -> List[str]:
    """Order of the variable columns in the operator's sort key.

    Example V.12: for ``(Cust(Ord Item*)*)*`` the order is Cust, Ord, Item.
    Signatures without the 1scan property are ordered by their left-to-right
    table occurrence (the pre-aggregation scans use the same order).
    """
    if has_one_scan_property(signature):
        result: List[str] = []
        for root in one_scan_tree(signature):
            result.extend(root.preorder())
        return result
    seen: Set[str] = set()
    ordered: List[str] = []
    for table in signature.tables():
        if table not in seen:
            seen.add(table)
            ordered.append(table)
    return ordered

"""Building a tuple-independent probabilistic TPC-H database.

Following Section VII, every tuple of every table is annotated with a distinct
Boolean random variable whose probability is drawn at random (seeded).  Keys
(and therefore functional dependencies) of the TPC-H schema are registered in
the catalog so the engine can refine signatures and derive FD-reducts.

Two renamed copies of ``nation`` are added (``nation_s`` joining supplier via
``s_nationkey`` and ``nation_c`` joining customer via ``c_nationkey``); they
share the base table's random variables, which is the paper's treatment of
TPC-H query 7's self-join ("each table copy has distinct tuples").
"""

from __future__ import annotations

import random
from typing import Optional

from repro.prob.pdb import ProbabilisticDatabase
from repro.tpch.datagen import TpchData, generate_tpch
from repro.tpch.schema import TPCH_TABLES

__all__ = ["make_probabilistic_tpch", "probabilistic_tpch"]

#: Column renamings of the two nation aliases (the region key keeps its name so
#: that queries joining nation with region still work through either copy).
NATION_S_RENAME = {"nationkey": "s_nationkey", "n_name": "ns_name"}
NATION_C_RENAME = {"nationkey": "c_nationkey", "n_name": "nc_name"}


def make_probabilistic_tpch(
    data: TpchData,
    seed: int = 11,
    uniform_probability: Optional[float] = None,
) -> ProbabilisticDatabase:
    """Annotate a generated TPC-H instance with random variables and probabilities.

    ``uniform_probability`` forces the same marginal for every tuple (useful in
    tests); otherwise probabilities are drawn uniformly from (0, 1], as in the
    paper's experiments.
    """
    database = ProbabilisticDatabase(f"tpch-sf{data.scale_factor}", seed=seed)
    rng = random.Random(seed)
    for name, spec in TPCH_TABLES.items():
        relation = data[name]
        if uniform_probability is not None:
            probabilities = uniform_probability
        else:
            probabilities = [rng.uniform(0.01, 1.0) for _ in range(len(relation))]
        database.add_table(relation, probabilities=probabilities, primary_key=spec.primary_key)
    database.add_alias("nation", "nation_s", rename=NATION_S_RENAME)
    database.add_alias("nation", "nation_c", rename=NATION_C_RENAME)
    # Candidate keys that hold on TPC-H data by construction (names embed the
    # key); Section VI's FD-reducts for queries 2, 18, 20, 21 rely on them.
    database.catalog.add_key("supplier", ["s_name"])
    database.catalog.add_key("customer", ["c_name"])
    database.catalog.add_key("nation", ["n_name"])
    database.catalog.add_key("nation_s", ["ns_name"])
    database.catalog.add_key("nation_c", ["nc_name"])
    return database


def probabilistic_tpch(
    scale_factor: float = 0.001,
    seed: int = 7,
    probability_seed: int = 11,
    uniform_probability: Optional[float] = None,
) -> ProbabilisticDatabase:
    """Generate data and annotate it in one call (the benchmark entry point)."""
    data = generate_tpch(scale_factor=scale_factor, seed=seed)
    return make_probabilistic_tpch(
        data, seed=probability_seed, uniform_probability=uniform_probability
    )

"""Section VI case study: which TPC-H queries can SPROUT evaluate, and how.

The paper classifies the 22 TPC-H queries (their conjunctive subqueries)
along two axes: whether they are hierarchical *without* key constraints, and
whether functional dependencies (the TPC-H keys) make them tractable.  This
module recomputes that classification from the query definitions in
:mod:`repro.tpch.queries` and renders the resulting table; the corresponding
benchmark (``benchmarks/bench_case_study.py``) prints it next to the paper's
reported counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import NonHierarchicalQueryError
from repro.query.fd import fd_reduct
from repro.query.hierarchy import is_hierarchical
from repro.query.rewrite import effective_signature
from repro.query.signature import num_scans
from repro.storage.catalog import FunctionalDependency
from repro.tpch.queries import TpchQuerySpec, all_query_keys, tpch_query
from repro.tpch.schema import tpch_functional_dependencies

__all__ = ["QueryClassification", "classify_query", "classify_all", "case_study_table"]


@dataclass(frozen=True)
class QueryClassification:
    """Static classification of one query variant."""

    key: str
    executable: bool
    boolean: bool
    hierarchical_without_fds: bool
    hierarchical_with_fds: bool
    signature: Optional[str]
    scans: Optional[int]
    notes: str

    @property
    def tractable(self) -> bool:
        return self.hierarchical_without_fds or self.hierarchical_with_fds


def classify_query(
    spec: TpchQuerySpec, fds: Optional[Sequence[FunctionalDependency]] = None
) -> QueryClassification:
    """Classify one query variant under the given FDs (defaults to TPC-H keys)."""
    fds = list(fds) if fds is not None else tpch_functional_dependencies()
    query = spec.query
    without = is_hierarchical(query)
    with_fds = without or is_hierarchical(fd_reduct(query, fds))
    signature_text: Optional[str] = None
    scans: Optional[int] = None
    if with_fds:
        try:
            signature = effective_signature(query, fds)
            signature_text = str(signature)
            scans = num_scans(signature)
        except NonHierarchicalQueryError:  # pragma: no cover - defensive
            signature_text = None
    return QueryClassification(
        key=spec.key,
        executable=spec.executable,
        boolean=query.is_boolean(),
        hierarchical_without_fds=without,
        hierarchical_with_fds=with_fds,
        signature=signature_text,
        scans=scans,
        notes=spec.notes,
    )


def classify_all(
    fds: Optional[Sequence[FunctionalDependency]] = None,
) -> Dict[str, QueryClassification]:
    """Classification of every registered query variant."""
    return {key: classify_query(tpch_query(key), fds) for key in all_query_keys()}


def case_study_table(fds: Optional[Sequence[FunctionalDependency]] = None) -> str:
    """Render the Section VI case-study table as fixed-width text."""
    classifications = classify_all(fds)
    non_boolean = [c for c in classifications.values() if not c.boolean]
    boolean = [c for c in classifications.values() if c.boolean]

    lines = ["query  flavour  hier(no FDs)  hier(FDs)  #scans  signature"]
    for group in (non_boolean, boolean):
        for c in sorted(group, key=lambda c: (len(c.key), c.key)):
            flavour = "Boolean" if c.boolean else "orig"
            lines.append(
                f"{c.key:<6} {flavour:<8} "
                f"{'yes' if c.hierarchical_without_fds else 'no':<13} "
                f"{'yes' if c.hierarchical_with_fds else 'no':<10} "
                f"{c.scans if c.scans is not None else '-':<7} "
                f"{c.signature or '-'}"
            )

    tractable_orig = sum(1 for c in non_boolean if c.tractable and c.executable)
    hier_orig = sum(1 for c in non_boolean if c.hierarchical_without_fds and c.executable)
    tractable_bool = sum(1 for c in boolean if c.tractable and c.executable)
    hier_bool = sum(1 for c in boolean if c.hierarchical_without_fds and c.executable)
    lines.append("")
    lines.append(
        f"original selection attributes: {hier_orig} hierarchical without FDs, "
        f"{tractable_orig} tractable with TPC-H FDs"
    )
    lines.append(
        f"Boolean variants:              {hier_bool} hierarchical without FDs, "
        f"{tractable_bool} tractable with TPC-H FDs"
    )
    lines.append(
        "paper (Section VI): 13/22 resp. 8/22 hierarchical without keys; "
        "+4 in each class with the TPC-H key constraints; queries 5, 8, 9, 13, 22 excluded"
    )
    return "\n".join(lines)

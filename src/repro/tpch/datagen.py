"""A seeded, scaled-down TPC-H data generator (the dbgen stand-in).

The generator reproduces the *structural* properties the experiments depend
on: cardinality ratios between the tables (orders ≈ 10 × customers,
lineitems ≈ 4 × orders, four partsupp rows per part, ...), the key/foreign-key
relationships, skew-free uniform foreign keys, and value domains (dates in
1992–1998, a handful of market segments, brands, containers, regions and
nations) that the benchmark queries' selection constants hit with realistic
selectivities.  It is fully deterministic given a seed, so experiments can be
re-run bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.storage.relation import Relation
from repro.tpch.schema import TPCH_TABLES, tpch_schema

__all__ = ["TpchData", "generate_tpch", "REGIONS", "NATIONS", "MKT_SEGMENTS"]

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: The 25 TPC-H nations with their region index.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]

MKT_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
ORDER_STATUSES = ["O", "F", "P"]
RETURN_FLAGS = ["R", "A", "N"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
CONTAINERS = ["SM CASE", "SM BOX", "MED BOX", "MED BAG", "LG CASE", "LG BOX", "JUMBO PKG"]
BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]
TYPES = [
    f"{a} {b} {c}"
    for a in ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
    for b in ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
    for c in ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
]
PART_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
    "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate",
]


@dataclass
class TpchData:
    """The eight generated TPC-H relations, keyed by table name."""

    scale_factor: float
    seed: int
    tables: Dict[str, Relation] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Relation:
        return self.tables[name]

    def row_counts(self) -> Dict[str, int]:
        return {name: len(relation) for name, relation in self.tables.items()}


def _date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def _cardinality(table: str, scale_factor: float, minimum: int = 1) -> int:
    spec = TPCH_TABLES[table]
    if spec.fixed_cardinality:
        return spec.rows_per_scale
    return max(minimum, int(round(spec.rows_per_scale * scale_factor)))


def generate_tpch(scale_factor: float = 0.001, seed: int = 7) -> TpchData:
    """Generate a deterministic TPC-H instance at the given scale factor.

    At scale factor 0.001 this yields roughly 10 suppliers, 150 customers,
    200 parts, 800 partsupp rows, 1 500 orders, and 6 000 lineitems — the same
    ratios as the 1 GB instance used in the paper, shrunk to what a pure-Python
    engine handles in benchmark time.
    """
    rng = random.Random(seed)
    data = TpchData(scale_factor=scale_factor, seed=seed)

    # region / nation -----------------------------------------------------------
    region = Relation("region", tpch_schema("region"))
    for index, name in enumerate(REGIONS):
        region.append((index, name, f"region {name.lower()}"))
    data.tables["region"] = region

    nation = Relation("nation", tpch_schema("nation"))
    for index, (name, region_index) in enumerate(NATIONS):
        nation.append((index, name, region_index, f"nation {name.lower()}"))
    data.tables["nation"] = nation

    # supplier -------------------------------------------------------------------
    # Low-cardinality categorical columns cycle deterministically through their
    # domains so that every selection constant used by the benchmark queries
    # matches a non-empty set even at very small scale factors.
    supplier_count = _cardinality("supplier", scale_factor)
    supplier = Relation("supplier", tpch_schema("supplier"))
    for key in range(1, supplier_count + 1):
        supplier.append(
            (
                key,
                f"Supplier#{key:09d}",
                f"{rng.randint(1, 999)} supply street",
                (key - 1) % len(NATIONS),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
        )
    data.tables["supplier"] = supplier

    # customer -------------------------------------------------------------------
    customer_count = _cardinality("customer", scale_factor)
    customer = Relation("customer", tpch_schema("customer"))
    for key in range(1, customer_count + 1):
        customer.append(
            (
                key,
                f"Customer#{key:09d}",
                (key - 1) % len(NATIONS),
                round(rng.uniform(-999.99, 9999.99), 2),
                MKT_SEGMENTS[(key - 1) % len(MKT_SEGMENTS)],
            )
        )
    data.tables["customer"] = customer

    # part -----------------------------------------------------------------------
    part_count = _cardinality("part", scale_factor)
    part = Relation("part", tpch_schema("part"))
    for key in range(1, part_count + 1):
        name = " ".join(rng.sample(PART_NAME_WORDS, 3))
        part.append(
            (
                key,
                name,
                BRANDS[(key - 1) % len(BRANDS)],
                rng.choice(TYPES),
                1 + (key - 1) % 50,
                CONTAINERS[(key - 1) % len(CONTAINERS)],
                round(900 + (key % 1000) + rng.uniform(0, 100), 2),
            )
        )
    data.tables["part"] = part

    # partsupp: four suppliers per part -------------------------------------------
    partsupp = Relation("partsupp", tpch_schema("partsupp"))
    if supplier_count > 0:
        for part_key in range(1, part_count + 1):
            suppliers = {1 + (part_key + offset) % supplier_count for offset in range(4)}
            for supp_key in sorted(suppliers):
                partsupp.append(
                    (
                        part_key,
                        supp_key,
                        rng.randint(1, 9999),
                        round(rng.uniform(1.0, 1000.0), 2),
                    )
                )
    data.tables["partsupp"] = partsupp

    # orders ----------------------------------------------------------------------
    order_count = _cardinality("orders", scale_factor)
    orders = Relation("orders", tpch_schema("orders"))
    for key in range(1, order_count + 1):
        orders.append(
            (
                key,
                rng.randint(1, customer_count),
                ORDER_STATUSES[(key - 1) % len(ORDER_STATUSES)],
                round(rng.uniform(850.0, 500_000.0), 2),
                _date(rng),
                rng.choice(ORDER_PRIORITIES),
            )
        )
    data.tables["orders"] = orders

    # lineitem: one to seven lines per order ----------------------------------------
    lineitem = Relation("lineitem", tpch_schema("lineitem"))
    for order_key in range(1, order_count + 1):
        for line_number in range(1, rng.randint(1, 7) + 1):
            lineitem.append(
                (
                    order_key,
                    rng.randint(1, part_count),
                    rng.randint(1, supplier_count),
                    line_number,
                    rng.randint(1, 50),
                    round(rng.uniform(900.0, 105_000.0), 2),
                    round(
                        rng.choice(
                            [0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1]
                        ),
                        2,
                    ),
                    rng.choice(RETURN_FLAGS),
                    _date(rng),
                    rng.choice(SHIP_MODES),
                )
            )
    data.tables["lineitem"] = lineitem

    return data

"""TPC-H schema, keys, and functional dependencies.

The experiments of Section VI/VII run on a tuple-independent probabilistic
version of TPC-H.  We keep the eight standard tables with their key and
foreign-key structure.  Column names follow the query model's convention that
*join* attributes carry the same name in every table that joins on them
(``custkey``, ``orderkey``, ``partkey``, ``suppkey``, ``regionkey``), while
non-join attributes carry a table prefix so natural joins never pick them up
accidentally.  The nation key is referenced by both supplier and customer;
because several queries (notably query 7) need the two references to point to
*different* nation tuples, supplier carries ``s_nationkey``, customer carries
``c_nationkey``, and the probabilistic database exposes two renamed copies of
nation (``nation_s``, ``nation_c``) that share the base table's random
variables (see :func:`repro.tpch.probabilistic.make_probabilistic_tpch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.storage.catalog import FunctionalDependency
from repro.storage.schema import Schema

__all__ = ["TableSpec", "TPCH_TABLES", "tpch_schema", "tpch_keys", "tpch_functional_dependencies"]


@dataclass(frozen=True)
class TableSpec:
    """Schema-level description of one TPC-H table."""

    name: str
    columns: Tuple[str, ...]  # "name:dtype" specs
    primary_key: Tuple[str, ...]
    #: rows per unit scale factor (TPC-H 2.7 cardinalities)
    rows_per_scale: int
    fixed_cardinality: bool = False  # region/nation do not scale


TPCH_TABLES: Dict[str, TableSpec] = {
    "region": TableSpec(
        name="region",
        columns=("regionkey:int", "r_name:str", "r_comment:str"),
        primary_key=("regionkey",),
        rows_per_scale=5,
        fixed_cardinality=True,
    ),
    "nation": TableSpec(
        name="nation",
        columns=("nationkey:int", "n_name:str", "regionkey:int", "n_comment:str"),
        primary_key=("nationkey",),
        rows_per_scale=25,
        fixed_cardinality=True,
    ),
    "supplier": TableSpec(
        name="supplier",
        columns=(
            "suppkey:int",
            "s_name:str",
            "s_address:str",
            "s_nationkey:int",
            "s_acctbal:float",
        ),
        primary_key=("suppkey",),
        rows_per_scale=10_000,
    ),
    "customer": TableSpec(
        name="customer",
        columns=(
            "custkey:int",
            "c_name:str",
            "c_nationkey:int",
            "c_acctbal:float",
            "c_mktsegment:str",
        ),
        primary_key=("custkey",),
        rows_per_scale=150_000,
    ),
    "part": TableSpec(
        name="part",
        columns=(
            "partkey:int",
            "p_name:str",
            "p_brand:str",
            "p_type:str",
            "p_size:int",
            "p_container:str",
            "p_retailprice:float",
        ),
        primary_key=("partkey",),
        rows_per_scale=200_000,
    ),
    "partsupp": TableSpec(
        name="partsupp",
        columns=("partkey:int", "suppkey:int", "ps_availqty:int", "ps_supplycost:float"),
        primary_key=("partkey", "suppkey"),
        rows_per_scale=800_000,
    ),
    "orders": TableSpec(
        name="orders",
        columns=(
            "orderkey:int",
            "custkey:int",
            "o_orderstatus:str",
            "o_totalprice:float",
            "o_orderdate:date",
            "o_orderpriority:str",
        ),
        primary_key=("orderkey",),
        rows_per_scale=1_500_000,
    ),
    "lineitem": TableSpec(
        name="lineitem",
        columns=(
            "orderkey:int",
            "partkey:int",
            "suppkey:int",
            "l_linenumber:int",
            "l_quantity:int",
            "l_extendedprice:float",
            "l_discount:float",
            "l_returnflag:str",
            "l_shipdate:date",
            "l_shipmode:str",
        ),
        primary_key=("orderkey", "l_linenumber"),
        rows_per_scale=6_000_000,
    ),
}


def tpch_schema(table: str) -> Schema:
    """Schema of one TPC-H table."""
    return Schema.of(*TPCH_TABLES[table].columns)


def tpch_keys() -> Dict[str, Tuple[str, ...]]:
    """Primary keys of all TPC-H tables."""
    return {name: spec.primary_key for name, spec in TPCH_TABLES.items()}


def tpch_functional_dependencies() -> List[FunctionalDependency]:
    """The key FDs of the TPC-H schema (the FDs used throughout Section VI).

    The keys of the nation aliases (``nation_s``, ``nation_c``) are included so
    that signature refinement works for queries using them; the aliases expose
    the renamed key columns ``s_nationkey``/``c_nationkey``.
    """
    fds: List[FunctionalDependency] = []
    for name, spec in TPCH_TABLES.items():
        schema = tpch_schema(name)
        dependents = [c for c in schema.names if c not in spec.primary_key]
        if dependents:
            fds.append(FunctionalDependency(name, spec.primary_key, dependents))
    fds.append(
        FunctionalDependency("nation_s", ("s_nationkey",), ("ns_name", "regionkey"))
    )
    fds.append(
        FunctionalDependency("nation_c", ("c_nationkey",), ("nc_name", "regionkey"))
    )
    # Candidate keys that hold on TPC-H data by construction: supplier,
    # customer and nation names embed their keys, so name -> key holds in
    # every possible world.  Section VI's FD-reducts for queries 2, 18, 20 and
    # 21 (whose projection lists contain names rather than keys) rely on them.
    fds.append(FunctionalDependency("supplier", ("s_name",), ("suppkey",)))
    fds.append(FunctionalDependency("customer", ("c_name",), ("custkey",)))
    fds.append(FunctionalDependency("nation", ("n_name",), ("nationkey",)))
    fds.append(FunctionalDependency("nation_s", ("ns_name",), ("s_nationkey",)))
    fds.append(FunctionalDependency("nation_c", ("nc_name",), ("c_nationkey",)))
    return fds

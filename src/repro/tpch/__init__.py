"""TPC-H substrate: schema, data generator, probabilistic conversion, queries.

The experimental workload of Section VII: a pure-Python, seedable TPC-H
data generator (:mod:`repro.tpch.datagen`, scaled by *scale factor*), the
conversion to a tuple-independent probabilistic database
(:func:`repro.tpch.probabilistic.probabilistic_tpch`), the paper's query
set over it (:mod:`repro.tpch.queries`), and the Section VII case-study
classification of which queries admit which plan styles
(:mod:`repro.tpch.casestudy`).  Benchmarks under ``benchmarks/`` build
their instances exclusively through this package — ``docs/benchmarks.md``
maps each script to the paper figure it reproduces.
"""

from repro.tpch.casestudy import QueryClassification, case_study_table, classify_all, classify_query
from repro.tpch.datagen import TpchData, generate_tpch
from repro.tpch.probabilistic import make_probabilistic_tpch, probabilistic_tpch
from repro.tpch.queries import (
    FIGURE9_KEYS,
    FIGURE10_KEYS,
    FIGURE13_KEYS,
    TpchQuerySpec,
    all_query_keys,
    excluded_query_keys,
    executable_query_keys,
    query_A,
    query_B,
    query_C,
    query_D,
    tpch_query,
)
from repro.tpch.schema import TPCH_TABLES, tpch_functional_dependencies, tpch_keys, tpch_schema

__all__ = [
    "FIGURE10_KEYS",
    "FIGURE13_KEYS",
    "FIGURE9_KEYS",
    "QueryClassification",
    "TPCH_TABLES",
    "TpchData",
    "TpchQuerySpec",
    "all_query_keys",
    "case_study_table",
    "classify_all",
    "classify_query",
    "excluded_query_keys",
    "executable_query_keys",
    "generate_tpch",
    "make_probabilistic_tpch",
    "probabilistic_tpch",
    "query_A",
    "query_B",
    "query_C",
    "query_D",
    "tpch_functional_dependencies",
    "tpch_keys",
    "tpch_query",
    "tpch_schema",
]

"""Conjunctive variants of the TPC-H queries used in the paper's evaluation.

Following Section VI, each TPC-H query is reduced to its largest subquery
without aggregations and without inequality joins, keeping the ``conf()``
aggregation.  For every query we register

* the non-Boolean flavour (keyed ``"1"`` .. ``"22"``) with a projection list
  derived from the original selection attributes, and
* the Boolean flavour (keyed ``"B1"`` .. ``"B22"``) obtained by dropping the
  projection list,

plus the four hand-written queries of Figures 11 and 12 (``A``, ``B``, ``C``,
``D``).  Queries 5, 8, 9 are non-hierarchical even under the TPC-H functional
dependencies (they join lineitem/orders with two non-key attributes that are
not selection attributes), query 13 is an outer join, and query 22 degenerates
to a plain selection — these five are registered as *excluded*, matching the
paper's count of 17 (+ Boolean variants) evaluated queries.

Selection constants are chosen so that the generated data
(:mod:`repro.tpch.datagen`) yields selectivities comparable to the original
query parameters (e.g. one market segment out of five, one brand out of 25,
one named customer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import QueryError
from repro.algebra.expressions import (
    Comparison,
    Conjunction,
    Disjunction,
    Predicate,
    conjunction_of,
)
from repro.query.conjunctive import Atom, ConjunctiveQuery

__all__ = [
    "TpchQuerySpec",
    "tpch_query",
    "all_query_keys",
    "executable_query_keys",
    "excluded_query_keys",
    "FIGURE9_KEYS",
    "FIGURE10_KEYS",
    "FIGURE13_KEYS",
    "query_A",
    "query_B",
    "query_C",
    "query_D",
]


@dataclass(frozen=True)
class TpchQuerySpec:
    """One registered query variant."""

    key: str
    query: ConjunctiveQuery
    executable: bool = True
    needs_fds: bool = False
    notes: str = ""


_REGISTRY: Dict[str, TpchQuerySpec] = {}

#: Queries of Fig. 9 (lazy vs. eager vs. MystiQ plans).
FIGURE9_KEYS = ["3", "10", "15", "16", "B17", "18", "20", "21"]

#: Queries of Fig. 10 (lazy plans for the remaining 18 queries).
FIGURE10_KEYS = [
    "1", "B1", "2", "B3", "4", "B4", "B6", "7", "B10", "11",
    "B11", "12", "B12", "B14", "B15", "B16", "B18", "B19",
]

#: Queries of Fig. 13 (effect of functional dependencies).
FIGURE13_KEYS = ["2", "7", "11", "B3"]


def _register(
    key: str,
    atoms: Sequence[Atom],
    projection: Sequence[str] = (),
    selections: Optional[Predicate] = None,
    executable: bool = True,
    needs_fds: bool = False,
    notes: str = "",
    boolean_variant: bool = True,
) -> None:
    query = ConjunctiveQuery(f"Q{key}", atoms, projection=projection, selections=selections)
    _REGISTRY[key] = TpchQuerySpec(
        key=key, query=query, executable=executable, needs_fds=needs_fds, notes=notes
    )
    if boolean_variant and projection:
        boolean = query.boolean_version(f"QB{key}")
        _REGISTRY[f"B{key}"] = TpchQuerySpec(
            key=f"B{key}",
            query=boolean,
            executable=executable,
            needs_fds=needs_fds,
            notes=f"Boolean variant of query {key}. {notes}".strip(),
        )


def _eq(attribute: str, value: object) -> Comparison:
    return Comparison(attribute, "=", value)


def _build_registry() -> None:
    # Q1: pricing summary report — single table scan over lineitem.
    _register(
        "1",
        [Atom("lineitem", ["l_returnflag", "l_shipdate"])],
        projection=["l_returnflag"],
        selections=Comparison("l_shipdate", "<=", "1998-09-02"),
        notes="Single-table query; MystiQ's log aggregation fails on its long disjunctions.",
    )

    # Q2: minimum cost supplier (without the aggregation subquery).
    _register(
        "2",
        [
            Atom("part", ["partkey", "p_size", "p_name"]),
            Atom("partsupp", ["partkey", "suppkey", "ps_supplycost"]),
            Atom("supplier", ["suppkey", "s_name", "s_nationkey", "s_acctbal"]),
            Atom("nation_s", ["s_nationkey", "ns_name", "regionkey"]),
            Atom("region", ["regionkey", "r_name"]),
        ],
        projection=["s_name", "ns_name"],
        selections=conjunction_of([_eq("p_size", 15), _eq("r_name", "EUROPE")]),
        needs_fds=True,
        notes="Hierarchical FD-reduct derived from the supplier name key (Section VI).",
    )

    # Q3: shipping priority.
    _register(
        "3",
        [
            Atom("customer", ["custkey", "c_mktsegment"]),
            Atom("orders", ["orderkey", "custkey", "o_orderdate"]),
            Atom("lineitem", ["orderkey", "l_shipdate"]),
        ],
        projection=["orderkey", "o_orderdate"],
        selections=conjunction_of(
            [_eq("c_mktsegment", "BUILDING"), Comparison("o_orderdate", "<", "1995-03-15")]
        ),
        notes="The key orderkey is in the projection list, which lifts MystiQ's "
        "join-order restriction; the Boolean variant B3 needs the orderkey→custkey FD.",
    )

    # Q4: order priority checking (exists lineitem).
    _register(
        "4",
        [
            Atom("orders", ["orderkey", "o_orderdate", "o_orderpriority"]),
            Atom("lineitem", ["orderkey"]),
        ],
        projection=["o_orderpriority"],
        selections=conjunction_of(
            [
                Comparison("o_orderdate", ">=", "1993-07-01"),
                Comparison("o_orderdate", "<", "1993-10-01"),
            ]
        ),
    )

    # Q5: local supplier volume — joins lineitem with supplier and orders on
    # different non-key attributes plus the customer-nation = supplier-nation
    # condition: non-hierarchical even with FDs (the attribute names below are
    # the paper's abstract ones; the query is registered for the case study
    # only and is not executable on the generated data).
    _register(
        "5",
        [
            Atom("customer", ["custkey", "c_nationkey"]),
            Atom("orders", ["orderkey", "custkey", "o_orderdate"]),
            Atom("lineitem", ["orderkey", "suppkey"]),
            Atom("supplier", ["suppkey", "c_nationkey"]),
            Atom("nation_c", ["c_nationkey", "nc_name", "regionkey"]),
            Atom("region", ["regionkey", "r_name"]),
        ],
        projection=["nc_name"],
        selections=_eq("r_name", "ASIA"),
        executable=False,
        notes="Excluded: lineitem joins orders and supplier on two non-key attributes "
        "that are not selection attributes (#P-hard pattern).",
        boolean_variant=False,
    )

    # Q6: forecasting revenue change — single table, Boolean only.
    _register(
        "6",
        [Atom("lineitem", ["l_shipdate", "l_discount", "l_quantity"])],
        projection=["l_discount"],
        selections=conjunction_of(
            [
                Comparison("l_shipdate", ">=", "1994-01-01"),
                Comparison("l_shipdate", "<", "1995-01-01"),
                Comparison("l_discount", ">=", 0.05),
                Comparison("l_discount", "<=", 0.07),
                Comparison("l_quantity", "<", 24),
            ]
        ),
    )

    # Q7: volume shipping — two copies of nation (mutually exclusive selections).
    _register(
        "7",
        [
            Atom("supplier", ["suppkey", "s_nationkey"]),
            Atom("lineitem", ["orderkey", "suppkey", "l_shipdate"]),
            Atom("orders", ["orderkey", "custkey"]),
            Atom("customer", ["custkey", "c_nationkey"]),
            Atom("nation_s", ["s_nationkey", "ns_name"]),
            Atom("nation_c", ["c_nationkey", "nc_name"]),
        ],
        projection=["suppkey", "ns_name", "nc_name"],
        selections=conjunction_of(
            [
                _eq("ns_name", "FRANCE"),
                _eq("nc_name", "GERMANY"),
                Comparison("l_shipdate", ">=", "1995-01-01"),
                Comparison("l_shipdate", "<=", "1996-12-31"),
            ]
        ),
        needs_fds=True,
        notes="The two nation copies select disjoint tuples, so the self-join is "
        "unproblematic (Section IV); the signature is "
        "Nation1 Supp (Nation2 (Cust (Ord Item*)*)*)* (Example V.9).",
    )

    # Q8: national market share — excluded (same hard pattern as Q5).
    _register(
        "8",
        [
            Atom("part", ["partkey", "p_type"]),
            Atom("lineitem", ["orderkey", "partkey", "suppkey"]),
            Atom("supplier", ["suppkey", "s_nationkey"]),
            Atom("orders", ["orderkey", "custkey", "o_orderdate"]),
            Atom("customer", ["custkey", "c_nationkey"]),
            Atom("nation_s", ["s_nationkey", "ns_name"]),
            Atom("nation_c", ["c_nationkey", "nc_name", "regionkey"]),
            Atom("region", ["regionkey", "r_name"]),
        ],
        projection=["o_orderdate"],
        selections=conjunction_of(
            [_eq("r_name", "AMERICA"), _eq("p_type", "ECONOMY ANODIZED STEEL")]
        ),
        executable=False,
        notes="Excluded: lineitem joins part/supplier/orders on three attributes pairwise "
        "not nested (#P-hard pattern).",
        boolean_variant=False,
    )

    # Q9: product type profit measure — excluded.
    _register(
        "9",
        [
            Atom("part", ["partkey", "p_name"]),
            Atom("lineitem", ["orderkey", "partkey", "suppkey"]),
            Atom("supplier", ["suppkey", "s_nationkey"]),
            Atom("partsupp", ["partkey", "suppkey"]),
            Atom("orders", ["orderkey", "o_orderdate"]),
            Atom("nation_s", ["s_nationkey", "ns_name"]),
        ],
        projection=["ns_name", "o_orderdate"],
        executable=False,
        notes="Excluded: lineitem joins part, supplier and orders on non-key attributes "
        "outside the projection list.",
        boolean_variant=False,
    )

    # Q10: returned item reporting.
    _register(
        "10",
        [
            Atom("customer", ["custkey", "c_name", "c_acctbal", "c_nationkey"]),
            Atom("orders", ["orderkey", "custkey", "o_orderdate"]),
            Atom("lineitem", ["orderkey", "l_returnflag"]),
            Atom("nation_c", ["c_nationkey", "nc_name"]),
        ],
        projection=["custkey", "c_name", "c_acctbal", "nc_name"],
        selections=conjunction_of(
            [
                Comparison("o_orderdate", ">=", "1993-10-01"),
                Comparison("o_orderdate", "<", "1994-01-01"),
                _eq("l_returnflag", "R"),
            ]
        ),
        notes="MystiQ's safe plan must join orders with lineitem first (restrictive order).",
    )

    # Q11: important stock identification.
    _register(
        "11",
        [
            Atom("partsupp", ["partkey", "suppkey", "ps_supplycost", "ps_availqty"]),
            Atom("supplier", ["suppkey", "s_nationkey"]),
            Atom("nation_s", ["s_nationkey", "ns_name"]),
        ],
        projection=["partkey"],
        selections=_eq("ns_name", "GERMANY"),
        needs_fds=True,
        notes="Needs the suppkey→nationkey FD to become hierarchical (Section VI).",
    )

    # Q12: shipping modes and order priority.
    _register(
        "12",
        [
            Atom("orders", ["orderkey", "o_orderpriority"]),
            Atom("lineitem", ["orderkey", "l_shipmode", "l_shipdate"]),
        ],
        projection=["l_shipmode"],
        selections=conjunction_of(
            [
                _eq("l_shipmode", "MAIL"),
                Comparison("l_shipdate", ">=", "1994-01-01"),
                Comparison("l_shipdate", "<", "1995-01-01"),
            ]
        ),
    )

    # Q13: customer distribution — a left outer join, outside the query class.
    _register(
        "13",
        [Atom("customer", ["custkey", "c_name"]), Atom("orders", ["orderkey", "custkey"])],
        projection=["custkey"],
        executable=False,
        notes="Excluded: the original query is a left outer join on customer and orders.",
        boolean_variant=False,
    )

    # Q14: promotion effect.
    _register(
        "14",
        [
            Atom("lineitem", ["orderkey", "partkey", "l_shipdate"]),
            Atom("part", ["partkey", "p_type"]),
        ],
        projection=["p_type"],
        selections=conjunction_of(
            [
                Comparison("l_shipdate", ">=", "1995-09-01"),
                Comparison("l_shipdate", "<", "1995-10-01"),
            ]
        ),
    )

    # Q15: top supplier (view inlined, aggregation dropped).
    _register(
        "15",
        [
            Atom("lineitem", ["orderkey", "suppkey", "l_shipdate"]),
            Atom("supplier", ["suppkey", "s_name"]),
        ],
        projection=["suppkey", "s_name"],
        selections=conjunction_of(
            [
                Comparison("l_shipdate", ">=", "1996-01-01"),
                Comparison("l_shipdate", "<", "1996-04-01"),
            ]
        ),
    )

    # Q16: parts/supplier relationship.
    _register(
        "16",
        [
            Atom("partsupp", ["partkey", "suppkey"]),
            Atom("part", ["partkey", "p_brand", "p_type", "p_size"]),
        ],
        projection=["p_brand", "p_type", "p_size"],
        selections=conjunction_of(
            [Comparison("p_brand", "!=", "Brand#45"), _eq("p_size", 49)]
        ),
    )

    # Q17: small-quantity-order revenue.
    _register(
        "17",
        [
            Atom("lineitem", ["orderkey", "partkey", "l_quantity"]),
            Atom("part", ["partkey", "p_brand", "p_container"]),
        ],
        projection=["p_brand"],
        selections=conjunction_of([_eq("p_brand", "Brand#23"), _eq("p_container", "MED BOX")]),
        notes="B17 is the Boolean flavour used in Fig. 9: eager plans aggregate the very large "
        "lineitem table although the selective join partner eliminates most of it.",
    )

    # Q18: large volume customer (the paper's running example).
    _register(
        "18",
        [
            Atom("customer", ["custkey", "c_name"]),
            Atom("orders", ["orderkey", "custkey", "o_orderdate", "o_totalprice"]),
            Atom("lineitem", ["orderkey", "l_quantity"]),
        ],
        projection=["c_name", "o_orderdate", "o_totalprice"],
        selections=_eq("c_name", "Customer#000000001"),
        needs_fds=True,
        notes="Very selective condition on customer; the lazy plan joins it first while "
        "MystiQ must start with the unselective orders ⋈ lineitem join.",
    )

    # Q19: discounted revenue — disjunction of three mutually exclusive branches.
    branch = lambda brand, container, size: Conjunction(  # noqa: E731 - compact branch builder
        [_eq("p_brand", brand), _eq("p_container", container), Comparison("p_size", "<=", size)]
    )
    _register(
        "19",
        [
            Atom("lineitem", ["orderkey", "partkey", "l_quantity"]),
            Atom("part", ["partkey", "p_brand", "p_container", "p_size"]),
        ],
        projection=["p_brand"],
        selections=Disjunction(
            [
                branch("Brand#12", "SM CASE", 5),
                branch("Brand#23", "MED BOX", 10),
                branch("Brand#34", "LG CASE", 15),
            ]
        ),
        notes="The three disjuncts select disjoint sets of independent tuples "
        "(mutually exclusive brands), so each can be processed as a hierarchical query.",
    )

    # Q20: potential part promotion.
    _register(
        "20",
        [
            Atom("supplier", ["suppkey", "s_name", "s_nationkey"]),
            Atom("nation_s", ["s_nationkey", "ns_name"]),
            Atom("partsupp", ["partkey", "suppkey", "ps_availqty"]),
            Atom("part", ["partkey", "p_size"]),
        ],
        projection=["s_name"],
        selections=conjunction_of([_eq("ns_name", "CANADA"), _eq("p_size", 15)]),
        needs_fds=True,
        notes="Hierarchical only through the supplier-name key FD.",
    )

    # Q21: suppliers who kept orders waiting.
    _register(
        "21",
        [
            Atom("supplier", ["suppkey", "s_name", "s_nationkey"]),
            Atom("lineitem", ["orderkey", "suppkey"]),
            Atom("orders", ["orderkey", "o_orderstatus"]),
            Atom("nation_s", ["s_nationkey", "ns_name"]),
        ],
        projection=["s_name"],
        selections=conjunction_of([_eq("o_orderstatus", "F"), _eq("ns_name", "SAUDI ARABIA")]),
        needs_fds=True,
        notes="Hierarchical only through the supplier-name key FD.",
    )

    # Q22: global sales opportunity — degenerates to a plain selection.
    _register(
        "22",
        [Atom("customer", ["custkey", "c_name", "c_acctbal"])],
        projection=["c_name"],
        selections=Comparison("c_acctbal", ">", 0.0),
        executable=False,
        notes="Excluded: removing the aggregation subqueries and inequality joins leaves a "
        "simple selection, which the paper does not evaluate.",
        boolean_variant=False,
    )


_build_registry()


def tpch_query(key: str) -> TpchQuerySpec:
    """Look up a registered query variant by key (e.g. ``"18"`` or ``"B3"``)."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise QueryError(
            f"unknown TPC-H query key {key!r}; known keys: {sorted(_REGISTRY)}"
        ) from None


def all_query_keys() -> List[str]:
    return list(_REGISTRY)


def executable_query_keys() -> List[str]:
    return [key for key, spec in _REGISTRY.items() if spec.executable]


def excluded_query_keys() -> List[str]:
    return [key for key, spec in _REGISTRY.items() if not spec.executable]


# ---------------------------------------------------------------------------
# The hand-written queries of Figures 11 and 12
# ---------------------------------------------------------------------------


def query_A(acctbal_threshold: float) -> ConjunctiveQuery:
    """Fig. 11 query A: ``π_name(Nation ⋈ σ_acctbal<ct(Supp) ⋈ Psupp)``."""
    return ConjunctiveQuery(
        "A",
        [
            Atom("nation_s", ["s_nationkey", "ns_name"]),
            Atom("supplier", ["suppkey", "s_nationkey", "s_acctbal"]),
            Atom("partsupp", ["partkey", "suppkey"]),
        ],
        projection=["ns_name"],
        selections=Comparison("s_acctbal", "<", acctbal_threshold),
    )


def query_B(price_threshold: float, date: str = "1996-09-01") -> ConjunctiveQuery:
    """Fig. 11 query B: ``π_ckey,name(Cust ⋈ σ_odate<d, price<ct(Ord))``."""
    return ConjunctiveQuery(
        "B",
        [
            Atom("customer", ["custkey", "c_name"]),
            Atom("orders", ["orderkey", "custkey", "o_orderdate", "o_totalprice"]),
        ],
        projection=["custkey", "c_name"],
        selections=conjunction_of(
            [
                Comparison("o_orderdate", "<", date),
                Comparison("o_totalprice", "<", price_threshold),
            ]
        ),
    )


def query_C(date: str = "1992-01-31") -> ConjunctiveQuery:
    """Fig. 12 query C: ``π_ckey,name(Cust ⋈ σ_odate<d(Ord) ⋈ Item)``."""
    return ConjunctiveQuery(
        "C",
        [
            Atom("customer", ["custkey", "c_name"]),
            Atom("orders", ["orderkey", "custkey", "o_orderdate"]),
            Atom("lineitem", ["orderkey", "l_quantity"]),
        ],
        projection=["custkey", "c_name"],
        selections=Comparison("o_orderdate", "<", date),
    )


def query_D(acctbal_threshold: float = 600.0) -> ConjunctiveQuery:
    """Fig. 12 query D: ``π_nkey(Nation ⋈ σ_acctbal<600(Supp) ⋈ Psupp)``."""
    return ConjunctiveQuery(
        "D",
        [
            Atom("nation_s", ["s_nationkey", "ns_name"]),
            Atom("supplier", ["suppkey", "s_nationkey", "s_acctbal"]),
            Atom("partsupp", ["partkey", "suppkey"]),
        ],
        projection=["s_nationkey"],
        selections=Comparison("s_acctbal", "<", acctbal_threshold),
    )

"""Plan construction: join orders, answer plans, and aggregation placement.

SPROUT separates two concerns that safe plans entangle:

* computing the *answer tuples* — any join order works, so the (host) optimizer
  is free to pick a good one (lazy plans exploit this);
* computing the *confidences* — governed by the query signature, and movable
  through the plan as eager, hybrid, or lazy aggregation (Section V.B).

This module provides the join-order heuristics (a greedy System-R style order
for lazy plans, the hierarchy-driven order that safe/eager plans must use),
the construction of answer-tuple plans from probabilistic tables, and the
eager/hybrid evaluation that interleaves joins with aggregation and
propagation steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanningError
from repro.algebra.aggregate import AggregateSpec, GroupByOp
from repro.algebra.columnar import (
    DEFAULT_BATCH_ROWS,
    BatchHashJoinOp,
    BatchMaterializedOp,
    BatchOperator,
    BatchProjectOp,
    BatchScanOp,
    BatchSelectOp,
    ColumnBatch,
    group_by_columns,
)
from repro.algebra.expressions import TruePredicate
from repro.algebra.joins import HashJoinOp
from repro.algebra.operators import MaterializedOp, Operator, ProjectOp, ScanOp, SelectOp
from repro.algebra.stats import StatisticsCatalog, estimate_selectivity
from repro.prob.pdb import ProbabilisticDatabase
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.hierarchy import HierarchyNode
from repro.storage.relation import Relation
from repro.storage.schema import ColumnRole, Schema

__all__ = [
    "JoinOrderPlanner",
    "base_table_plan",
    "base_table_plan_batch",
    "build_answer_plan",
    "build_answer_plan_batch",
    "materialize_answer",
    "needed_data_attributes",
    "evaluate_deterministic",
    "eager_evaluation",
    "EagerNodeResult",
]


def needed_data_attributes(query: ConjunctiveQuery, table: str) -> List[str]:
    """Data columns of ``table`` that must survive its base-table projection.

    These are the attributes that either participate in a join or appear in
    the projection (selection-attribute) list; selection-only attributes can
    be dropped right after the selection is applied.
    """
    atom = query.atom_of(table)
    keep = (query.join_attributes() | query.head_attributes()) & atom.attribute_set
    return [a for a in atom.attributes if a in keep]


def base_table_plan(
    database: ProbabilisticDatabase,
    query: ConjunctiveQuery,
    table: str,
) -> Operator:
    """Scan → select → project plan for one base probabilistic table."""
    relation = database.relation(table)
    plan: Operator = ScanOp(relation, alias=table)
    selection = query.selections_on(table)
    if not isinstance(selection, TruePredicate):
        plan = SelectOp(plan, selection)
    table_obj = database.table(table)
    keep = needed_data_attributes(query, table)
    keep = keep + [table_obj.var_column, table_obj.prob_column]
    if list(keep) != list(relation.schema.names):
        plan = ProjectOp(plan, keep)
    return plan


class JoinOrderPlanner:
    """Greedy cost-based join ordering (the lazy plans' optimizer stand-in).

    Starts from the table with the smallest estimated filtered cardinality and
    repeatedly adds the connected table whose estimated post-selection size is
    smallest, falling back to the globally smallest remaining table when the
    join graph is disconnected.
    """

    def __init__(self, database: ProbabilisticDatabase):
        self.database = database
        self.statistics = StatisticsCatalog()
        for table in database.table_names():
            self.statistics.register(database.relation(table), name=table)

    def filtered_cardinality(self, query: ConjunctiveQuery, table: str) -> float:
        stats = self.statistics.get(table)
        rows = stats.row_count if stats else 1000
        selection = query.selections_on(table)
        return max(1.0, rows * estimate_selectivity(selection, stats))

    def lazy_join_order(self, query: ConjunctiveQuery) -> List[str]:
        """Selective-first greedy order (what a cost-based optimizer would pick)."""
        remaining = set(query.table_names())
        sizes = {table: self.filtered_cardinality(query, table) for table in remaining}
        order: List[str] = []
        joined_attributes: Set[str] = set()
        while remaining:
            connected = [
                table
                for table in remaining
                if not order or (query.attributes_of(table) & joined_attributes)
            ]
            candidates = connected or sorted(remaining)
            chosen = min(candidates, key=lambda table: (sizes[table], table))
            order.append(chosen)
            joined_attributes |= set(query.attributes_of(chosen)) & query.join_attributes()
            remaining.remove(chosen)
        return order

    def hierarchical_join_order(self, query: ConjunctiveQuery, tree: HierarchyNode) -> List[str]:
        """The join order imposed by the hierarchy tree (safe/eager plans).

        Deeper subtrees are joined first (the unselective ``Ord ⋈ Item`` join
        of the Introduction), so the linearised order lists tables of the
        deepest components before shallower ones.
        """

        def depth(node: HierarchyNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(depth(child) for child in node.children)

        def collect(node: HierarchyNode) -> List[str]:
            if node.is_leaf:
                return [node.atom.table]
            ordered_children = sorted(node.children, key=depth, reverse=True)
            result: List[str] = []
            for child in ordered_children:
                result.extend(collect(child))
            return result

        return collect(tree)


def base_table_plan_batch(
    database: ProbabilisticDatabase,
    query: ConjunctiveQuery,
    table: str,
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> BatchOperator:
    """Columnar scan → select → project plan for one base probabilistic table."""
    relation = database.relation(table)
    plan: BatchOperator = BatchScanOp(relation, alias=table, batch_size=batch_size)
    selection = query.selections_on(table)
    if not isinstance(selection, TruePredicate):
        plan = BatchSelectOp(plan, selection)
    table_obj = database.table(table)
    keep = needed_data_attributes(query, table)
    keep = keep + [table_obj.var_column, table_obj.prob_column]
    if list(keep) != list(relation.schema.names):
        plan = BatchProjectOp(plan, keep)
    return plan


def build_answer_plan(
    database: ProbabilisticDatabase,
    query: ConjunctiveQuery,
    join_order: Sequence[str],
) -> Operator:
    """Left-deep plan of natural hash joins following ``join_order``."""
    if set(join_order) != set(query.table_names()):
        raise PlanningError(
            f"join order {list(join_order)} does not cover the query tables "
            f"{query.table_names()}"
        )
    plan = base_table_plan(database, query, join_order[0])
    for table in join_order[1:]:
        right = base_table_plan(database, query, table)
        plan = HashJoinOp(plan, right)
    return plan


def build_answer_plan_batch(
    database: ProbabilisticDatabase,
    query: ConjunctiveQuery,
    join_order: Sequence[str],
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> BatchOperator:
    """Columnar twin of :func:`build_answer_plan` (same shape, same order)."""
    if set(join_order) != set(query.table_names()):
        raise PlanningError(
            f"join order {list(join_order)} does not cover the query tables "
            f"{query.table_names()}"
        )
    plan = base_table_plan_batch(database, query, join_order[0], batch_size)
    for table in join_order[1:]:
        right = base_table_plan_batch(database, query, table, batch_size)
        plan = BatchHashJoinOp(plan, right)
    return plan


def project_answer_columns(plan, query: ConjunctiveQuery):
    """Project the joined result onto the head attributes plus all V/P pairs.

    Works for both the row (:class:`Operator`) and batch
    (:class:`BatchOperator`) plan flavours.
    """
    schema = plan.schema
    keep = [a for a in query.projection if a in schema]
    keep += [a.name for a in schema if a.role is not ColumnRole.DATA]
    if isinstance(plan, BatchOperator):
        return BatchProjectOp(plan, keep)
    return ProjectOp(plan, keep)


def materialize_answer(
    database: ProbabilisticDatabase,
    planner: "JoinOrderPlanner",
    query: ConjunctiveQuery,
    join_order: Optional[Sequence[str]] = None,
    execution: str = "row",
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> Tuple[Relation, List[str], int]:
    """Materialise the answer rows of ``query`` (with V/P columns carried).

    The shared front half of every lineage-consuming evaluation path — the
    exact lineage fallback, the anytime d-tree route, and the top-k/threshold
    scheduler all start from this relation.  Returns ``(answer, join order,
    rows processed)``; ``execution`` selects the row or columnar pipeline.
    """
    order = list(join_order) if join_order else planner.lazy_join_order(query)
    if execution == "batch":
        plan = build_answer_plan_batch(database, query, order, batch_size)
    else:
        plan = build_answer_plan(database, query, order)
    plan = project_answer_columns(plan, query)
    relation = plan.to_relation(query.name)
    return relation, order, plan.total_rows_processed()


# ---------------------------------------------------------------------------
# Deterministic evaluation (possible-worlds ground truth)
# ---------------------------------------------------------------------------


def evaluate_deterministic(query: ConjunctiveQuery, instance: Dict[str, Relation]) -> Relation:
    """Evaluate ``query`` on one deterministic world instance.

    Used by the possible-worlds ground truth: natural joins over the instance
    relations, the selection condition, and a duplicate-eliminating projection
    onto the head attributes (Boolean queries yield a single empty tuple when
    satisfied).
    """
    plan: Optional[Operator] = None
    for table in query.table_names():
        relation = instance[table]
        table_plan: Operator = ScanOp(relation, alias=table)
        selection = query.selections_on(table)
        if not isinstance(selection, TruePredicate):
            table_plan = SelectOp(table_plan, selection)
        needed = needed_data_attributes(query, table)
        if needed != list(relation.schema.names):
            table_plan = ProjectOp(table_plan, needed)
        plan = table_plan if plan is None else HashJoinOp(plan, table_plan)
    projected = ProjectOp(plan, [a for a in query.projection if a in plan.schema])
    return projected.to_relation(query.name).distinct()


# ---------------------------------------------------------------------------
# Eager / hybrid evaluation along the hierarchy tree
# ---------------------------------------------------------------------------


@dataclass
class EagerNodeResult:
    """Intermediate result of eager evaluation: a relation plus its leader pair."""

    relation: Relation
    leader: str
    rows_processed: int = 0
    aggregation_rows: int = 0


def _pairs_of(schema: Schema) -> List[str]:
    return [pair.source for pair in schema.var_prob_pairs()]


def _aggregate_pair(relation: Relation, leader: str, execution: str = "row") -> Relation:
    """Operator ``[leader*]``: GRP by every other column, min(V) / prob(P)."""
    schema = relation.schema
    pair = next(p for p in schema.var_prob_pairs() if p.source == leader)
    group_by = [
        name
        for name in schema.names
        if name not in (pair.var_name, pair.prob_name)
    ]
    aggregates = [
        AggregateSpec("min", pair.var_name, pair.var_name),
        AggregateSpec("prob", pair.prob_name, pair.prob_name),
    ]
    if execution == "batch":
        batch = group_by_columns(ColumnBatch.from_relation(relation), group_by, aggregates)
        return batch.to_relation(relation.name)
    operator = GroupByOp(MaterializedOp(relation), group_by, aggregates)
    return operator.to_relation(relation.name)


def _propagate_pairs(relation: Relation, keep: str, drop: str) -> Relation:
    """Fold ``drop``'s probability into ``keep``'s and remove ``drop``'s pair."""
    schema = relation.schema
    keep_pair = next(p for p in schema.var_prob_pairs() if p.source == keep)
    drop_pair = next(p for p in schema.var_prob_pairs() if p.source == drop)
    kept_attributes = [
        a for a in schema if a.name not in (drop_pair.var_name, drop_pair.prob_name)
    ]
    new_schema = Schema(kept_attributes)
    result = Relation(relation.name, new_schema)
    kept_indices = [schema.index_of(a.name) for a in kept_attributes]
    keep_prob_position = new_schema.index_of(keep_pair.prob_name)
    for row in relation:
        values = [row[i] for i in kept_indices]
        values[keep_prob_position] = row[keep_pair.prob_index] * row[drop_pair.prob_index]
        result.append(tuple(values))
    return result


def eager_evaluation(
    database: ProbabilisticDatabase,
    query: ConjunctiveQuery,
    tree: HierarchyNode,
    signature: "Signature",
    aggregate_leaves: bool = True,
    head_attributes: Optional[Iterable[str]] = None,
    execution: str = "row",
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> EagerNodeResult:
    """Evaluate ``query`` with eager (or hybrid) aggregation along ``tree``.

    ``aggregate_leaves=True`` gives the fully eager plan of Fig. 7(a): every
    base table is aggregated before joining.  ``aggregate_leaves=False`` gives
    the hybrid plan of Fig. 7(b): aggregation operators on top of the input
    tables are dropped (they are expensive on large tables and useless under
    selective joins) but intermediate join results are still aggregated.

    ``execution="batch"`` runs the joins and aggregations columnar.
    Intermediate node results are still materialised as row relations between
    steps (the hierarchy recursion and :func:`reduce_relation` exchange
    relations), so each node pays a row<->column transposition; keeping the
    intermediates columnar end-to-end is a known follow-up optimisation — the
    lazy plan, which is the paper's fast path, already avoids all of it.

    At every inner node the probability computation operator placed there uses
    the signature obtained by the placement rules of Section V.B: the query
    signature restricted to the tables of the subplan, with the signatures of
    operators already executed below replaced by their leftmost table name.
    The returned relation has the query's head attributes as data columns plus
    a single V/P pair; the caller turns the probability column into the final
    ``conf`` column.
    """
    from repro.query.signature import restrict_signature  # avoids a module cycle
    from repro.sprout.conf_operator import reduce_relation

    # ``head_attributes`` may be wider than the query's projection (its FD
    # closure): those attributes are constant per bag of duplicates and are
    # carried along so that physical joins on them still happen.
    head = frozenset(head_attributes) if head_attributes is not None else query.head_attributes()
    rows_processed = 0

    def columns_to_keep(schema: Schema, parent_attributes: Iterable[str]) -> List[str]:
        wanted = set(parent_attributes) | head
        keep = [
            a.name
            for a in schema
            if a.role is ColumnRole.DATA and a.name in wanted
        ]
        keep += [a.name for a in schema if a.role is not ColumnRole.DATA]
        return keep

    batch = execution == "batch"

    def evaluate(node: HierarchyNode, parent_attributes: Iterable[str]) -> EagerNodeResult:
        nonlocal rows_processed
        if node.is_leaf:
            table = node.atom.table
            if batch:
                plan = base_table_plan_batch(database, query, table, batch_size)
            else:
                plan = base_table_plan(database, query, table)
            relation = plan.to_relation(table)
            rows_processed += plan.total_rows_processed()
            keep = columns_to_keep(relation.schema, parent_attributes)
            if keep != list(relation.schema.names):
                relation = relation.project(keep)
            if aggregate_leaves:
                relation = _aggregate_pair(relation, table, execution=execution)
            return EagerNodeResult(
                relation=relation,
                leader=table,
                aggregation_rows=1 if aggregate_leaves else 0,
            )

        child_results = [evaluate(child, node.attributes) for child in node.children]
        if batch:
            plan = BatchMaterializedOp(child_results[0].relation, batch_size=batch_size)
            for child in child_results[1:]:
                plan = BatchHashJoinOp(
                    plan, BatchMaterializedOp(child.relation, batch_size=batch_size)
                )
        else:
            plan = MaterializedOp(child_results[0].relation)
            for child in child_results[1:]:
                plan = HashJoinOp(plan, MaterializedOp(child.relation))
        joined = plan.to_relation(query.name)
        rows_processed += plan.total_rows_processed()

        keep = columns_to_keep(joined.schema, parent_attributes)
        if keep != list(joined.schema.names):
            joined = joined.project(keep)

        # Signature of the operator placed at this node (Section V.B): restrict
        # the query signature to the variable/probability pairs still present
        # in the subplan's output.  Child operators already executed below have
        # reduced their subtree to a single (leader) pair, so only that table
        # survives the restriction — the "replace by the leftmost table name"
        # rule of the paper.
        present_tables = [pair.source for pair in joined.schema.var_prob_pairs()]
        local_signature = restrict_signature(signature, present_tables)
        if local_signature is None:
            raise PlanningError(
                f"signature {signature} does not cover any of the pairs {present_tables}"
            )
        reduced_relation, leader = reduce_relation(joined, local_signature, execution=execution)
        return EagerNodeResult(relation=reduced_relation, leader=leader)

    result = evaluate(tree, parent_attributes=())
    result.rows_processed = rows_processed
    return result

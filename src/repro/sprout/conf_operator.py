"""The conf() operator's semantics: a sequence of aggregations and propagations.

Fig. 5 of the paper defines the probability computation operator by a
translation to SQL: a bottom-up traversal of the signature emits

* for ``α*`` an **aggregation** step ``GRP[a; min(V) as V, prob(P) as P]``
  grouping by all other columns, and
* for ``αβ`` a **propagation** step that multiplies β's probability into α's
  probability column and drops β's variable/probability columns.

This module executes that translation literally on a materialised answer
relation (Example V.1 / Fig. 6), recording every step.  It is deliberately the
*straightforward* implementation — each step is an independent pass — and
serves both as the reference semantics the optimised scan-based evaluator is
tested against and as the slow side of the ablation benchmark
(``benchmarks/bench_ablation_onescan.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.algebra.aggregate import AggregateSpec, GroupByOp
from repro.algebra.operators import MaterializedOp
from repro.query.signature import ConcatSig, Signature, StarSig, TableSig
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema

__all__ = [
    "ConfStep",
    "ConfOperatorResult",
    "apply_semantics",
    "compute_answer_confidences",
    "grp_statements",
    "reduce_relation",
]


@dataclass(frozen=True)
class ConfStep:
    """One constituent step of the operator: an aggregation or a propagation."""

    kind: str  # "aggregate" or "propagate"
    description: str
    signature: str
    rows_in: int = 0
    rows_out: int = 0

    def __str__(self) -> str:
        return f"{self.kind}[{self.signature}]: {self.description}"


@dataclass
class ConfOperatorResult:
    """Distinct answer tuples with confidences, plus the executed steps."""

    relation: Relation
    steps: List[ConfStep] = field(default_factory=list)

    @property
    def aggregation_count(self) -> int:
        return sum(1 for step in self.steps if step.kind == "aggregate")

    @property
    def propagation_count(self) -> int:
        return sum(1 for step in self.steps if step.kind == "propagate")

    def confidences(self) -> Dict[Tuple[object, ...], float]:
        """Mapping from distinct data tuple to its confidence."""
        conf_index = self.relation.schema.index_of("conf")
        data_indices = [
            i
            for i, attribute in enumerate(self.relation.schema)
            if attribute.name != "conf"
        ]
        return {
            tuple(row[i] for i in data_indices): row[conf_index] for row in self.relation
        }


def _var_column(schema: Schema, table: str) -> str:
    for pair in schema.var_prob_pairs():
        if pair.source == table:
            return pair.var_name
    raise QueryError(f"answer relation has no variable column for table {table!r}")


def _prob_column(schema: Schema, table: str) -> str:
    for pair in schema.var_prob_pairs():
        if pair.source == table:
            return pair.prob_name
    raise QueryError(f"answer relation has no probability column for table {table!r}")


def grp_statements(signature: Signature) -> List[str]:
    """The list of GRP / propagation statements the semantics would execute.

    Purely static (no data): useful for explain output and for checking the
    counts of Example V.1 (five aggregations and two propagations for
    ``(Cust*(Ord*Item*)*)*``; three aggregations for ``(Cust(Ord Item*)*)*``).
    """
    statements: List[str] = []

    def translate(node: Signature) -> str:
        if isinstance(node, TableSig):
            return node.table
        if isinstance(node, StarSig):
            leader = translate(node.inner)
            statements.append(f"aggregate[{node.inner}*] on {leader}")
            return leader
        if isinstance(node, ConcatSig):
            # Fig. 5 evaluates the right part of a concatenation first (Fig. 6:
            # Item is aggregated before Ord), then folds into the left leader.
            leaders = [translate(part) for part in reversed(node.parts)]
            leaders.reverse()
            first = leaders[0]
            for other in leaders[1:]:
                statements.append(f"propagate[{first} {other}]")
            return first
        raise QueryError(f"unknown signature node {node!r}")

    translate(signature)
    return statements


def reduce_relation(
    answer: Relation,
    signature: Signature,
    steps: Optional[List[ConfStep]] = None,
    execution: str = "row",
) -> Tuple[Relation, str]:
    """Run the aggregation/propagation sequence of ``signature`` on ``answer``.

    Returns the reduced relation (data columns plus a single surviving V/P
    pair — the pair of the signature's leftmost table) and that leader table's
    name.  This is the building block shared by the lazy GRP semantics
    (:func:`apply_semantics`) and by the eager/hybrid planners, which apply it
    at intermediate plan nodes with the node's restricted signature
    (Section V.B).  ``execution="batch"`` runs each aggregation/propagation
    pass columnar (identical results, fewer per-row interpreter trips).
    """
    current = answer
    recorded: List[ConfStep] = steps if steps is not None else []
    batch_mode = execution == "batch"

    def aggregate(relation: Relation, table: str, signature_text: str) -> Relation:
        """GRP by every column except ``table``'s V/P pair (operator ``[α*]``)."""
        schema = relation.schema
        var_column = _var_column(schema, table)
        prob_column = _prob_column(schema, table)
        group_by = [name for name in schema.names if name not in (var_column, prob_column)]
        aggregates = [
            AggregateSpec("min", var_column, var_column),
            AggregateSpec("prob", prob_column, prob_column),
        ]
        if batch_mode:
            from repro.algebra.columnar import ColumnBatch, group_by_columns

            result = group_by_columns(
                ColumnBatch.from_relation(relation), group_by, aggregates
            ).to_relation(relation.name)
        else:
            operator = GroupByOp(MaterializedOp(relation), group_by, aggregates)
            result = operator.to_relation(relation.name)
        recorded.append(
            ConfStep(
                kind="aggregate",
                description=f"GRP[{', '.join(group_by)}; min({var_column}), prob({prob_column})]",
                signature=signature_text,
                rows_in=len(relation),
                rows_out=len(result),
            )
        )
        return result

    def propagate(relation: Relation, keep_table: str, drop_table: str) -> Relation:
        """Multiply ``drop_table``'s probability into ``keep_table``'s and drop its pair."""
        schema = relation.schema
        keep_prob = _prob_column(schema, keep_table)
        drop_var = _var_column(schema, drop_table)
        drop_prob = _prob_column(schema, drop_table)
        keep_prob_index = schema.index_of(keep_prob)
        drop_prob_index = schema.index_of(drop_prob)
        kept_attributes = [a for a in schema if a.name not in (drop_var, drop_prob)]
        new_schema = Schema(kept_attributes)
        kept_indices = [schema.index_of(a.name) for a in kept_attributes]
        if batch_mode:
            columns = relation.to_columns()
            kept_columns = [columns[i] for i in kept_indices]
            kept_columns[new_schema.index_of(keep_prob)] = [
                keep * drop
                for keep, drop in zip(columns[keep_prob_index], columns[drop_prob_index])
            ]
            result = Relation.from_columns(
                relation.name, new_schema, kept_columns, length=len(relation)
            )
        else:
            result = Relation(relation.name, new_schema)
            for row in relation:
                values = list(row[i] for i in kept_indices)
                # position of keep_prob in the kept columns
                values[new_schema.index_of(keep_prob)] = row[keep_prob_index] * row[drop_prob_index]
                result.append(tuple(values))
        recorded.append(
            ConfStep(
                kind="propagate",
                description=(
                    f"{keep_prob} := {keep_prob} * {drop_prob}; drop {drop_var}, {drop_prob}"
                ),
                signature=f"{keep_table} {drop_table}",
                rows_in=len(relation),
                rows_out=len(result),
            )
        )
        return result

    def translate(node: Signature) -> str:
        """Recursive Fig. 5 translation; returns the leader table of the node."""
        nonlocal current
        if isinstance(node, TableSig):
            return node.table
        if isinstance(node, StarSig):
            leader = translate(node.inner)
            current = aggregate(current, leader, f"{node.inner}*")
            return leader
        if isinstance(node, ConcatSig):
            # Right-to-left evaluation, as in Fig. 5/6, then fold probabilities
            # into the leftmost leader's pair.
            leaders = [translate(part) for part in reversed(node.parts)]
            leaders.reverse()
            first = leaders[0]
            for other in leaders[1:]:
                current = propagate(current, first, other)
            return first
        raise QueryError(f"unknown signature node {node!r}")

    leader = translate(signature)
    return current, leader


def compute_answer_confidences(
    answer,
    signature: Signature,
    conf_method: str = "scans",
    execution: str = "row",
    presorted: bool = True,
    name: Optional[str] = None,
):
    """Confidence computation on a materialised (sorted) answer.

    The single dispatch point between the two confidence methods
    (``conf_method="scans"`` — the scan-based operator of Section V.C — or
    ``"semantics"``, the literal Fig. 5 GRP translation) and the two physical
    backends, shared by the engine's lazy operator paths and by the exact
    short-circuit of the top-k/threshold API.  ``answer`` is a
    :class:`repro.storage.relation.Relation` under ``execution="row"`` and a
    :class:`repro.algebra.columnar.ColumnBatch` under ``execution="batch"``.
    Returns ``(relation, scan schedule or None, scans used)``.

    This operator path serves *tractable* queries only and is a small number
    of sequential scans, so it stays in-process: the d-tree routes (unsafe
    queries, ``confidence="approx"``, top-k/threshold scheduling) are where
    per-tuple confidence work dominates, and they are what
    ``SproutEngine(workers=N)`` spreads across cores via
    :mod:`repro.sprout.parallel`.
    """
    from repro.sprout.scans import apply_scan_schedule, apply_scan_schedule_columns

    if conf_method not in ("scans", "semantics"):
        raise QueryError(
            f"unknown confidence method {conf_method!r}; choose 'scans' or 'semantics'"
        )
    # ColumnBatch carries no name of its own; fall back to the relation's.
    label = name if name is not None else getattr(answer, "name", "answer")
    if conf_method == "semantics":
        relation = answer if execution == "row" else answer.to_relation(label)
        return apply_semantics(relation, signature, execution=execution).relation, None, 0
    if execution == "batch":
        relation, schedule = apply_scan_schedule_columns(
            answer, signature, presorted=presorted, name=label
        )
    else:
        relation, schedule = apply_scan_schedule(answer, signature, presorted=presorted)
    return relation, schedule, schedule.total_scans


def apply_semantics(
    answer: Relation, signature: Signature, execution: str = "row"
) -> ConfOperatorResult:
    """Execute the Fig. 5 translation on ``answer``.

    ``answer`` must contain the data columns of the (projected) query answer
    plus one variable/probability pair per table in ``signature``.  The result
    relation has the data columns plus a ``conf`` column with the exact
    probability of each distinct data tuple.
    """
    steps: List[ConfStep] = []
    current, leader = reduce_relation(answer, signature, steps, execution=execution)

    # Final projection: keep the data columns and the leader's probability as "conf".
    schema = current.schema
    prob_column = _prob_column(schema, leader)
    data_names = [a.name for a in schema if a.role is ColumnRole.DATA]
    final_schema = Schema(
        [schema[name] for name in data_names] + [Attribute("conf", "float")]
    )
    final = Relation(answer.name, final_schema)
    data_indices = schema.indices_of(data_names)
    prob_index = schema.index_of(prob_column)
    seen = set()
    for row in current:
        data = tuple(row[i] for i in data_indices)
        if data in seen:
            # Cannot happen for correct signatures (the last aggregation groups
            # by exactly the data columns); guard anyway.
            continue
        seen.add(data)
        final.append(data + (row[prob_index],))
    return ConfOperatorResult(relation=final, steps=steps)

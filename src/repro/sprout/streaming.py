"""Standing top-k/threshold queries over a feed of deltas.

One-shot engine calls answer "what is the top-k *now*"; monitoring workloads
ask the engine to *keep* answering while the probability space and the
candidate set drift — sensor confidences move, tuples arrive and retire.
Recompiling from scratch per tick throws away exactly the work the
shared-lineage DAG (:mod:`repro.prob.sharedag`) was built to keep: the
compiled structure is probability-independent, so a delta only has to re-seed
the rows carrying the changed variable and repair their ancestors
(:mod:`repro.prob.delta`), after which the previously-decided set can be
re-checked — and usually re-confirmed — in a handful of logical steps.

:class:`StandingQuery` is that loop, packaged:

* it owns a **private** lineage cache (a
  :class:`repro.prob.sharedag.SharedDTreeCache` in shared mode) — never the
  engine's, whose store is bound to the unmutated database probability
  space — holding one live view per candidate tuple;
* :meth:`update_probability` / :meth:`insert_tuple` / :meth:`delete_tuple`
  apply deltas: updates delta-propagate through the store and re-measure
  exactly the views whose root the delta touched (everything else keeps its
  frontier — an untouched decided tuple never re-enters refinement);
  inserts intern the new clauses against the standing
  :class:`repro.prob.sharedag.ClauseInterner`, so a warm insert built from
  already-refined subformulas decides in 0–few steps; deletes retire the
  view with epoch-based garbage accounting;
* :meth:`refresh` re-decides the answer set with the *same* decision
  arithmetic as the one-shot engine — it calls
  :func:`repro.sprout.topk.run_decision` (scheduler +
  :func:`repro.sprout.topk.finish_selected`), so a standing decision and an
  `evaluate_topk` over the same final state are the same code — and returns
  a full :class:`repro.sprout.engine.EvaluationResult` whose
  ``delta_steps`` is the cost of this batch alone (``refine_steps`` stays
  cumulative).

Construct one via :meth:`repro.sprout.engine.SproutEngine.watch_topk` /
``watch_threshold`` (which materialise the query's answer lineage first), or
directly from a lineage map for lineage-level monitoring.  With
``shared_lineage=False`` the layer stays functional but non-incremental:
probability updates flag a full rebuild of the per-tuple tree cache on the
next refresh (the legacy object-graph trees bake marginals into their
structure, so there is nothing to delta-propagate).

Determinism: every delta is a deterministic function of (store state, delta),
and :meth:`refresh` re-measures touched frontiers before deciding, so the
decided set, the exact confidences of selected tuples, and the *bounds after
closing every candidate* end bit-identical to compiling the final state from
scratch — under either numeric backend, with backend-independent step
counts.  (Intermediate open-leaf brackets are the one thing history leaves a
mark on: a warm store has refined more than a cold compile of the final
state, so non-selected bounds may be tighter — never looser than sound.)
See ``docs/streaming.md`` for the full update model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import PlanningError, ProbabilityError
from repro.prob.backend import backend_name
from repro.prob.delta import DeltaReport
from repro.prob.dtree import (
    DEFAULT_MAX_STEPS,
    DTreeCache,
    canonical_clauses,
    dnf_from_canonical,
)
from repro.prob.formulas import DNF
from repro.prob.lineage import dtrees_from_dnfs, interned_dnf
from repro.prob.sharedag import DEFAULT_MAX_NODES, SharedDTreeCache
from repro.sprout.topk import TupleCandidate, run_decision
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema

__all__ = [
    "StandingQuery",
]

DataTuple = Tuple[object, ...]


class StandingQuery:
    """A live top-k or threshold answer set, maintained across delta batches.

    Parameters
    ----------
    lineage, probabilities
        The initial candidate set: one DNF per answer tuple, and the
        marginals of every variable mentioned.  Both are copied; the
        standing query owns its probability space from here on.
    k / tau
        Exactly one must be given: a top-k standing query or a
        τ-threshold one (same semantics as the engine entry points).
    confidence
        ``"exact"`` (default) refines every selected tuple to closure on
        each refresh — selected confidences are exact after every batch;
        ``"approx"`` reports bracket midpoints for the decided set.
    max_steps / default_cap
        The budget arithmetic of :func:`repro.sprout.topk.run_decision`,
        applied *per refresh*: ``max_steps=None`` grants each selected
        tuple ``default_cap`` finishing steps (exhaustion raises
        :class:`repro.errors.ApproximationBudgetError`); an explicit
        ``max_steps`` caps the whole refresh and is reported via
        ``decided=False``, never raised.
    shared_lineage / cache_nodes / vectorize / refine_lanes
        The substrate knobs, mirroring the engine's: shared mode (default)
        compiles candidates into one private hash-consed store and is what
        makes deltas incremental; ``cache_nodes`` bounds it (node count);
        ``vectorize`` picks the numeric backend; ``refine_lanes`` fans
        each refresh's shared refinement rounds across a lane pool owned by
        the standing query (results are bit-identical whatever the backend
        or lane count).
    schema / name / execution
        Result-shaping metadata for the returned
        :class:`~repro.sprout.engine.EvaluationResult`; ``schema`` defaults
        to synthesized ``c0..cN`` data columns.

    Attributes: ``selected`` (decided data tuples, most probable first),
    ``decided``, ``result`` (the last refresh's full result),
    ``last_entered`` / ``last_left`` (decided-set transitions of the last
    refresh), ``total_steps`` / ``delta_steps`` (cumulative vs. last-batch
    logical steps).  The constructor runs the initial (cold) refresh.
    """

    def __init__(
        self,
        lineage: Mapping[DataTuple, DNF],
        probabilities: Mapping[int, float],
        *,
        k: Optional[int] = None,
        tau: Optional[float] = None,
        confidence: str = "exact",
        max_steps: Optional[int] = None,
        default_cap: Optional[int] = DEFAULT_MAX_STEPS,
        shared_lineage: bool = True,
        cache_nodes: Optional[int] = DEFAULT_MAX_NODES,
        vectorize: Optional[bool] = None,
        refine_lanes: int = 0,
        schema: Optional[Schema] = None,
        name: str = "standing",
        execution: str = "row",
        deadline=None,
    ):
        if (k is None) == (tau is None):
            raise PlanningError("a standing query needs exactly one of k or tau")
        if k is not None and k < 1:
            raise PlanningError(f"k must be positive, got {k}")
        if tau is not None and not 0.0 <= tau <= 1.0:
            raise PlanningError(f"tau must be within [0, 1], got {tau}")
        if confidence not in ("exact", "approx"):
            raise PlanningError(
                f"unknown confidence mode {confidence!r}; choose from ('exact', 'approx')"
            )
        if refine_lanes < 0:
            raise PlanningError(
                f"refine_lanes must be non-negative, got {refine_lanes}"
            )
        self.k = k
        self.tau = tau
        self.confidence = confidence
        self.max_steps = max_steps
        self.default_cap = default_cap
        self.shared_lineage = bool(shared_lineage)
        self.name = name
        self._schema = schema
        self._execution = execution
        self._cache: Union[SharedDTreeCache, DTreeCache] = (
            SharedDTreeCache(max_nodes=cache_nodes, vectorize=vectorize)
            if self.shared_lineage
            else DTreeCache(max_nodes=cache_nodes)
        )
        self._cache_nodes = cache_nodes
        self.refine_lanes = refine_lanes
        #: Lazily created lane pool for shared refreshes; the standing query
        #: owns it (its store is private), released by :meth:`close`.
        self._lane_pool = None
        self.probabilities: Dict[int, float] = dict(probabilities)
        self.lineage: Dict[DataTuple, DNF] = {}
        self._candidates: Dict[DataTuple, TupleCandidate] = {}
        #: Legacy-mode (shared_lineage=False) rebuild flag: per-tuple trees
        #: bake marginals into their structure, so a probability update
        #: forces a fresh compile of every candidate on the next refresh.
        self._stale_probabilities = False
        self.selected: List[DataTuple] = []
        self.decided = True
        self.last_entered: List[DataTuple] = []
        self.last_left: List[DataTuple] = []
        self.total_steps = 0
        self.delta_steps = 0
        self.result = None
        for data, dnf in lineage.items():
            self._admit(tuple(data), dnf)
        # The deadline bounds only this initial decision; later refreshes
        # take their own (or none) — a standing query outlives any request.
        self.refresh(deadline)

    # -- candidate plumbing -------------------------------------------------

    @property
    def _store(self):
        return self._cache.store if self.shared_lineage else None

    def _lane_pool_for_rounds(self):
        """The standing lane pool, or ``None`` (``refine_lanes=0`` / legacy mode).

        Supervised (:class:`repro.sprout.parallel.SupervisedLanePool`): a
        broken pool respawns with capped retries, then degrades to inline
        compute — bit-identical results either way.
        """
        if self.refine_lanes < 1 or not self.shared_lineage:
            return None
        if self._lane_pool is None:
            from repro.sprout.parallel import SupervisedLanePool

            self._lane_pool = SupervisedLanePool(self.refine_lanes)
        return self._lane_pool

    def close(self) -> None:
        """Release the standing lane pool (idempotent; a no-op without one).

        The pool is recreated lazily if the query refreshes again, so close
        is safe at any point in the standing query's life.
        """
        pool, self._lane_pool = self._lane_pool, None
        if pool is not None:
            pool.close()

    @property
    def _interner(self):
        return self._cache.interner if self.shared_lineage else None

    def _admit(self, data: DataTuple, dnf: DNF) -> None:
        if self._stale_probabilities:
            # Legacy cache is bound to the pre-update probability space; a
            # pending rebuild must land before it can admit a new tree.
            self._rebuild_legacy()
        dnf = interned_dnf(dnf.clauses, self._interner)
        self.lineage[data] = dnf
        tree = self._cache.get(dnf, self.probabilities)
        self._candidates[data] = TupleCandidate(data, tree=tree)

    def __len__(self) -> int:
        return len(self._candidates)

    def cache_stats(self) -> Dict[str, object]:
        """The standing cache's counters, in the engine's ``cache_stats`` shape."""
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "evictions": self._cache.evictions,
            "entries": len(self._cache),
            "shared_lineage": self.shared_lineage,
            "backend": self._backend(),
        }

    def _backend(self) -> str:
        store = self._store
        return backend_name(store.table.vectorize if store is not None else False)

    # -- deltas --------------------------------------------------------------

    def update_probability(self, variable: int, probability: float) -> Optional[DeltaReport]:
        """Move one marginal; delta-propagate and re-measure touched views.

        Shared mode re-seeds the store rows carrying ``variable``, repairs
        their ancestor closure in one multi-source pass, and rebuilds the
        frontier of exactly the views whose root lies in the touched
        closure — a decided tuple whose lineage does not reach an updated
        node keeps its frontier and its decision.  Returns the store's
        :class:`~repro.prob.delta.DeltaReport` (``None`` in legacy mode,
        where the update schedules a full rebuild on the next refresh).
        The new answer set materialises on the next :meth:`refresh`.
        """
        probability = float(probability)
        if not 0.0 <= probability <= 1.0:
            raise ProbabilityError(
                f"probability must be within [0, 1], got {probability}"
            )
        if not self.shared_lineage:
            previous = self.probabilities.get(variable)
            self.probabilities[variable] = probability
            if previous != probability:
                self._stale_probabilities = True
            return None
        report = self._store.update_probability(variable, probability)
        self.probabilities[variable] = probability
        if report.touched:
            for candidate in self._candidates.values():
                tree = candidate.tree
                if tree is not None and tree.root in report.touched:
                    tree.resync()
        return report

    def insert_tuple(
        self,
        data: Iterable[object],
        lineage: Union[DNF, Iterable[Iterable[int]]],
        probabilities: Optional[Mapping[int, float]] = None,
    ) -> DataTuple:
        """Admit a new candidate tuple (replacing any existing one for ``data``).

        ``lineage`` is the tuple's DNF (or raw clause iterables); its
        clauses are interned against the standing store's clause interner,
        so subformulas the store already compiled are hash-consed onto the
        existing — possibly already refined — rows: a warm insert often
        decides in 0–few steps on the next :meth:`refresh`.
        ``probabilities`` supplies marginals for variables the standing
        space has not seen; re-binding a known variable to a different
        value is rejected (that is :meth:`update_probability`'s job).
        """
        data = tuple(data)
        if probabilities:
            for variable, value in probabilities.items():
                value = float(value)
                if not 0.0 <= value <= 1.0:
                    raise ProbabilityError(
                        f"probability must be within [0, 1], got {value}"
                    )
                existing = self.probabilities.get(variable)
                if existing is None:
                    self.probabilities[variable] = value
                elif existing != value:
                    raise ProbabilityError(
                        f"variable {variable} is already bound to {existing}; "
                        f"use update_probability() to move it"
                    )
        dnf = lineage if isinstance(lineage, DNF) else DNF(lineage)
        if data in self._candidates:
            self.delete_tuple(data)
        self._admit(data, dnf)
        return data

    def delete_tuple(self, data: Iterable[object]) -> int:
        """Retire a candidate tuple; returns the rows counted as garbage.

        The view's reachable rows are charged to the store's epoch-based
        garbage accounting (:func:`repro.prob.delta.retire_view`) — an
        upper bound, since hash-consed rows shared with surviving tuples
        stay live.  Deleting an unknown tuple raises
        :class:`repro.errors.PlanningError`.
        """
        data = tuple(data)
        candidate = self._candidates.pop(data, None)
        if candidate is None:
            raise PlanningError(f"unknown standing tuple {data!r}")
        self.lineage.pop(data, None)
        store = self._store
        if store is not None and candidate.tree is not None:
            return store.retire_view(candidate.tree)
        return 0

    # -- re-decide -----------------------------------------------------------

    def _rebuild_legacy(self) -> None:
        """Legacy-mode probability change: recompile every candidate fresh."""
        self._cache = DTreeCache(max_nodes=self._cache_nodes)
        trees = dtrees_from_dnfs(self.lineage, self.probabilities, cache=self._cache)
        self._candidates = {
            data: TupleCandidate(data, tree=tree) for data, tree in trees.items()
        }
        self._stale_probabilities = False

    def refresh(self, deadline=None):
        """Re-decide the answer set against the current (post-delta) state.

        Runs the engine's own decision routine
        (:func:`repro.sprout.topk.run_decision`) over the standing
        candidates — scheduler plus exact-mode finishing, identical budget
        arithmetic — and records the decided-set transitions.  Returns an
        :class:`~repro.sprout.engine.EvaluationResult` whose
        ``delta_steps`` is the logical steps this refresh spent and whose
        ``refine_steps`` is the standing query's cumulative total.

        ``deadline`` (a :class:`repro.deadline.Deadline`) degrades the
        refresh at round boundaries exactly like the one-shot engine routes:
        expiry stops refining, the result reports ``decided=False`` with
        ``degraded="deadline"`` and the current sound bounds, and the next
        refresh simply resumes from where this one stopped.
        """
        from repro.sprout.engine import EvaluationResult

        if self._stale_probabilities:
            self._rebuild_legacy()
        candidates = list(self._candidates.values())
        outcome, finishing_steps = run_decision(
            candidates,
            self.k,
            self.tau,
            self.confidence,
            self.max_steps,
            self.default_cap,
            store=self._store,
            lane_pool=self._lane_pool_for_rounds(),
            deadline=deadline,
        )
        delta_steps = outcome.steps + finishing_steps
        self.delta_steps = delta_steps
        self.total_steps += delta_steps
        ordered = sorted(outcome.selected, key=lambda c: (-c.midpoint, repr(c.data)))
        new_selected = [c.data for c in ordered]
        previous = set(self.selected)
        current = set(new_selected)
        self.last_entered = [data for data in new_selected if data not in previous]
        self.last_left = sorted(
            (data for data in previous if data not in current), key=repr
        )
        self.selected = new_selected
        self.decided = outcome.decided
        relation = self._relation(
            (candidate.data, candidate.midpoint) for candidate in ordered
        )
        self.result = EvaluationResult(
            query_name=self.name,
            plan_style="dtree",
            relation=relation,
            signature=None,
            execution=self._execution,
            confidence=self.confidence,
            epsilon=None,
            bounds=outcome.bounds(),
            k=self.k,
            tau=self.tau,
            decided=outcome.decided,
            refine_steps=self.total_steps,
            delta_steps=delta_steps,
            backend=self._backend(),
            degraded=outcome.degraded,
        )
        return self.result

    # -- crash-recoverable snapshots -----------------------------------------

    def export_state(self) -> dict:
        """The standing query's full state as a picklable dict.

        Shared mode exports the private cache (store segment + views, see
        :meth:`repro.prob.sharedag.SharedDTreeCache.export_state`) plus each
        candidate's root nid, so :meth:`from_state` restores a *warm*
        standing query whose next refresh re-confirms the decided set in
        0–few steps.  Legacy mode exports only the lineage and marginals —
        per-tuple object trees do not ship — and restores cold.
        """
        state = {
            "k": self.k,
            "tau": self.tau,
            "confidence": self.confidence,
            "max_steps": self.max_steps,
            "default_cap": self.default_cap,
            "shared_lineage": self.shared_lineage,
            "cache_nodes": self._cache_nodes,
            "refine_lanes": self.refine_lanes,
            "schema": self._schema,
            "name": self.name,
            "execution": self._execution,
            "probabilities": dict(self.probabilities),
            "lineage": [
                (data, canonical_clauses(dnf)) for data, dnf in self.lineage.items()
            ],
            "selected": list(self.selected),
            "decided": self.decided,
            "total_steps": self.total_steps,
        }
        if self.shared_lineage:
            state["cache"] = self._cache.export_state()
        return state

    @classmethod
    def from_state(cls, state: dict) -> "StandingQuery":
        """Rebuild a standing query from :meth:`export_state`.

        Shared mode restores the warm store and re-admits every candidate
        through the cache — each admit is a view-table hit on the restored
        (possibly already closed) bounds — then runs one refresh to
        re-establish ``result``; on a snapshot of a decided query that
        refresh costs 0–few logical steps.  ``last_entered``/``last_left``
        track against the snapshotted selection, so an unchanged decided
        set reports no transitions across the restart.  Legacy mode falls
        back to the cold constructor (per-tuple trees are not shippable).
        """
        lineage = {
            tuple(data): dnf_from_canonical(clauses)
            for data, clauses in state["lineage"]
        }
        common = dict(
            k=state["k"],
            tau=state["tau"],
            confidence=state["confidence"],
            max_steps=state["max_steps"],
            default_cap=state["default_cap"],
            cache_nodes=state["cache_nodes"],
            refine_lanes=state["refine_lanes"],
            schema=state["schema"],
            name=state["name"],
            execution=state["execution"],
        )
        if not state["shared_lineage"]:
            return cls(
                lineage, state["probabilities"], shared_lineage=False, **common
            )
        query = object.__new__(cls)
        query.k = common["k"]
        query.tau = common["tau"]
        query.confidence = common["confidence"]
        query.max_steps = common["max_steps"]
        query.default_cap = common["default_cap"]
        query.shared_lineage = True
        query.name = common["name"]
        query._schema = common["schema"]
        query._execution = common["execution"]
        query._cache = SharedDTreeCache.from_state(state["cache"])
        query._cache_nodes = common["cache_nodes"]
        query.refine_lanes = common["refine_lanes"]
        query._lane_pool = None
        query.probabilities = dict(state["probabilities"])
        query.lineage = {}
        query._candidates = {}
        query._stale_probabilities = False
        query.selected = [tuple(data) for data in state["selected"]]
        query.decided = state["decided"]
        query.last_entered = []
        query.last_left = []
        query.total_steps = state["total_steps"]
        query.delta_steps = 0
        query.result = None
        for data, dnf in lineage.items():
            query._admit(data, dnf)
        query.refresh()
        return query

    def _relation(self, items) -> Relation:
        if self._schema is not None:
            data_attributes = [a for a in self._schema if a.role is ColumnRole.DATA]
        else:
            arity = len(next(iter(self._candidates))) if self._candidates else 0
            data_attributes = [Attribute(f"c{i}") for i in range(arity)]
        schema = Schema(list(data_attributes) + [Attribute("conf", "float")])
        relation = Relation(self.name, schema)
        for data, confidence in items:
            relation.append(tuple(data) + (confidence,))
        return relation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        goal = f"k={self.k}" if self.k is not None else f"tau={self.tau}"
        return (
            f"StandingQuery({self.name!r}, {goal}, {len(self._candidates)} candidates, "
            f"{len(self.selected)} selected, steps={self.total_steps})"
        )

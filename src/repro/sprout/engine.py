"""The SPROUT engine: the public entry point for confidence computation.

``SproutEngine`` evaluates conjunctive queries (without self-joins) on a
tuple-independent probabilistic database and returns the distinct answer
tuples with their exact confidences.  The caller chooses the *plan style*:

``lazy``
    Optimizer-chosen join order; the confidence operator runs once, at the top
    of the plan (Fig. 7(c)).  The default, and the winner on TPC-H.
``eager``
    Hierarchy-imposed join order with aggregation after every base table and
    every join — structurally the safe plan of Fig. 2/7(a), but expressed with
    SPROUT's operator.
``hybrid``
    Hierarchy-imposed join order with aggregation only after joins (the
    operators on top of the input tables are dropped), Fig. 7(b).
``lineage``
    Reference fallback: evaluate the answer lazily and compute each distinct
    tuple's confidence by exact weighted model counting on its DNF lineage
    via memoised Shannon expansion (worst-case exponential).
``dtree``
    The decomposition-tree engine (:mod:`repro.prob.dtree`): compile each
    tuple's lineage with independent-partition, deterministic-or, and Shannon
    cobranching steps.  Exact when compilation completes; with
    ``confidence="approx"`` it runs anytime, maintaining guaranteed
    lower/upper bounds and stopping at the requested ``epsilon``.

Queries that are not tractable even with FDs (non-hierarchical, *unsafe*
queries) are routed to the d-tree engine automatically instead of raising —
``confidence="exact"`` compiles to exactness, ``confidence="approx"``
stops at the engine's ``epsilon`` error budget.

Independently of the plan style, the confidence computation method can be the
scan-based operator (``scans``, Section V.C) or the literal GRP-sequence
semantics (``semantics``, Fig. 5) — the latter exists for validation and for
the ablation benchmark.

Orthogonally to both, the *execution mode* selects the physical backend:

``row``
    The original iterator-model operators — one Python tuple at a time.
``batch``
    The columnar backend (:mod:`repro.algebra.columnar`): operators exchange
    ~4k-row column chunks, selections/joins/aggregations run column-wise, and
    the confidence operator scans a single ColumnBatch.  Produces bit-identical
    answers; severalfold faster on TPC-H-sized inputs.

Finally, ``workers`` (engine-wide or per call) spreads per-tuple d-tree and
Monte Carlo confidence work across worker processes via the parallel
confidence executor (:mod:`repro.sprout.parallel`).  ``workers=0`` — the
default, overridable with the ``REPRO_WORKERS`` environment variable — keeps
everything in-process; any worker count produces bit-identical results on a
fresh engine.

In-process top-k/threshold scheduling additionally runs in **shared-lineage
mode** by default (``shared_lineage=True``, ``REPRO_SHARED_LINEAGE``):
candidate lineages are compiled into one hash-consed DAG
(:mod:`repro.prob.sharedag`) in which common subformulas exist once across
answer tuples, and the scheduler expands the globally most valuable shared
node per step.  Decided sets and exact confidences are bit-identical to the
per-tuple mode; the number of logical refinement steps is what shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import env_flag, env_int
from repro.deadline import Deadline
from repro.errors import (
    ApproximationBudgetError,
    NonHierarchicalQueryError,
    PlanningError,
    UnsupportedQueryError,
)
from repro.algebra.columnar import DEFAULT_BATCH_ROWS, sort_batch
from repro.prob.backend import HAS_NUMPY, backend_name, default_vectorize
from repro.prob.dtree import DEFAULT_MAX_STEPS, DTreeCache
from repro.prob.sharedag import DEFAULT_MAX_NODES, SharedDTreeCache
from repro.prob.formulas import DNF
from repro.prob.lineage import (
    confidences_from_lineage,
    dtrees_from_dnfs,
    lineage_by_tuple,
    probabilities_from_answer,
)
from repro.prob.pdb import ProbabilisticDatabase
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.fd import chased_query, closure
from repro.query.hierarchy import HierarchyNode, build_hierarchy, is_hierarchical
from repro.query.rewrite import (
    catalog_table_attributes,
    effective_signature,
    is_tractable,
)
from repro.query.signature import Signature, num_scans
from repro.sprout.conf_operator import compute_answer_confidences
from repro.sprout.onescan import columnar_lineage, sort_column_order
from repro.sprout.parallel import (
    ConfidenceExecutor,
    ParallelRefinementScheduler,
    SupervisedExecutor,
    SupervisedLanePool,
    compute_confidences,
    finish_exact,
    run_shared_scheduled,
)
from repro.sprout.planner import (
    JoinOrderPlanner,
    _aggregate_pair,
    build_answer_plan_batch,
    eager_evaluation,
    materialize_answer,
    project_answer_columns,
)
from repro.sprout.scans import ScanSchedule
from repro.sprout.topk import RefinementScheduler, TupleCandidate, run_decision
from repro.storage.heapfile import HeapFile
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema

__all__ = [
    "EvaluationResult",
    "SproutEngine",
    "PLAN_STYLES",
    "CONF_METHODS",
    "EXECUTION_MODES",
    "CONFIDENCE_MODES",
]

PLAN_STYLES = ("lazy", "eager", "hybrid", "lineage", "dtree")
CONF_METHODS = ("scans", "semantics")
EXECUTION_MODES = ("row", "batch")
CONFIDENCE_MODES = ("exact", "approx")


@dataclass
class EvaluationResult:
    """Answer of a query: distinct data tuples, confidences, and metrics.

    Every engine entry point (:meth:`SproutEngine.evaluate`,
    :meth:`SproutEngine.evaluate_topk`, :meth:`SproutEngine.evaluate_threshold`)
    returns one of these.  The main fields:

    * ``relation`` — the answer: the query's data columns plus a ``conf``
      column holding each distinct tuple's confidence (for approximate modes,
      the bracket midpoint or the Monte Carlo estimate clamped into the sound
      bracket; for top-k, sorted most probable first).
    * ``plan_style`` / ``execution`` / ``confidence`` — which plan, physical
      backend, and confidence mode actually ran (an unsafe query requested
      with an operator plan reports ``"dtree"`` here).
    * ``signature`` — the query signature that drove the confidence operator
      (``None`` on the lineage/d-tree routes, which do not use one).
    * ``bounds`` — per data tuple, the guaranteed ``(lower, upper)`` bracket
      of its confidence.  Degenerate (``lower == upper``) for exact modes;
      for top-k/threshold it covers *every* candidate, not just the winners.
    * ``epsilon`` — the error budget the approximation met (``None`` when the
      result is exact).
    * ``k`` / ``tau`` / ``decided`` — top-k/threshold metadata: the request,
      and whether the answer set is provably decided (``decided=False`` only
      when a ``max_steps`` budget ran out first).
    * ``refine_steps`` — total d-tree expansions spent (across all workers,
      when the evaluation ran with ``workers >= 1``).
    * ``backend`` — the numeric backend the refinement core ran on
      (``"numpy"`` when the vectorized bound-propagation passes were active,
      ``"python"`` for the scalar fallback; see
      :func:`repro.prob.backend.backend_info`).  Results are bit-identical
      either way — this records throughput provenance, not semantics.
    * ``tuples_seconds`` / ``prob_seconds`` / ``answer_rows`` /
      ``rows_processed`` / ``scans_used`` — the paper's cost metrics: time to
      materialise the answer vs. time to compute confidences, the number of
      (duplicate-bearing) answer rows, total rows flowing through the plan,
      and how many sequential scans the confidence operator needed.
    """

    query_name: str
    plan_style: str
    relation: Relation
    signature: Optional[Signature]
    execution: str = "row"
    join_order: List[str] = field(default_factory=list)
    tuples_seconds: float = 0.0
    prob_seconds: float = 0.0
    answer_rows: int = 0
    rows_processed: int = 0
    scans_used: int = 1
    scan_schedule: Optional[ScanSchedule] = None
    confidence: str = "exact"
    epsilon: Optional[float] = None
    bounds: Dict[Tuple[object, ...], Tuple[float, float]] = field(default_factory=dict)
    #: Top-k/threshold metadata: the requested ``k`` or ``tau`` (None for plain
    #: evaluation), whether the answer set is provably decided, and how many
    #: d-tree expansions the evaluation spent in total.
    k: Optional[int] = None
    tau: Optional[float] = None
    decided: bool = True
    refine_steps: int = 0
    #: Logical steps charged by the most recent delta batch.  On one-shot
    #: engine calls this equals ``refine_steps`` (the whole call is one cold
    #: batch; 0 on the operator routes); on results returned by a standing
    #: query's :meth:`repro.sprout.streaming.StandingQuery.refresh` it is the
    #: cost of that refresh alone while ``refine_steps`` stays cumulative —
    #: the warm/cold contrast ``benchmarks/bench_streaming.py`` asserts on.
    delta_steps: int = 0
    #: Numeric backend of the refinement core for this evaluation ("numpy"
    #: when vectorized passes were active, "python" otherwise).
    backend: str = "python"
    #: ``None`` for a full-fidelity answer; ``"deadline"`` when a wall-clock
    #: deadline stopped refinement early (anytime degradation: ``bounds`` are
    #: still sound, ``decided`` may be False, and only the stopping point —
    #: never the refinement trajectory — depended on the clock).
    degraded: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        return self.tuples_seconds + self.prob_seconds

    @property
    def distinct_tuples(self) -> int:
        return len(self.relation)

    def confidences(self) -> Dict[Tuple[object, ...], float]:
        """Mapping from distinct data tuple to its confidence."""
        conf_index = self.relation.schema.index_of("conf")
        data_indices = [
            i for i, a in enumerate(self.relation.schema) if a.name != "conf"
        ]
        return {
            tuple(row[i] for i in data_indices): row[conf_index]
            for row in self.relation
        }

    def boolean_confidence(self) -> float:
        """Confidence of a Boolean query (0.0 when the answer is empty)."""
        values = list(self.confidences().values())
        if not values:
            return 0.0
        if len(values) > 1:
            raise PlanningError("boolean_confidence() called on a non-Boolean answer")
        return values[0]

    def summary(self) -> str:
        return (
            f"{self.query_name} [{self.plan_style}/{self.execution}] "
            f"{self.distinct_tuples} distinct tuples from {self.answer_rows} answer rows, "
            f"tuples {self.tuples_seconds:.4f}s + prob {self.prob_seconds:.4f}s "
            f"({self.scans_used} scan(s))"
        )


def _default_workers() -> int:
    """Engine-wide worker default: the ``REPRO_WORKERS`` env var, else 0.

    The environment hook is what lets CI run the whole tier-1 suite with the
    parallel confidence path switched on, without touching any test.  Parsed
    by the one shared knob parser (:mod:`repro.config`), so a malformed value
    raises the documented :class:`repro.errors.ConfigurationError` (a
    ``PlanningError`` *and* ``ValueError`` subclass) with the same wording as
    every other knob.
    """
    return env_int("REPRO_WORKERS", default=0, minimum=0)


def _default_shared_lineage() -> bool:
    """Shared-lineage default: the ``REPRO_SHARED_LINEAGE`` env var, else on.

    ``REPRO_SHARED_LINEAGE=0`` is the CI hook that runs the whole tier-1
    suite on the legacy per-tuple d-tree scheduler, keeping that path
    exercised now that sharing is the serial default.
    """
    return env_flag("REPRO_SHARED_LINEAGE", default=True)


def _default_dtree_cache_size() -> int:
    """Lineage-cache node budget: the ``REPRO_DTREE_CACHE`` env var, else
    :data:`repro.prob.sharedag.DEFAULT_MAX_NODES` nodes."""
    return env_int("REPRO_DTREE_CACHE", default=DEFAULT_MAX_NODES, minimum=1)


def _default_refine_lanes() -> int:
    """Refinement-lane default: the ``REPRO_LANES`` env var, else 0.

    ``REPRO_LANES=N`` switches every shared refinement round's compute phase
    onto an ``N``-lane thread pool without touching any call site — the CI
    hook that runs the whole tier-1 suite multi-lane.  Decided sets, bounds,
    and step counts are bit-identical for every value, so this is purely a
    throughput knob.
    """
    return env_int("REPRO_LANES", default=0, minimum=0)


@dataclass
class _AnswerLineage:
    """A materialised answer reduced to what the lineage routes consume."""

    schema: Schema
    order: List[str]
    rows_processed: int
    answer_rows: int
    lineage: Dict[Tuple[object, ...], DNF]
    probabilities: Dict[int, float]


class SproutEngine:
    """Query engine over a :class:`ProbabilisticDatabase`.

    Parameters
    ----------
    database
        The tuple-independent probabilistic database to evaluate against.
    execution
        Default physical backend for every evaluation: ``"row"`` (the
        iterator-model operators) or ``"batch"`` (the columnar backend
        processing ~``batch_size``-row column chunks).
    confidence
        Default confidence mode: ``"exact"`` (operator paths for tractable
        queries, fully compiled d-trees for unsafe ones) or ``"approx"``
        (anytime d-tree bounds with absolute error budget ``epsilon``).
    dtree_max_steps
        Cap on d-tree compilation per tuple; when the cap is hit in approx
        mode the Karp–Luby estimator (``monte_carlo_samples`` draws, seeded
        per tuple from ``seed`` so approximate results are reproducible for
        any worker count; ``seed=None`` draws fresh entropy) supplies the
        point estimate within the sound d-tree bracket.
    workers
        Number of worker processes for per-tuple confidence computation on
        the d-tree routes (plain evaluation, top-k, threshold).  ``0`` — the
        default, or the ``REPRO_WORKERS`` environment variable when set —
        computes in-process; ``N >= 1`` fans the answer tuples out to a
        process pool kept for the engine's lifetime (release it with
        :meth:`close` or by using the engine as a context manager).  On a
        fresh engine, plain :meth:`evaluate` results are bit-identical for
        every worker count, and top-k/threshold results for every worker
        count ``>= 1`` (``workers=0`` runs the serial cached-tree scheduler
        instead: same decided set — and exact-mode selected confidences —
        but step counts and non-selected bounds may differ).
    shared_lineage
        Whether the serial (``workers=0``) top-k/threshold scheduler
        compiles candidate lineages into one shared hash-consed DAG
        (:mod:`repro.prob.sharedag`) instead of per-tuple d-trees.  Default
        on (overridable with the ``REPRO_SHARED_LINEAGE`` environment
        variable): common subformulas are compiled once across answer
        tuples and every refinement step tightens all tuples containing
        the refined node.  Process workers always run isolated per-tuple
        tasks — isolation is what makes parallel results placement- and
        worker-count-independent — so the switch does not affect
        ``workers >= 1`` scheduling or plain :meth:`evaluate` (whose
        results stay bit-identical for every worker count).  Decided
        top-k/threshold sets and exact confidences are bit-identical with
        sharing on or off; only the work to reach them changes.
    dtree_cache_size
        Node budget for the engine-lifetime lineage cache (shared store or
        per-tuple tree cache), default
        :data:`repro.prob.sharedag.DEFAULT_MAX_NODES` or the
        ``REPRO_DTREE_CACHE`` environment variable.  Eviction is by *node
        count*, not entry count, so a handful of huge lineages cannot blow
        memory.
    refine_lanes
        Data-parallel lane count for shared refinement rounds.  ``0`` — the
        default, or the ``REPRO_LANES`` environment variable when set —
        computes every round inline; ``N >= 1`` fans each round's pure
        cofactor computation across an ``N``-thread lane pool kept for the
        engine's lifetime (released by :meth:`close`).  The round schedule
        is planned before any lane runs, so decided sets, confidences,
        bounds, and step counts are **bit-identical** for ``refine_lanes``
        0/1/N — unlike ``workers``, lanes never even change the work done
        to decide.  Lanes ride the shared-lineage scheduler (serial route
        when ``shared_lineage`` is on, and inside the shared worker run for
        ``workers >= 1``); the legacy per-tuple path has no rounds to fan
        out and ignores the knob.

    Each :meth:`evaluate` call may override ``execution``, ``confidence``,
    ``epsilon``, and ``workers``.

    In-process evaluation (``workers=0``) keeps one lineage cache for the
    engine's lifetime (:class:`repro.prob.sharedag.SharedDTreeCache`, or
    :class:`repro.prob.dtree.DTreeCache` with ``shared_lineage=False``):
    the top-k/threshold scheduler reuses and keeps refining the structures
    compiled for previously seen lineage.  Parallel runs (and the plain
    d-tree evaluation route under every worker count) instead compute each
    tuple in isolation — that is what makes results independent of the
    worker count and of evaluation history.

    Raises :class:`repro.errors.PlanningError` for invalid modes or
    parameters, and :class:`repro.errors.ParallelExecutionError` if a worker
    process fails mid-evaluation.
    """

    def __init__(
        self,
        database: ProbabilisticDatabase,
        execution: str = "row",
        batch_size: int = DEFAULT_BATCH_ROWS,
        confidence: str = "exact",
        epsilon: float = 0.01,
        dtree_max_steps: Optional[int] = DEFAULT_MAX_STEPS,
        monte_carlo_samples: Optional[int] = 10_000,
        seed: Optional[int] = 0,
        workers: Optional[int] = None,
        shared_lineage: Optional[bool] = None,
        dtree_cache_size: Optional[int] = None,
        vectorize: Optional[bool] = None,
        refine_lanes: Optional[int] = None,
    ):
        if execution not in EXECUTION_MODES:
            raise PlanningError(
                f"unknown execution mode {execution!r}; choose from {EXECUTION_MODES}"
            )
        if batch_size < 1:
            raise PlanningError(f"batch_size must be positive, got {batch_size}")
        if confidence not in CONFIDENCE_MODES:
            raise PlanningError(
                f"unknown confidence mode {confidence!r}; choose from {CONFIDENCE_MODES}"
            )
        if epsilon < 0.0:
            raise PlanningError(f"epsilon must be non-negative, got {epsilon}")
        if workers is None:
            workers = _default_workers()
        if workers < 0:
            raise PlanningError(f"workers must be non-negative, got {workers}")
        if shared_lineage is None:
            shared_lineage = _default_shared_lineage()
        if dtree_cache_size is None:
            dtree_cache_size = _default_dtree_cache_size()
        elif dtree_cache_size < 1:
            raise PlanningError(
                f"dtree_cache_size must be positive, got {dtree_cache_size}"
            )
        if refine_lanes is None:
            refine_lanes = _default_refine_lanes()
        if refine_lanes < 0:
            raise PlanningError(
                f"refine_lanes must be non-negative, got {refine_lanes}"
            )
        self.database = database
        self.execution = execution
        self.batch_size = batch_size
        self.confidence = confidence
        self.epsilon = epsilon
        self.dtree_max_steps = dtree_max_steps
        self.monte_carlo_samples = monte_carlo_samples
        self.seed = seed
        self.workers = workers
        self.shared_lineage = bool(shared_lineage)
        self.dtree_cache_size = dtree_cache_size
        # Numeric backend of the refinement core: vectorized NumPy passes
        # when available (and not disabled via REPRO_VECTORIZE or the
        # explicit parameter), scalar Python loops otherwise.  Requesting
        # vectorize=True without NumPy degrades to scalar — the backends are
        # bit-identical, so this is a throughput choice, never a semantic one.
        if vectorize is None:
            self.vectorize = default_vectorize()
        else:
            self.vectorize = bool(vectorize) and HAS_NUMPY
        self.backend = backend_name(self.vectorize)
        # The engine-lifetime lineage cache the serial top-k/threshold
        # scheduler refines across calls.  Shared-lineage mode swaps the
        # per-tuple tree cache for views over one hash-consed DAG; both are
        # bounded by dtree_cache_size *nodes* (not entries), so huge
        # lineages cannot blow memory through a small number of entries.
        self.dtree_cache = (
            SharedDTreeCache(max_nodes=dtree_cache_size, vectorize=self.vectorize)
            if self.shared_lineage
            else DTreeCache(max_nodes=dtree_cache_size)
        )
        self.planner = JoinOrderPlanner(database)
        self.refine_lanes = refine_lanes
        #: Lazily created engine-lifetime lane pool (``refine_lanes >= 1``);
        #: threads cost nothing until the first shared round asks for them.
        self._lane_pool: Optional[SupervisedLanePool] = None
        self._executors: Dict[int, ConfidenceExecutor] = {}
        #: Lifecycle flag plus the cache-counter snapshot taken at close():
        #: a closed engine answers :meth:`cache_stats` from the snapshot
        #: instead of touching the released cache, and transparently reopens
        #: (fresh executors, cold cache) on the next evaluation.
        self._closed = False
        self._closed_stats: Optional[Dict[str, object]] = None

    # -- parallel executor lifecycle --------------------------------------------

    def _executor_for(self, workers: int) -> ConfidenceExecutor:
        """The (lazily created, reused) executor backing ``workers`` processes.

        Process-backed executors come supervised: a dead pool is respawned
        with capped retries and ultimately degrades to the serial backend —
        bit-identical results by contract, with the events counted in
        :meth:`cache_stats` (``pool_respawns`` / ``pool_fallbacks``).
        """
        executor = self._executors.get(workers)
        if executor is None:
            executor = (
                SupervisedExecutor(workers) if workers >= 1 else ConfidenceExecutor.create(0)
            )
            self._executors[workers] = executor
        return executor

    def _resolve_workers(self, workers: Optional[int]) -> int:
        if workers is None:
            return self.workers
        if workers < 0:
            raise PlanningError(f"workers must be non-negative, got {workers}")
        return workers

    def _lane_pool_for_rounds(self) -> Optional[SupervisedLanePool]:
        """The engine-lifetime lane pool, or ``None`` with ``refine_lanes=0``.

        Supervised: a broken pool is respawned with capped retries and then
        degrades to inline (lanes=0) compute — same results by contract.
        """
        if self.refine_lanes < 1:
            return None
        if self._lane_pool is None:
            self._lane_pool = SupervisedLanePool(self.refine_lanes)
        return self._lane_pool

    def close(self) -> None:
        """Shut down worker pools and release the lineage cache (idempotent).

        Safe to call twice, and safe after a
        :class:`repro.errors.ParallelExecutionError` already discarded a
        broken pool: executor shutdown failures are swallowed — close()
        never raises on a pool that is already broken or gone.  The first
        close snapshots the cache counters (:meth:`cache_stats` keeps
        answering from the snapshot) and clears the cache to release the
        store's node table; the engine transparently reopens — fresh
        executors, cold cache — on the next evaluation.
        """
        executors, self._executors = dict(self._executors), {}
        for executor in executors.values():
            try:
                executor.close()
            except Exception:
                # A pool that broke mid-run (dead worker, interpreter
                # shutdown) may refuse a second shutdown; close() promises
                # not to propagate that.
                pass
        lane_pool, self._lane_pool = self._lane_pool, None
        if lane_pool is not None:
            try:
                lane_pool.close()
            except Exception:
                pass
        if not self._closed:
            self._closed_stats = self._live_cache_stats()
            self._closed_stats["closed"] = True
            self.dtree_cache.clear()
            self._closed = True

    def _reopen(self) -> None:
        """Drop the closed-engine snapshot on the next evaluation."""
        if self._closed:
            self._closed = False
            self._closed_stats = None

    def _live_cache_stats(self) -> Dict[str, object]:
        respawns = fallbacks = 0
        if self._lane_pool is not None:
            respawns += self._lane_pool.respawns
            fallbacks += self._lane_pool.fallbacks
        for executor in self._executors.values():
            respawns += getattr(executor, "respawns", 0)
            fallbacks += getattr(executor, "fallbacks", 0)
        return {
            "hits": self.dtree_cache.hits,
            "misses": self.dtree_cache.misses,
            "evictions": self.dtree_cache.evictions,
            "entries": len(self.dtree_cache),
            "shared_lineage": self.shared_lineage,
            "backend": self.backend,
            # Supervision counters: pools (lanes or workers) replaced after a
            # failure, and rounds/batches that degraded to the serial backend.
            "pool_respawns": respawns,
            "pool_fallbacks": fallbacks,
        }

    def cache_stats(self) -> Dict[str, object]:
        """Lineage-cache counters and the active numeric backend.

        ``hits`` / ``misses`` / ``evictions`` are cheap ints maintained by
        the engine's :class:`repro.prob.sharedag.SharedDTreeCache` (or
        legacy :class:`repro.prob.dtree.DTreeCache`); benchmarks and the
        bench report use them to attribute warm-vs-cold step counts instead
        of inferring them from timings.  On a closed engine this returns
        the snapshot taken at :meth:`close` (with ``"closed": True``)
        instead of touching the released cache; a live engine reports
        ``"closed": False``.
        """
        if self._closed and self._closed_stats is not None:
            return dict(self._closed_stats)
        stats = self._live_cache_stats()
        stats["closed"] = False
        return stats

    def __enter__(self) -> "SproutEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- static analysis --------------------------------------------------------

    def functional_dependencies(self, query: ConjunctiveQuery, use_fds: bool = True):
        if not use_fds:
            return []
        return self.database.catalog.functional_dependencies(query.table_names())

    def signature_for(self, query: ConjunctiveQuery, use_fds: bool = True) -> Signature:
        """The effective signature used to process ``query`` (Section IV)."""
        fds = self.functional_dependencies(query, use_fds)
        table_attributes = catalog_table_attributes(self.database.catalog, query.table_names())
        return effective_signature(query, fds, table_attributes)

    def is_tractable(self, query: ConjunctiveQuery, use_fds: bool = True) -> bool:
        return is_tractable(query, self.functional_dependencies(query, use_fds))

    def planning_head(self, query: ConjunctiveQuery, use_fds: bool = True) -> frozenset:
        """Head attributes plus everything they functionally determine.

        Within one bag of duplicate answer tuples these attributes are
        constant, so the eager/hybrid planners may keep them in intermediate
        projections (they are needed for the physical joins) without changing
        the grouping structure; the final projection drops the extra ones.
        """
        fds = self.functional_dependencies(query, use_fds)
        determined = closure(query.projection, fds) if fds else frozenset(query.projection)
        return frozenset(determined)

    def _planning_query(self, query: ConjunctiveQuery, use_fds: bool) -> ConjunctiveQuery:
        fds = self.functional_dependencies(query, use_fds)
        chased = chased_query(query, fds) if fds else query
        head = self.planning_head(query, use_fds) & frozenset(chased.attributes())
        return chased.with_projection(sorted(head), name=f"plan({query.name})")

    def hierarchy_for(self, query: ConjunctiveQuery, use_fds: bool = True) -> HierarchyNode:
        """Hierarchy tree used by the eager/hybrid (safe-plan-shaped) planners.

        The tree is built from the *chased* query (atoms extended to their
        attribute closures) with the projection widened to the head's closure:
        unlike the FD-reduct it still mentions every physical join attribute,
        so the tree is directly executable, while Proposition IV.5 guarantees
        it is hierarchical whenever the query is tractable under the FDs.
        """
        planning = self._planning_query(query, use_fds)
        if is_hierarchical(planning):
            return build_hierarchy(planning)
        if is_hierarchical(query):
            return build_hierarchy(query)
        raise NonHierarchicalQueryError(
            f"query {query.name!r} has no hierarchical structure to plan with"
        )

    def explain(self, query: ConjunctiveQuery, plan: str = "lazy", use_fds: bool = True) -> str:
        """Describe the plan the engine would run, without executing it."""
        lines = [f"query: {query}"]
        if plan == "lineage":
            lines.append("plan: lazy answer computation + exact lineage model counting")
            return "\n".join(lines)
        if plan == "dtree":
            lines.append(
                "plan: lazy answer computation + d-tree confidence "
                "(anytime lower/upper bounds)"
            )
            return "\n".join(lines)
        if not self.is_tractable(query, use_fds):
            lines.append(
                "plan: unsafe query (no hierarchical FD-reduct); routed to the "
                "d-tree engine for exact-or-approximate confidence computation"
            )
            return "\n".join(lines)
        signature = self.signature_for(query, use_fds)
        lines.append(f"signature: {signature}  (#scans = {num_scans(signature)})")
        if plan == "lazy":
            order = self.planner.lazy_join_order(query)
            lines.append(f"plan: lazy, join order {order}, conf operator on top")
        else:
            tree = self.hierarchy_for(query, use_fds)
            order = self.planner.hierarchical_join_order(query, tree)
            lines.append(
                f"plan: {plan}, hierarchy join order {order}, aggregation "
                f"{'after every table and join' if plan == 'eager' else 'after joins only'}"
            )
        return "\n".join(lines)

    # -- evaluation ----------------------------------------------------------------

    def evaluate(
        self,
        query: ConjunctiveQuery,
        plan: str = "lazy",
        use_fds: bool = True,
        conf_method: str = "scans",
        join_order: Optional[Sequence[str]] = None,
        materialize_to_disk: bool = False,
        execution: Optional[str] = None,
        confidence: Optional[str] = None,
        epsilon: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> EvaluationResult:
        """Compute the distinct answer tuples of ``query`` and their confidences.

        ``execution`` overrides the engine's default backend for this call
        (``"row"`` or ``"batch"``); ``confidence`` and ``epsilon`` override
        the engine's confidence mode and error budget; ``workers`` overrides
        the engine's parallelism for the per-tuple confidence work on the
        d-tree routes (operator plans for tractable queries are single
        sequential scans and ignore it).  Unsafe queries (no hierarchical
        FD-reduct) are routed to the d-tree engine regardless of the
        requested plan style.
        """
        self._reopen()
        execution, confidence, epsilon = self._resolve_modes(
            plan, conf_method, execution, confidence, epsilon
        )
        workers = self._resolve_workers(workers)
        self._check_supported(query)
        if plan == "dtree" or confidence == "approx":
            return self._evaluate_dtree(
                query, join_order, execution, confidence, epsilon, workers
            )
        if plan == "lineage":
            return self._evaluate_lineage(query, join_order, execution)
        if not self.is_tractable(query, use_fds):
            # Unsafe query: no safe plan and no hierarchical FD-reduct exists.
            # Route to the anytime d-tree engine instead of raising.
            return self._evaluate_dtree(
                query, join_order, execution, confidence, epsilon, workers
            )
        if plan == "lazy":
            if execution == "batch":
                return self._evaluate_lazy_batch(
                    query, use_fds, conf_method, join_order, materialize_to_disk
                )
            return self._evaluate_lazy(
                query, use_fds, conf_method, join_order, materialize_to_disk
            )
        return self._evaluate_eager_or_hybrid(query, plan, use_fds, execution)

    def _resolve_modes(
        self,
        plan: str,
        conf_method: str,
        execution: Optional[str],
        confidence: Optional[str],
        epsilon: Optional[float],
    ) -> Tuple[str, str, float]:
        """Validate plan/method names and fill mode defaults from the engine."""
        if plan not in PLAN_STYLES:
            raise PlanningError(f"unknown plan style {plan!r}; choose from {PLAN_STYLES}")
        if conf_method not in CONF_METHODS:
            raise PlanningError(
                f"unknown confidence method {conf_method!r}; choose from {CONF_METHODS}"
            )
        if execution is None:
            execution = self.execution
        elif execution not in EXECUTION_MODES:
            raise PlanningError(
                f"unknown execution mode {execution!r}; choose from {EXECUTION_MODES}"
            )
        if confidence is None:
            confidence = self.confidence
        elif confidence not in CONFIDENCE_MODES:
            raise PlanningError(
                f"unknown confidence mode {confidence!r}; choose from {CONFIDENCE_MODES}"
            )
        if epsilon is None:
            epsilon = self.epsilon
        elif epsilon < 0.0:
            raise PlanningError(f"epsilon must be non-negative, got {epsilon}")
        return execution, confidence, epsilon

    def _check_supported(self, query: ConjunctiveQuery) -> None:
        uncovered = query.uncovered_selections()
        if uncovered:
            raise UnsupportedQueryError(
                f"query {query.name!r} has selection conditions spanning several tables "
                f"({[str(p) for p in uncovered]}); only per-table selections are supported"
            )

    # -- top-k and threshold queries ----------------------------------------------

    def evaluate_topk(
        self,
        query: ConjunctiveQuery,
        k: int,
        plan: str = "lazy",
        use_fds: bool = True,
        conf_method: str = "scans",
        join_order: Optional[Sequence[str]] = None,
        execution: Optional[str] = None,
        confidence: Optional[str] = None,
        max_steps: Optional[int] = None,
        workers: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> EvaluationResult:
        """The ``k`` most probable answer tuples of ``query``.

        Tractable queries under ``confidence="exact"`` short-circuit through
        the requested operator plan (confidences are exact anyway, so the
        selection is a sort); everything else routes to a bound-driven
        refinement scheduler, which interleaves d-tree refinement across the
        candidate tuples and stops as soon as the top-k set is provably
        decided — no tuple is refined further than the decision requires.
        With ``workers=0`` that is the serial crossing-pair scheduler
        (:class:`repro.sprout.topk.RefinementScheduler`, reusing the
        engine's d-tree cache across calls); with ``workers >= 1`` it is the
        round-based parallel scheduler
        (:class:`repro.sprout.parallel.ParallelRefinementScheduler`), which
        refines a frontier batch of gating tuples concurrently per round and
        gives identical results for every worker count >= 1.

        The result relation holds the selected tuples, most probable first;
        :attr:`EvaluationResult.bounds` brackets *every* candidate and
        :attr:`EvaluationResult.decided` reports whether the set is proven
        (it is False only when ``max_steps`` — default the engine's
        ``dtree_max_steps`` — ran out first).  Under ``confidence="exact"``
        the selected tuples' confidences are refined to exactness (an
        explicit ``max_steps`` bounds that phase too, reporting bracket
        midpoints when it runs out); under ``"approx"`` they stay bracket
        midpoints.

        Raises :class:`repro.errors.PlanningError` for invalid parameters
        and :class:`repro.errors.ApproximationBudgetError` when exact-mode
        finishing exhausts the engine-default step cap.

        ``deadline`` (a :class:`repro.deadline.Deadline`) bounds the
        wall-clock spent on the serial scheduler route: checked between
        refinement rounds, never inside one, so expiry returns the current
        sound bounds with ``decided=False`` / ``degraded="deadline"``
        instead of raising — anytime degradation, the paper's central
        contract put to work.  Only honoured with ``workers=0`` (the route
        the query service runs); the parallel route ships the whole decision
        to a worker and ignores it.
        """
        if k < 1:
            raise PlanningError(f"k must be positive, got {k}")
        return self._evaluate_bounded(
            query,
            k=k,
            tau=None,
            plan=plan,
            use_fds=use_fds,
            conf_method=conf_method,
            join_order=join_order,
            execution=execution,
            confidence=confidence,
            max_steps=max_steps,
            workers=workers,
            deadline=deadline,
        )

    def evaluate_threshold(
        self,
        query: ConjunctiveQuery,
        tau: float,
        plan: str = "lazy",
        use_fds: bool = True,
        conf_method: str = "scans",
        join_order: Optional[Sequence[str]] = None,
        execution: Optional[str] = None,
        confidence: Optional[str] = None,
        max_steps: Optional[int] = None,
        workers: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> EvaluationResult:
        """The answer tuples whose confidence is at least ``tau``.

        Same routing as :meth:`evaluate_topk`: exact operator plans for
        tractable queries, a refinement scheduler otherwise (serial at
        ``workers=0``, round-based parallel at ``workers >= 1``) — each
        candidate is refined only until its bracket clears τ on one side.
        ``deadline`` degrades the serial route exactly as in
        :meth:`evaluate_topk`.
        """
        if not 0.0 <= tau <= 1.0:
            raise PlanningError(f"tau must be within [0, 1], got {tau}")
        return self._evaluate_bounded(
            query,
            k=None,
            tau=tau,
            plan=plan,
            use_fds=use_fds,
            conf_method=conf_method,
            join_order=join_order,
            execution=execution,
            confidence=confidence,
            max_steps=max_steps,
            workers=workers,
            deadline=deadline,
        )

    # -- standing (streaming) queries ----------------------------------------------

    def watch_topk(
        self,
        query: ConjunctiveQuery,
        k: int,
        join_order: Optional[Sequence[str]] = None,
        execution: Optional[str] = None,
        confidence: Optional[str] = None,
        max_steps: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ):
        """A live top-k answer set for ``query``: a
        :class:`repro.sprout.streaming.StandingQuery`.

        Materialises the query's answer lineage once (same pipeline as
        :meth:`evaluate_topk`), then hands it to a standing query that keeps
        the decided set maintained across probability updates, tuple
        inserts, and deletes — re-deciding incrementally over its own
        shared-lineage store instead of re-running the query.  The standing
        query inherits this engine's substrate knobs (``shared_lineage``,
        ``dtree_cache_size``, ``vectorize``, ``dtree_max_steps``) but owns a
        *private* store: its probability space is mutable, the engine's is
        bound to the database.  Standing queries always run on the
        refinement substrate — tractable queries do not short-circuit to an
        operator plan, because deltas need a compiled structure to propagate
        through (exact mode still reports exact confidences).
        """
        if k < 1:
            raise PlanningError(f"k must be positive, got {k}")
        return self._watch(
            query, k, None, join_order, execution, confidence, max_steps, deadline
        )

    def watch_threshold(
        self,
        query: ConjunctiveQuery,
        tau: float,
        join_order: Optional[Sequence[str]] = None,
        execution: Optional[str] = None,
        confidence: Optional[str] = None,
        max_steps: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ):
        """A live τ-threshold answer set for ``query`` (see :meth:`watch_topk`)."""
        if not 0.0 <= tau <= 1.0:
            raise PlanningError(f"tau must be within [0, 1], got {tau}")
        return self._watch(
            query, None, tau, join_order, execution, confidence, max_steps, deadline
        )

    def _watch(
        self,
        query: ConjunctiveQuery,
        k: Optional[int],
        tau: Optional[float],
        join_order: Optional[Sequence[str]],
        execution: Optional[str],
        confidence: Optional[str],
        max_steps: Optional[int],
        deadline: Optional[Deadline] = None,
    ):
        from repro.sprout.streaming import StandingQuery

        self._reopen()
        execution, confidence, _ = self._resolve_modes(
            "dtree", "scans", execution, confidence, None
        )
        self._check_supported(query)
        answer = self._answer_lineage(query, join_order, execution)
        return StandingQuery(
            answer.lineage,
            answer.probabilities,
            k=k,
            tau=tau,
            confidence=confidence,
            max_steps=max_steps,
            default_cap=self.dtree_max_steps,
            shared_lineage=self.shared_lineage,
            cache_nodes=self.dtree_cache_size,
            vectorize=self.vectorize,
            refine_lanes=self.refine_lanes,
            schema=answer.schema,
            name=query.name,
            execution=execution,
            deadline=deadline,
        )

    def _evaluate_bounded(
        self,
        query: ConjunctiveQuery,
        k: Optional[int],
        tau: Optional[float],
        plan: str,
        use_fds: bool,
        conf_method: str,
        join_order: Optional[Sequence[str]],
        execution: Optional[str],
        confidence: Optional[str],
        max_steps: Optional[int],
        workers: Optional[int],
        deadline: Optional[Deadline] = None,
    ) -> EvaluationResult:
        self._reopen()
        execution, confidence, _ = self._resolve_modes(
            plan, conf_method, execution, confidence, None
        )
        workers = self._resolve_workers(workers)
        self._check_supported(query)
        if (
            confidence == "exact"
            and plan in ("lazy", "eager", "hybrid")
            and self.is_tractable(query, use_fds)
        ):
            result = self.evaluate(
                query,
                plan=plan,
                use_fds=use_fds,
                conf_method=conf_method,
                join_order=join_order,
                execution=execution,
                confidence="exact",
            )
            return self._select_from_exact(result, k, tau)
        return self._evaluate_scheduled(
            query, k, tau, join_order, execution, confidence, max_steps, workers,
            deadline,
        )

    def _select_from_exact(
        self, result: EvaluationResult, k: Optional[int], tau: Optional[float]
    ) -> EvaluationResult:
        """Top-k / threshold selection over already exact confidences."""
        confidences = result.confidences()
        ranked = sorted(confidences.items(), key=lambda item: (-item[1], repr(item[0])))
        if k is not None:
            chosen = ranked[:k]
        else:
            chosen = [(data, conf) for data, conf in ranked if conf >= tau]
        selected = Relation(result.relation.name, result.relation.schema)
        for data, conf in chosen:
            selected.append(tuple(data) + (conf,))
        result.relation = selected
        result.bounds = {data: (conf, conf) for data, conf in confidences.items()}
        result.k = k
        result.tau = tau
        result.decided = True
        return result

    def _evaluate_scheduled(
        self,
        query: ConjunctiveQuery,
        k: Optional[int],
        tau: Optional[float],
        join_order: Optional[Sequence[str]],
        execution: str,
        confidence: str,
        max_steps: Optional[int],
        workers: int,
        deadline: Optional[Deadline] = None,
    ) -> EvaluationResult:
        """Multi-tuple bound-driven refinement over the lineage d-trees.

        ``workers=0`` runs the serial crossing-pair scheduler on live trees
        from the engine's d-tree cache; ``workers >= 1`` runs the
        deterministic round-based parallel scheduler (the trees live in the
        workers, the engine tracks bounds).  ``deadline`` is honoured on the
        serial route only.
        """
        started = perf_counter()
        answer = self._answer_lineage(query, join_order, execution)
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        if workers == 0:
            outcome, finishing_steps = self._run_serial_scheduler(
                answer, k, tau, confidence, max_steps, deadline
            )
        else:
            outcome, finishing_steps = self._run_parallel_scheduler(
                answer, k, tau, confidence, max_steps, workers
            )
        prob_seconds = perf_counter() - started

        ordered = sorted(outcome.selected, key=lambda c: (-c.midpoint, repr(c.data)))
        relation = self._confidence_relation(
            answer.schema,
            query.name,
            ((candidate.data, candidate.midpoint) for candidate in ordered),
        )
        return EvaluationResult(
            query_name=query.name,
            plan_style="dtree",
            relation=relation,
            signature=None,
            execution=execution,
            join_order=answer.order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=answer.answer_rows,
            rows_processed=answer.rows_processed,
            scans_used=1,
            confidence=confidence,
            epsilon=None,
            bounds=outcome.bounds(),
            k=k,
            tau=tau,
            decided=outcome.decided,
            refine_steps=outcome.steps + finishing_steps,
            delta_steps=outcome.steps + finishing_steps,
            backend=self.backend,
            degraded=outcome.degraded,
        )

    def _run_serial_scheduler(
        self,
        answer: _AnswerLineage,
        k: Optional[int],
        tau: Optional[float],
        confidence: str,
        max_steps: Optional[int],
        deadline: Optional[Deadline] = None,
    ):
        """The in-process route: live cached trees + bound-driven scheduling.

        With ``shared_lineage`` on (the default) the candidates are views
        over the engine's hash-consed lineage DAG and the scheduler picks
        the globally most valuable shared node each step; with it off they
        are independent per-tuple d-trees refined by crossing-pair chunks
        (the pre-shared behaviour, kept selectable for comparison and via
        ``REPRO_SHARED_LINEAGE=0``).
        """
        trees = dtrees_from_dnfs(
            answer.lineage, answer.probabilities, cache=self.dtree_cache
        )
        candidates = [TupleCandidate(data, tree=tree) for data, tree in trees.items()]
        # run_decision is the single decision+finishing routine shared with
        # the shared-parallel worker: with the default engine budget each
        # selected tuple gets dtree_max_steps of exact finishing (the same
        # per-tuple cap exact-mode evaluate() grants) and exhaustion raises
        # ApproximationBudgetError; an explicit per-call max_steps instead
        # caps the whole call (leftover after the decision, shared across
        # tuples) and is reported, never raised.
        shared = self.shared_lineage
        return run_decision(
            candidates,
            k,
            tau,
            confidence,
            max_steps,
            self.dtree_max_steps,
            store=self.dtree_cache.store if shared else None,
            lane_pool=self._lane_pool_for_rounds() if shared else None,
            deadline=deadline,
        )

    def _run_parallel_scheduler(
        self,
        answer: _AnswerLineage,
        k: Optional[int],
        tau: Optional[float],
        confidence: str,
        max_steps: Optional[int],
        workers: int,
    ):
        """The parallel route: ship refinement work to a worker pool.

        With ``shared_lineage`` on (the default) the entire decision is
        compiled into one columnar store segment and offloaded to a single
        worker, which runs the very same
        :func:`repro.sprout.topk.run_decision` routine as the serial route —
        shared grants pick the *globally* most valuable node, which couples
        all candidates into one sequential decision, and shipping the whole
        run is what keeps decided sets, confidences, and step counts
        bit-identical for workers 0/1/N on a fresh engine (the serial route
        additionally reuses its cache across calls, which a shipped segment
        deliberately does not).

        With ``shared_lineage=False`` the round-based frontier scheduler
        refines isolated per-tuple trees across the pool.  Its exact-mode
        finishing grants each selected tuple the engine-default per-tuple
        cap (raising on exhaustion like the serial route); an explicit
        ``max_steps`` instead grants each tuple the budget left after the
        decision and reports midpoints — per tuple rather than shared
        sequentially, so the behaviour does not depend on worker scheduling.
        """
        executor = self._executor_for(workers)
        if self.shared_lineage:
            return run_shared_scheduled(
                answer.lineage,
                answer.probabilities,
                executor,
                k=k,
                tau=tau,
                confidence=confidence,
                max_steps=max_steps,
                default_cap=self.dtree_max_steps,
                max_nodes=self.dtree_cache_size,
                vectorize=self.vectorize,
                refine_lanes=self.refine_lanes,
            )
        scheduler = ParallelRefinementScheduler(
            answer.lineage,
            answer.probabilities,
            executor,
            max_steps=self.dtree_max_steps if max_steps is None else max_steps,
        )
        outcome = scheduler.run_topk(k) if k is not None else scheduler.run_threshold(tau)
        finishing_steps = 0
        if confidence == "exact":
            if max_steps is None:
                finishing_steps = finish_exact(
                    outcome,
                    executor,
                    per_tuple_cap=self.dtree_max_steps,
                    raise_on_budget=True,
                )
            else:
                finishing_steps = finish_exact(
                    outcome,
                    executor,
                    per_tuple_cap=max(0, max_steps - outcome.steps),
                    raise_on_budget=False,
                )
        return outcome, finishing_steps

    # -- lazy plans -------------------------------------------------------------------

    def _answer_relation(
        self,
        query: ConjunctiveQuery,
        join_order: Optional[Sequence[str]],
        execution: str = "row",
    ) -> Tuple[Relation, List[str], int]:
        return materialize_answer(
            self.database, self.planner, query, join_order, execution, self.batch_size
        )

    def _answer_lineage(
        self,
        query: ConjunctiveQuery,
        join_order: Optional[Sequence[str]],
        execution: str,
    ) -> _AnswerLineage:
        """Materialise the answer and extract per-tuple lineage.

        Under ``execution="batch"`` the answer stays columnar end to end:
        the batch join pipeline's output is walked column-wise
        (:func:`repro.sprout.onescan.columnar_lineage`) without ever
        materialising row tuples, producing the same clause sets and
        probability map as the row path.
        """
        if execution == "batch":
            order = list(join_order) if join_order else self.planner.lazy_join_order(query)
            plan = build_answer_plan_batch(self.database, query, order, self.batch_size)
            plan = project_answer_columns(plan, query)
            batch = plan.to_batch(query.name)
            # In shared-lineage mode the clause frozensets are interned in
            # the engine's store as they are extracted, so every recurrence
            # of a clause — across rows, tuples, and later evaluations — is
            # one shared object with one cached hash.
            interner = self.dtree_cache.interner if self.shared_lineage else None
            clause_sets, probabilities = columnar_lineage(batch, interner=interner)
            return _AnswerLineage(
                schema=batch.schema,
                order=order,
                rows_processed=plan.total_rows_processed(),
                answer_rows=len(batch),
                lineage={data: DNF(clauses) for data, clauses in clause_sets.items()},
                probabilities=probabilities,
            )
        answer, order, rows_processed = self._answer_relation(query, join_order, "row")
        return _AnswerLineage(
            schema=answer.schema,
            order=order,
            rows_processed=rows_processed,
            answer_rows=len(answer),
            lineage=lineage_by_tuple(answer),
            probabilities=probabilities_from_answer(answer),
        )

    def _evaluate_lazy(
        self,
        query: ConjunctiveQuery,
        use_fds: bool,
        conf_method: str,
        join_order: Optional[Sequence[str]],
        materialize_to_disk: bool,
    ) -> EvaluationResult:
        signature = self.signature_for(query, use_fds)

        started = perf_counter()
        answer, order, rows_processed = self._answer_relation(query, join_order)
        # The operator's required sort order (data columns, then variable
        # columns in 1scanTree preorder) is produced while materialising the
        # answer, exactly as the lazy plans of Section VII do.
        sort_order = sort_column_order(answer.schema, signature)
        answer = answer.sorted_by(sort_order)
        if materialize_to_disk:
            heap = HeapFile(answer.schema)
            heap.write_rows(answer.rows)
            heap.close()
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        schedule: Optional[ScanSchedule]
        result_relation, schedule, scans_used = compute_answer_confidences(
            answer, signature, conf_method=conf_method, name=query.name
        )
        prob_seconds = perf_counter() - started

        return EvaluationResult(
            query_name=query.name,
            plan_style="lazy",
            relation=result_relation,
            signature=signature,
            join_order=order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=len(answer),
            rows_processed=rows_processed,
            scans_used=scans_used,
            scan_schedule=schedule,
            backend=self.backend,
        )

    def _evaluate_lazy_batch(
        self,
        query: ConjunctiveQuery,
        use_fds: bool,
        conf_method: str,
        join_order: Optional[Sequence[str]],
        materialize_to_disk: bool,
    ) -> EvaluationResult:
        """Columnar twin of :meth:`_evaluate_lazy`.

        The answer never takes row form between the scans and the confidence
        computation: batches flow through the columnar join pipeline, are
        concatenated into one ColumnBatch, sorted column-wise, and handed to
        the columnar scan-based operator.
        """
        signature = self.signature_for(query, use_fds)

        started = perf_counter()
        order = list(join_order) if join_order else self.planner.lazy_join_order(query)
        plan = build_answer_plan_batch(self.database, query, order, self.batch_size)
        plan = project_answer_columns(plan, query)
        answer = plan.to_batch(query.name)
        rows_processed = plan.total_rows_processed()
        sort_order = sort_column_order(answer.schema, signature)
        answer = sort_batch(answer, sort_order)
        if materialize_to_disk:
            heap = HeapFile(answer.schema)
            heap.write_rows(answer.rows())
            heap.close()
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        schedule: Optional[ScanSchedule]
        result_relation, schedule, scans_used = compute_answer_confidences(
            answer, signature, conf_method=conf_method, execution="batch", name=query.name
        )
        prob_seconds = perf_counter() - started

        return EvaluationResult(
            query_name=query.name,
            plan_style="lazy",
            relation=result_relation,
            signature=signature,
            execution="batch",
            join_order=order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=len(answer),
            rows_processed=rows_processed,
            scans_used=scans_used,
            scan_schedule=schedule,
            backend=self.backend,
        )

    # -- eager / hybrid plans ------------------------------------------------------------

    def _evaluate_eager_or_hybrid(
        self, query: ConjunctiveQuery, plan: str, use_fds: bool, execution: str = "row"
    ) -> EvaluationResult:
        signature = self.signature_for(query, use_fds)
        tree = self.hierarchy_for(query, use_fds)
        order = self.planner.hierarchical_join_order(query, tree)

        started = perf_counter()
        node_result = eager_evaluation(
            self.database,
            query,
            tree,
            signature,
            aggregate_leaves=(plan == "eager"),
            head_attributes=self.planning_head(query, use_fds),
            execution=execution,
            batch_size=self.batch_size,
        )
        # Project away the functionally determined companions of the head that
        # were carried along for the joins, then aggregate by the true head so
        # that exactly one row per distinct data tuple remains.
        final = node_result.relation
        pair = final.schema.var_prob_pairs()[0]
        keep = [a for a in query.projection if a in final.schema]
        keep += [pair.var_name, pair.prob_name]
        if keep != list(final.schema.names):
            final = final.project(keep)
        final = _aggregate_pair(final, node_result.leader, execution=execution)
        elapsed = perf_counter() - started

        relation = self._finalize(final, query)
        return EvaluationResult(
            query_name=query.name,
            plan_style=plan,
            relation=relation,
            signature=signature,
            execution=execution,
            join_order=order,
            tuples_seconds=elapsed,
            prob_seconds=0.0,
            answer_rows=len(final),
            rows_processed=node_result.rows_processed,
            scans_used=0,
            backend=self.backend,
        )

    # -- lineage fallback ---------------------------------------------------------------

    def _evaluate_lineage(
        self,
        query: ConjunctiveQuery,
        join_order: Optional[Sequence[str]],
        execution: str = "row",
    ) -> EvaluationResult:
        started = perf_counter()
        answer, order, rows_processed = self._answer_relation(query, join_order, execution)
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        confidences = confidences_from_lineage(answer)
        prob_seconds = perf_counter() - started

        relation = self._confidence_relation(
            answer.schema,
            query.name,
            sorted(confidences.items(), key=lambda item: repr(item[0])),
        )
        return EvaluationResult(
            query_name=query.name,
            plan_style="lineage",
            relation=relation,
            signature=None,
            execution=execution,
            join_order=order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=len(answer),
            rows_processed=rows_processed,
            scans_used=1,
            backend=self.backend,
        )

    # -- d-tree path (unsafe queries and anytime approximation) -------------------------

    def _evaluate_dtree(
        self,
        query: ConjunctiveQuery,
        join_order: Optional[Sequence[str]],
        execution: str,
        confidence: str,
        epsilon: float,
        workers: int,
    ) -> EvaluationResult:
        """Evaluate via lineage + decomposition trees.

        ``confidence="exact"`` compiles every tuple's d-tree to completion
        (raising :class:`repro.errors.ApproximationBudgetError` if the step
        cap is hit first); ``"approx"`` stops at the ``epsilon`` budget and
        records guaranteed bounds in :attr:`EvaluationResult.bounds`.

        Each distinct answer tuple is an isolated work unit of the parallel
        confidence executor, with its Karp–Luby fallback seed derived from
        the engine seed and the tuple's lineage — which is why a fresh
        engine returns bit-identical results for every ``workers`` setting
        (the serial backend runs the very same work units in-process).
        """
        started = perf_counter()
        answer = self._answer_lineage(query, join_order, execution)
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        results = compute_confidences(
            answer.lineage,
            answer.probabilities,
            self._executor_for(workers),
            epsilon=0.0 if confidence == "exact" else epsilon,
            max_steps=self.dtree_max_steps,
            monte_carlo_samples=(
                None if confidence == "exact" else self.monte_carlo_samples
            ),
            base_seed=self.seed,
        )
        prob_seconds = perf_counter() - started

        ordered = sorted(results.items(), key=lambda item: repr(item[0]))
        relation = self._confidence_relation(
            answer.schema,
            query.name,
            ((data, result.probability) for data, result in ordered),
        )
        bounds: Dict[Tuple[object, ...], Tuple[float, float]] = {
            tuple(data): (result.lower, result.upper) for data, result in ordered
        }
        return EvaluationResult(
            query_name=query.name,
            plan_style="dtree",
            relation=relation,
            signature=None,
            execution=execution,
            join_order=answer.order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=answer.answer_rows,
            rows_processed=answer.rows_processed,
            scans_used=1,
            confidence=confidence,
            epsilon=None if confidence == "exact" else epsilon,
            bounds=bounds,
            refine_steps=sum(result.steps for result in results.values()),
            delta_steps=sum(result.steps for result in results.values()),
            backend=self.backend,
        )

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _confidence_relation(answer_schema: Schema, name: str, items) -> Relation:
        """A data-columns + ``conf`` relation from (data tuple, confidence) pairs."""
        data_attributes = [a for a in answer_schema if a.role is ColumnRole.DATA]
        schema = Schema(list(data_attributes) + [Attribute("conf", "float")])
        relation = Relation(name, schema)
        for data, confidence in items:
            relation.append(tuple(data) + (confidence,))
        return relation

    def _finalize(self, relation: Relation, query: ConjunctiveQuery) -> Relation:
        """Rename the surviving probability column to ``conf`` and drop variables."""
        pairs = relation.schema.var_prob_pairs()
        if len(pairs) != 1:
            raise PlanningError(
                f"expected exactly one surviving V/P pair, found {len(pairs)}"
            )
        pair = pairs[0]
        data_names = [a.name for a in relation.schema if a.role is ColumnRole.DATA]
        schema = Schema(
            [relation.schema[name] for name in data_names] + [Attribute("conf", "float")]
        )
        result = Relation(query.name, schema)
        data_indices = relation.schema.indices_of(data_names)
        for row in relation:
            result.append(tuple(row[i] for i in data_indices) + (row[pair.prob_index],))
        return result

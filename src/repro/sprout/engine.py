"""The SPROUT engine: the public entry point for confidence computation.

``SproutEngine`` evaluates conjunctive queries (without self-joins) on a
tuple-independent probabilistic database and returns the distinct answer
tuples with their exact confidences.  The caller chooses the *plan style*:

``lazy``
    Optimizer-chosen join order; the confidence operator runs once, at the top
    of the plan (Fig. 7(c)).  The default, and the winner on TPC-H.
``eager``
    Hierarchy-imposed join order with aggregation after every base table and
    every join — structurally the safe plan of Fig. 2/7(a), but expressed with
    SPROUT's operator.
``hybrid``
    Hierarchy-imposed join order with aggregation only after joins (the
    operators on top of the input tables are dropped), Fig. 7(b).
``lineage``
    Reference fallback: evaluate the answer lazily and compute each distinct
    tuple's confidence by exact weighted model counting on its DNF lineage
    via memoised Shannon expansion (worst-case exponential).
``dtree``
    The decomposition-tree engine (:mod:`repro.prob.dtree`): compile each
    tuple's lineage with independent-partition, deterministic-or, and Shannon
    cobranching steps.  Exact when compilation completes; with
    ``confidence="approx"`` it runs anytime, maintaining guaranteed
    lower/upper bounds and stopping at the requested ``epsilon``.

Queries that are not tractable even with FDs (non-hierarchical, *unsafe*
queries) are routed to the d-tree engine automatically instead of raising —
``confidence="exact"`` compiles to exactness, ``confidence="approx"``
stops at the engine's ``epsilon`` error budget.

Independently of the plan style, the confidence computation method can be the
scan-based operator (``scans``, Section V.C) or the literal GRP-sequence
semantics (``semantics``, Fig. 5) — the latter exists for validation and for
the ablation benchmark.

Orthogonally to both, the *execution mode* selects the physical backend:

``row``
    The original iterator-model operators — one Python tuple at a time.
``batch``
    The columnar backend (:mod:`repro.algebra.columnar`): operators exchange
    ~4k-row column chunks, selections/joins/aggregations run column-wise, and
    the confidence operator scans a single ColumnBatch.  Produces bit-identical
    answers; severalfold faster on TPC-H-sized inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ApproximationBudgetError,
    NonHierarchicalQueryError,
    PlanningError,
    UnsupportedQueryError,
)
from repro.algebra.columnar import DEFAULT_BATCH_ROWS, sort_batch
from repro.prob.dtree import DEFAULT_MAX_STEPS, DTreeCache, refine_to_budget
from repro.prob.lineage import (
    approximate_confidences_from_lineage,
    confidences_from_lineage,
    dtrees_from_lineage,
    probabilities_from_answer,
)
from repro.prob.pdb import ProbabilisticDatabase
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.fd import chased_query, closure
from repro.query.hierarchy import HierarchyNode, build_hierarchy, is_hierarchical
from repro.query.rewrite import (
    catalog_table_attributes,
    effective_signature,
    is_tractable,
)
from repro.query.signature import Signature, num_scans
from repro.sprout.conf_operator import compute_answer_confidences
from repro.sprout.onescan import sort_column_order
from repro.sprout.planner import (
    JoinOrderPlanner,
    _aggregate_pair,
    build_answer_plan_batch,
    eager_evaluation,
    materialize_answer,
    project_answer_columns,
)
from repro.sprout.scans import ScanSchedule
from repro.sprout.topk import RefinementScheduler, TupleCandidate
from repro.storage.heapfile import HeapFile
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema

__all__ = [
    "EvaluationResult",
    "SproutEngine",
    "PLAN_STYLES",
    "CONF_METHODS",
    "EXECUTION_MODES",
    "CONFIDENCE_MODES",
]

PLAN_STYLES = ("lazy", "eager", "hybrid", "lineage", "dtree")
CONF_METHODS = ("scans", "semantics")
EXECUTION_MODES = ("row", "batch")
CONFIDENCE_MODES = ("exact", "approx")


@dataclass
class EvaluationResult:
    """Answer of a query: distinct data tuples, confidences, and metrics."""

    query_name: str
    plan_style: str
    relation: Relation
    signature: Optional[Signature]
    execution: str = "row"
    join_order: List[str] = field(default_factory=list)
    tuples_seconds: float = 0.0
    prob_seconds: float = 0.0
    answer_rows: int = 0
    rows_processed: int = 0
    scans_used: int = 1
    scan_schedule: Optional[ScanSchedule] = None
    confidence: str = "exact"
    epsilon: Optional[float] = None
    bounds: Dict[Tuple[object, ...], Tuple[float, float]] = field(default_factory=dict)
    #: Top-k/threshold metadata: the requested ``k`` or ``tau`` (None for plain
    #: evaluation), whether the answer set is provably decided, and how many
    #: d-tree expansions the evaluation spent in total.
    k: Optional[int] = None
    tau: Optional[float] = None
    decided: bool = True
    refine_steps: int = 0

    @property
    def total_seconds(self) -> float:
        return self.tuples_seconds + self.prob_seconds

    @property
    def distinct_tuples(self) -> int:
        return len(self.relation)

    def confidences(self) -> Dict[Tuple[object, ...], float]:
        """Mapping from distinct data tuple to its confidence."""
        conf_index = self.relation.schema.index_of("conf")
        data_indices = [
            i for i, a in enumerate(self.relation.schema) if a.name != "conf"
        ]
        return {
            tuple(row[i] for i in data_indices): row[conf_index]
            for row in self.relation
        }

    def boolean_confidence(self) -> float:
        """Confidence of a Boolean query (0.0 when the answer is empty)."""
        values = list(self.confidences().values())
        if not values:
            return 0.0
        if len(values) > 1:
            raise PlanningError("boolean_confidence() called on a non-Boolean answer")
        return values[0]

    def summary(self) -> str:
        return (
            f"{self.query_name} [{self.plan_style}/{self.execution}] "
            f"{self.distinct_tuples} distinct tuples from {self.answer_rows} answer rows, "
            f"tuples {self.tuples_seconds:.4f}s + prob {self.prob_seconds:.4f}s "
            f"({self.scans_used} scan(s))"
        )


class SproutEngine:
    """Query engine over a :class:`ProbabilisticDatabase`.

    ``execution`` selects the default physical backend for every evaluation:
    ``"row"`` (the iterator-model operators) or ``"batch"`` (the columnar
    backend processing ~``batch_size``-row column chunks).

    ``confidence`` selects the default confidence mode: ``"exact"`` (operator
    paths for tractable queries, fully compiled d-trees for unsafe ones) or
    ``"approx"`` (anytime d-tree bounds with absolute error budget
    ``epsilon``).  ``dtree_max_steps`` caps d-tree compilation; when the cap
    is hit in approx mode the Karp–Luby estimator (``monte_carlo_samples``
    draws from a generator seeded with ``seed`` afresh on every call, so
    approximate results are reproducible; ``seed=None`` draws fresh entropy)
    supplies the point estimate within the sound d-tree bracket.  Each
    :meth:`evaluate` call may override ``execution``, ``confidence``, and
    ``epsilon``.

    The engine keeps one :class:`repro.prob.dtree.DTreeCache` for its
    lifetime: every d-tree route (plain evaluation, top-k, threshold) reuses
    and keeps refining the trees compiled for previously seen lineage.
    """

    def __init__(
        self,
        database: ProbabilisticDatabase,
        execution: str = "row",
        batch_size: int = DEFAULT_BATCH_ROWS,
        confidence: str = "exact",
        epsilon: float = 0.01,
        dtree_max_steps: Optional[int] = DEFAULT_MAX_STEPS,
        monte_carlo_samples: Optional[int] = 10_000,
        seed: Optional[int] = 0,
    ):
        if execution not in EXECUTION_MODES:
            raise PlanningError(
                f"unknown execution mode {execution!r}; choose from {EXECUTION_MODES}"
            )
        if batch_size < 1:
            raise PlanningError(f"batch_size must be positive, got {batch_size}")
        if confidence not in CONFIDENCE_MODES:
            raise PlanningError(
                f"unknown confidence mode {confidence!r}; choose from {CONFIDENCE_MODES}"
            )
        if epsilon < 0.0:
            raise PlanningError(f"epsilon must be non-negative, got {epsilon}")
        self.database = database
        self.execution = execution
        self.batch_size = batch_size
        self.confidence = confidence
        self.epsilon = epsilon
        self.dtree_max_steps = dtree_max_steps
        self.monte_carlo_samples = monte_carlo_samples
        self.seed = seed
        self.dtree_cache = DTreeCache()
        self.planner = JoinOrderPlanner(database)

    def _monte_carlo_rng(self) -> random.Random:
        """A fresh, deterministically seeded generator for one evaluation."""
        return random.Random(self.seed)

    # -- static analysis --------------------------------------------------------

    def functional_dependencies(self, query: ConjunctiveQuery, use_fds: bool = True):
        if not use_fds:
            return []
        return self.database.catalog.functional_dependencies(query.table_names())

    def signature_for(self, query: ConjunctiveQuery, use_fds: bool = True) -> Signature:
        """The effective signature used to process ``query`` (Section IV)."""
        fds = self.functional_dependencies(query, use_fds)
        table_attributes = catalog_table_attributes(self.database.catalog, query.table_names())
        return effective_signature(query, fds, table_attributes)

    def is_tractable(self, query: ConjunctiveQuery, use_fds: bool = True) -> bool:
        return is_tractable(query, self.functional_dependencies(query, use_fds))

    def planning_head(self, query: ConjunctiveQuery, use_fds: bool = True) -> frozenset:
        """Head attributes plus everything they functionally determine.

        Within one bag of duplicate answer tuples these attributes are
        constant, so the eager/hybrid planners may keep them in intermediate
        projections (they are needed for the physical joins) without changing
        the grouping structure; the final projection drops the extra ones.
        """
        fds = self.functional_dependencies(query, use_fds)
        determined = closure(query.projection, fds) if fds else frozenset(query.projection)
        return frozenset(determined)

    def _planning_query(self, query: ConjunctiveQuery, use_fds: bool) -> ConjunctiveQuery:
        fds = self.functional_dependencies(query, use_fds)
        chased = chased_query(query, fds) if fds else query
        head = self.planning_head(query, use_fds) & frozenset(chased.attributes())
        return chased.with_projection(sorted(head), name=f"plan({query.name})")

    def hierarchy_for(self, query: ConjunctiveQuery, use_fds: bool = True) -> HierarchyNode:
        """Hierarchy tree used by the eager/hybrid (safe-plan-shaped) planners.

        The tree is built from the *chased* query (atoms extended to their
        attribute closures) with the projection widened to the head's closure:
        unlike the FD-reduct it still mentions every physical join attribute,
        so the tree is directly executable, while Proposition IV.5 guarantees
        it is hierarchical whenever the query is tractable under the FDs.
        """
        planning = self._planning_query(query, use_fds)
        if is_hierarchical(planning):
            return build_hierarchy(planning)
        if is_hierarchical(query):
            return build_hierarchy(query)
        raise NonHierarchicalQueryError(
            f"query {query.name!r} has no hierarchical structure to plan with"
        )

    def explain(self, query: ConjunctiveQuery, plan: str = "lazy", use_fds: bool = True) -> str:
        """Describe the plan the engine would run, without executing it."""
        lines = [f"query: {query}"]
        if plan == "lineage":
            lines.append("plan: lazy answer computation + exact lineage model counting")
            return "\n".join(lines)
        if plan == "dtree":
            lines.append(
                "plan: lazy answer computation + d-tree confidence "
                "(anytime lower/upper bounds)"
            )
            return "\n".join(lines)
        if not self.is_tractable(query, use_fds):
            lines.append(
                "plan: unsafe query (no hierarchical FD-reduct); routed to the "
                "d-tree engine for exact-or-approximate confidence computation"
            )
            return "\n".join(lines)
        signature = self.signature_for(query, use_fds)
        lines.append(f"signature: {signature}  (#scans = {num_scans(signature)})")
        if plan == "lazy":
            order = self.planner.lazy_join_order(query)
            lines.append(f"plan: lazy, join order {order}, conf operator on top")
        else:
            tree = self.hierarchy_for(query, use_fds)
            order = self.planner.hierarchical_join_order(query, tree)
            lines.append(
                f"plan: {plan}, hierarchy join order {order}, aggregation "
                f"{'after every table and join' if plan == 'eager' else 'after joins only'}"
            )
        return "\n".join(lines)

    # -- evaluation ----------------------------------------------------------------

    def evaluate(
        self,
        query: ConjunctiveQuery,
        plan: str = "lazy",
        use_fds: bool = True,
        conf_method: str = "scans",
        join_order: Optional[Sequence[str]] = None,
        materialize_to_disk: bool = False,
        execution: Optional[str] = None,
        confidence: Optional[str] = None,
        epsilon: Optional[float] = None,
    ) -> EvaluationResult:
        """Compute the distinct answer tuples of ``query`` and their confidences.

        ``execution`` overrides the engine's default backend for this call
        (``"row"`` or ``"batch"``); ``confidence`` and ``epsilon`` override
        the engine's confidence mode and error budget.  Unsafe queries (no
        hierarchical FD-reduct) are routed to the d-tree engine regardless of
        the requested plan style.
        """
        execution, confidence, epsilon = self._resolve_modes(
            plan, conf_method, execution, confidence, epsilon
        )
        self._check_supported(query)
        if plan == "dtree" or confidence == "approx":
            return self._evaluate_dtree(query, join_order, execution, confidence, epsilon)
        if plan == "lineage":
            return self._evaluate_lineage(query, join_order, execution)
        if not self.is_tractable(query, use_fds):
            # Unsafe query: no safe plan and no hierarchical FD-reduct exists.
            # Route to the anytime d-tree engine instead of raising.
            return self._evaluate_dtree(query, join_order, execution, confidence, epsilon)
        if plan == "lazy":
            if execution == "batch":
                return self._evaluate_lazy_batch(
                    query, use_fds, conf_method, join_order, materialize_to_disk
                )
            return self._evaluate_lazy(
                query, use_fds, conf_method, join_order, materialize_to_disk
            )
        return self._evaluate_eager_or_hybrid(query, plan, use_fds, execution)

    def _resolve_modes(
        self,
        plan: str,
        conf_method: str,
        execution: Optional[str],
        confidence: Optional[str],
        epsilon: Optional[float],
    ) -> Tuple[str, str, float]:
        """Validate plan/method names and fill mode defaults from the engine."""
        if plan not in PLAN_STYLES:
            raise PlanningError(f"unknown plan style {plan!r}; choose from {PLAN_STYLES}")
        if conf_method not in CONF_METHODS:
            raise PlanningError(
                f"unknown confidence method {conf_method!r}; choose from {CONF_METHODS}"
            )
        if execution is None:
            execution = self.execution
        elif execution not in EXECUTION_MODES:
            raise PlanningError(
                f"unknown execution mode {execution!r}; choose from {EXECUTION_MODES}"
            )
        if confidence is None:
            confidence = self.confidence
        elif confidence not in CONFIDENCE_MODES:
            raise PlanningError(
                f"unknown confidence mode {confidence!r}; choose from {CONFIDENCE_MODES}"
            )
        if epsilon is None:
            epsilon = self.epsilon
        elif epsilon < 0.0:
            raise PlanningError(f"epsilon must be non-negative, got {epsilon}")
        return execution, confidence, epsilon

    def _check_supported(self, query: ConjunctiveQuery) -> None:
        uncovered = query.uncovered_selections()
        if uncovered:
            raise UnsupportedQueryError(
                f"query {query.name!r} has selection conditions spanning several tables "
                f"({[str(p) for p in uncovered]}); only per-table selections are supported"
            )

    # -- top-k and threshold queries ----------------------------------------------

    def evaluate_topk(
        self,
        query: ConjunctiveQuery,
        k: int,
        plan: str = "lazy",
        use_fds: bool = True,
        conf_method: str = "scans",
        join_order: Optional[Sequence[str]] = None,
        execution: Optional[str] = None,
        confidence: Optional[str] = None,
        max_steps: Optional[int] = None,
    ) -> EvaluationResult:
        """The ``k`` most probable answer tuples of ``query``.

        Tractable queries under ``confidence="exact"`` short-circuit through
        the requested operator plan (confidences are exact anyway, so the
        selection is a sort); everything else routes to the bound-driven
        refinement scheduler, which interleaves d-tree refinement across the
        candidate tuples and stops as soon as the top-k set is provably
        decided — no tuple is refined further than the decision requires.

        The result relation holds the selected tuples, most probable first;
        :attr:`EvaluationResult.bounds` brackets *every* candidate and
        :attr:`EvaluationResult.decided` reports whether the set is proven
        (it is False only when ``max_steps`` — default the engine's
        ``dtree_max_steps`` — ran out first).  Under ``confidence="exact"``
        the selected tuples' confidences are refined to exactness (an
        explicit ``max_steps`` bounds that phase too, reporting bracket
        midpoints when it runs out); under ``"approx"`` they stay bracket
        midpoints.
        """
        if k < 1:
            raise PlanningError(f"k must be positive, got {k}")
        return self._evaluate_bounded(
            query,
            k=k,
            tau=None,
            plan=plan,
            use_fds=use_fds,
            conf_method=conf_method,
            join_order=join_order,
            execution=execution,
            confidence=confidence,
            max_steps=max_steps,
        )

    def evaluate_threshold(
        self,
        query: ConjunctiveQuery,
        tau: float,
        plan: str = "lazy",
        use_fds: bool = True,
        conf_method: str = "scans",
        join_order: Optional[Sequence[str]] = None,
        execution: Optional[str] = None,
        confidence: Optional[str] = None,
        max_steps: Optional[int] = None,
    ) -> EvaluationResult:
        """The answer tuples whose confidence is at least ``tau``.

        Same routing as :meth:`evaluate_topk`: exact operator plans for
        tractable queries, the refinement scheduler otherwise — each
        candidate is refined only until its bracket clears τ on one side.
        """
        if not 0.0 <= tau <= 1.0:
            raise PlanningError(f"tau must be within [0, 1], got {tau}")
        return self._evaluate_bounded(
            query,
            k=None,
            tau=tau,
            plan=plan,
            use_fds=use_fds,
            conf_method=conf_method,
            join_order=join_order,
            execution=execution,
            confidence=confidence,
            max_steps=max_steps,
        )

    def _evaluate_bounded(
        self,
        query: ConjunctiveQuery,
        k: Optional[int],
        tau: Optional[float],
        plan: str,
        use_fds: bool,
        conf_method: str,
        join_order: Optional[Sequence[str]],
        execution: Optional[str],
        confidence: Optional[str],
        max_steps: Optional[int],
    ) -> EvaluationResult:
        execution, confidence, _ = self._resolve_modes(
            plan, conf_method, execution, confidence, None
        )
        self._check_supported(query)
        if (
            confidence == "exact"
            and plan in ("lazy", "eager", "hybrid")
            and self.is_tractable(query, use_fds)
        ):
            result = self.evaluate(
                query,
                plan=plan,
                use_fds=use_fds,
                conf_method=conf_method,
                join_order=join_order,
                execution=execution,
                confidence="exact",
            )
            return self._select_from_exact(result, k, tau)
        return self._evaluate_scheduled(
            query, k, tau, join_order, execution, confidence, max_steps
        )

    def _select_from_exact(
        self, result: EvaluationResult, k: Optional[int], tau: Optional[float]
    ) -> EvaluationResult:
        """Top-k / threshold selection over already exact confidences."""
        confidences = result.confidences()
        ranked = sorted(confidences.items(), key=lambda item: (-item[1], repr(item[0])))
        if k is not None:
            chosen = ranked[:k]
        else:
            chosen = [(data, conf) for data, conf in ranked if conf >= tau]
        selected = Relation(result.relation.name, result.relation.schema)
        for data, conf in chosen:
            selected.append(tuple(data) + (conf,))
        result.relation = selected
        result.bounds = {data: (conf, conf) for data, conf in confidences.items()}
        result.k = k
        result.tau = tau
        result.decided = True
        return result

    def _evaluate_scheduled(
        self,
        query: ConjunctiveQuery,
        k: Optional[int],
        tau: Optional[float],
        join_order: Optional[Sequence[str]],
        execution: str,
        confidence: str,
        max_steps: Optional[int],
    ) -> EvaluationResult:
        """Multi-tuple bound-driven refinement over the lineage d-trees."""
        started = perf_counter()
        answer, order, rows_processed = self._answer_relation(query, join_order, execution)
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        probabilities = probabilities_from_answer(answer)
        trees = dtrees_from_lineage(answer, probabilities, cache=self.dtree_cache)
        candidates = [TupleCandidate(data, tree=tree) for data, tree in trees.items()]
        scheduler = RefinementScheduler(
            candidates,
            max_steps=self.dtree_max_steps if max_steps is None else max_steps,
        )
        outcome = scheduler.run_topk(k) if k is not None else scheduler.run_threshold(tau)
        finishing_steps = 0
        if confidence == "exact":
            # The decision needed only bounds; exact mode still reports exact
            # confidences for the tuples it returns (and only for those).
            # With the default engine budget each tuple gets dtree_max_steps
            # (the same per-tuple cap exact-mode evaluate() grants) and
            # exhaustion raises ApproximationBudgetError; an explicit
            # per-call max_steps instead caps the whole call (leftover after
            # the decision, shared across tuples) and is reported, never
            # raised.
            finishing_budget = (
                None if max_steps is None else max(0, max_steps - outcome.steps)
            )
            for candidate in outcome.selected:
                if candidate.tree is None or candidate.exact:
                    continue
                if finishing_budget is None:
                    remaining = self.dtree_max_steps
                else:
                    remaining = finishing_budget - finishing_steps
                try:
                    result = refine_to_budget(
                        candidate.tree, epsilon=0.0, max_steps=remaining
                    )
                    finishing_steps += result.steps
                except ApproximationBudgetError as error:
                    finishing_steps += error.steps
                    if max_steps is None:
                        raise
                    break  # explicit cap: report the midpoints we have
        prob_seconds = perf_counter() - started

        ordered = sorted(outcome.selected, key=lambda c: (-c.midpoint, repr(c.data)))
        relation = self._confidence_relation(
            answer.schema,
            query.name,
            ((candidate.data, candidate.midpoint) for candidate in ordered),
        )
        return EvaluationResult(
            query_name=query.name,
            plan_style="dtree",
            relation=relation,
            signature=None,
            execution=execution,
            join_order=order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=len(answer),
            rows_processed=rows_processed,
            scans_used=1,
            confidence=confidence,
            epsilon=None,
            bounds=outcome.bounds(),
            k=k,
            tau=tau,
            decided=outcome.decided,
            refine_steps=outcome.steps + finishing_steps,
        )

    # -- lazy plans -------------------------------------------------------------------

    def _answer_relation(
        self,
        query: ConjunctiveQuery,
        join_order: Optional[Sequence[str]],
        execution: str = "row",
    ) -> Tuple[Relation, List[str], int]:
        return materialize_answer(
            self.database, self.planner, query, join_order, execution, self.batch_size
        )

    def _evaluate_lazy(
        self,
        query: ConjunctiveQuery,
        use_fds: bool,
        conf_method: str,
        join_order: Optional[Sequence[str]],
        materialize_to_disk: bool,
    ) -> EvaluationResult:
        signature = self.signature_for(query, use_fds)

        started = perf_counter()
        answer, order, rows_processed = self._answer_relation(query, join_order)
        # The operator's required sort order (data columns, then variable
        # columns in 1scanTree preorder) is produced while materialising the
        # answer, exactly as the lazy plans of Section VII do.
        sort_order = sort_column_order(answer.schema, signature)
        answer = answer.sorted_by(sort_order)
        if materialize_to_disk:
            heap = HeapFile(answer.schema)
            heap.write_rows(answer.rows)
            heap.close()
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        schedule: Optional[ScanSchedule]
        result_relation, schedule, scans_used = compute_answer_confidences(
            answer, signature, conf_method=conf_method, name=query.name
        )
        prob_seconds = perf_counter() - started

        return EvaluationResult(
            query_name=query.name,
            plan_style="lazy",
            relation=result_relation,
            signature=signature,
            join_order=order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=len(answer),
            rows_processed=rows_processed,
            scans_used=scans_used,
            scan_schedule=schedule,
        )

    def _evaluate_lazy_batch(
        self,
        query: ConjunctiveQuery,
        use_fds: bool,
        conf_method: str,
        join_order: Optional[Sequence[str]],
        materialize_to_disk: bool,
    ) -> EvaluationResult:
        """Columnar twin of :meth:`_evaluate_lazy`.

        The answer never takes row form between the scans and the confidence
        computation: batches flow through the columnar join pipeline, are
        concatenated into one ColumnBatch, sorted column-wise, and handed to
        the columnar scan-based operator.
        """
        signature = self.signature_for(query, use_fds)

        started = perf_counter()
        order = list(join_order) if join_order else self.planner.lazy_join_order(query)
        plan = build_answer_plan_batch(self.database, query, order, self.batch_size)
        plan = project_answer_columns(plan, query)
        answer = plan.to_batch(query.name)
        rows_processed = plan.total_rows_processed()
        sort_order = sort_column_order(answer.schema, signature)
        answer = sort_batch(answer, sort_order)
        if materialize_to_disk:
            heap = HeapFile(answer.schema)
            heap.write_rows(answer.rows())
            heap.close()
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        schedule: Optional[ScanSchedule]
        result_relation, schedule, scans_used = compute_answer_confidences(
            answer, signature, conf_method=conf_method, execution="batch", name=query.name
        )
        prob_seconds = perf_counter() - started

        return EvaluationResult(
            query_name=query.name,
            plan_style="lazy",
            relation=result_relation,
            signature=signature,
            execution="batch",
            join_order=order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=len(answer),
            rows_processed=rows_processed,
            scans_used=scans_used,
            scan_schedule=schedule,
        )

    # -- eager / hybrid plans ------------------------------------------------------------

    def _evaluate_eager_or_hybrid(
        self, query: ConjunctiveQuery, plan: str, use_fds: bool, execution: str = "row"
    ) -> EvaluationResult:
        signature = self.signature_for(query, use_fds)
        tree = self.hierarchy_for(query, use_fds)
        order = self.planner.hierarchical_join_order(query, tree)

        started = perf_counter()
        node_result = eager_evaluation(
            self.database,
            query,
            tree,
            signature,
            aggregate_leaves=(plan == "eager"),
            head_attributes=self.planning_head(query, use_fds),
            execution=execution,
            batch_size=self.batch_size,
        )
        # Project away the functionally determined companions of the head that
        # were carried along for the joins, then aggregate by the true head so
        # that exactly one row per distinct data tuple remains.
        final = node_result.relation
        pair = final.schema.var_prob_pairs()[0]
        keep = [a for a in query.projection if a in final.schema]
        keep += [pair.var_name, pair.prob_name]
        if keep != list(final.schema.names):
            final = final.project(keep)
        final = _aggregate_pair(final, node_result.leader, execution=execution)
        elapsed = perf_counter() - started

        relation = self._finalize(final, query)
        return EvaluationResult(
            query_name=query.name,
            plan_style=plan,
            relation=relation,
            signature=signature,
            execution=execution,
            join_order=order,
            tuples_seconds=elapsed,
            prob_seconds=0.0,
            answer_rows=len(final),
            rows_processed=node_result.rows_processed,
            scans_used=0,
        )

    # -- lineage fallback ---------------------------------------------------------------

    def _evaluate_lineage(
        self,
        query: ConjunctiveQuery,
        join_order: Optional[Sequence[str]],
        execution: str = "row",
    ) -> EvaluationResult:
        started = perf_counter()
        answer, order, rows_processed = self._answer_relation(query, join_order, execution)
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        confidences = confidences_from_lineage(answer)
        prob_seconds = perf_counter() - started

        relation = self._confidence_relation(
            answer.schema,
            query.name,
            sorted(confidences.items(), key=lambda item: repr(item[0])),
        )
        return EvaluationResult(
            query_name=query.name,
            plan_style="lineage",
            relation=relation,
            signature=None,
            execution=execution,
            join_order=order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=len(answer),
            rows_processed=rows_processed,
            scans_used=1,
        )

    # -- d-tree path (unsafe queries and anytime approximation) -------------------------

    def _evaluate_dtree(
        self,
        query: ConjunctiveQuery,
        join_order: Optional[Sequence[str]],
        execution: str,
        confidence: str,
        epsilon: float,
    ) -> EvaluationResult:
        """Evaluate via lineage + decomposition trees.

        ``confidence="exact"`` compiles every tuple's d-tree to completion
        (raising :class:`repro.errors.ApproximationBudgetError` if the step
        cap is hit first); ``"approx"`` stops at the ``epsilon`` budget and
        records guaranteed bounds in :attr:`EvaluationResult.bounds`.
        """
        started = perf_counter()
        answer, order, rows_processed = self._answer_relation(query, join_order, execution)
        tuples_seconds = perf_counter() - started

        started = perf_counter()
        results = approximate_confidences_from_lineage(
            answer,
            epsilon=0.0 if confidence == "exact" else epsilon,
            max_steps=self.dtree_max_steps,
            monte_carlo_samples=(
                None if confidence == "exact" else self.monte_carlo_samples
            ),
            rng=self._monte_carlo_rng(),
            cache=self.dtree_cache,
        )
        prob_seconds = perf_counter() - started

        ordered = sorted(results.items(), key=lambda item: repr(item[0]))
        relation = self._confidence_relation(
            answer.schema,
            query.name,
            ((data, result.probability) for data, result in ordered),
        )
        bounds: Dict[Tuple[object, ...], Tuple[float, float]] = {
            tuple(data): (result.lower, result.upper) for data, result in ordered
        }
        return EvaluationResult(
            query_name=query.name,
            plan_style="dtree",
            relation=relation,
            signature=None,
            execution=execution,
            join_order=order,
            tuples_seconds=tuples_seconds,
            prob_seconds=prob_seconds,
            answer_rows=len(answer),
            rows_processed=rows_processed,
            scans_used=1,
            confidence=confidence,
            epsilon=None if confidence == "exact" else epsilon,
            bounds=bounds,
            refine_steps=sum(result.steps for result in results.values()),
        )

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _confidence_relation(answer_schema: Schema, name: str, items) -> Relation:
        """A data-columns + ``conf`` relation from (data tuple, confidence) pairs."""
        data_attributes = [a for a in answer_schema if a.role is ColumnRole.DATA]
        schema = Schema(list(data_attributes) + [Attribute("conf", "float")])
        relation = Relation(name, schema)
        for data, confidence in items:
            relation.append(tuple(data) + (confidence,))
        return relation

    def _finalize(self, relation: Relation, query: ConjunctiveQuery) -> Relation:
        """Rename the surviving probability column to ``conf`` and drop variables."""
        pairs = relation.schema.var_prob_pairs()
        if len(pairs) != 1:
            raise PlanningError(
                f"expected exactly one surviving V/P pair, found {len(pairs)}"
            )
        pair = pairs[0]
        data_names = [a.name for a in relation.schema if a.role is ColumnRole.DATA]
        schema = Schema(
            [relation.schema[name] for name in data_names] + [Attribute("conf", "float")]
        )
        result = Relation(query.name, schema)
        data_indices = relation.schema.indices_of(data_names)
        for row in relation:
            result.append(tuple(row[i] for i in data_indices) + (row[pair.prob_index],))
        return result

"""The scan-based confidence operator (Section V.C, Fig. 8).

Given an answer relation sorted by its data columns followed by the variable
columns in 1scanTree preorder, the operator computes the exact confidence of
every distinct data tuple in a single sequential scan: bags of duplicates are
contiguous, and inside one bag the factorisation prescribed by the (1scan)
signature is evaluated by grouping on variable columns from the leader table
outwards.

Two evaluators are provided:

* :func:`group_probability` — the recursive, signature-driven factorised
  evaluator.  It consumes one bag of duplicates at a time; memory is bounded
  by the bag size (not the answer size), and the answer is consumed in one
  sequential pass.
* :class:`OneScanState` — a streaming evaluator in the spirit of Fig. 8 that
  keeps only running probabilities (``crtP``/``allP``) per 1scanTree node.  It
  supports the common TPC-H case in which every starred composite has a
  star-free leader and the tree is a single path/branching tree; it is checked
  against :func:`group_probability` in the tests.
"""

from __future__ import annotations

from itertools import groupby
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ProbabilityError, QueryError
from repro.query.signature import (
    ConcatSig,
    Signature,
    StarSig,
    TableSig,
    has_one_scan_property,
    one_scan_tree,
    sort_table_order,
)

from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema

__all__ = [
    "ColumnMap",
    "column_map_for",
    "sort_column_order",
    "group_probability",
    "scan_confidences",
    "one_scan_operator",
    "OneScanState",
    "streaming_scan_confidences",
    "columnar_bag_probability",
    "columnar_lineage",
    "columnar_scan_confidences",
    "one_scan_operator_columns",
]

Row = Tuple[object, ...]


class ColumnMap:
    """Positions of the data columns and of each table's V/P pair."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.data_indices: List[int] = []
        self.var_index: Dict[str, int] = {}
        self.prob_index: Dict[str, int] = {}
        for pair in schema.var_prob_pairs():
            self.var_index[pair.source] = pair.var_index
            self.prob_index[pair.source] = pair.prob_index
        for position, attribute in enumerate(schema):
            if attribute.role is ColumnRole.DATA:
                self.data_indices.append(position)

    def tables(self) -> List[str]:
        return list(self.var_index)

    def data_of(self, row: Row) -> Tuple[object, ...]:
        return tuple(row[i] for i in self.data_indices)

    def var_of(self, row: Row, table: str) -> int:
        try:
            return row[self.var_index[table]]
        except KeyError:
            raise QueryError(f"no variable column for table {table!r}") from None

    def prob_of(self, row: Row, table: str) -> float:
        return row[self.prob_index[table]]


def column_map_for(relation: Relation) -> ColumnMap:
    """Column map of a materialised answer relation."""
    return ColumnMap(relation.schema)


def sort_column_order(schema: Schema, signature: Signature) -> List[str]:
    """Sort key for the operator's input: data columns, then variable columns
    in 1scanTree preorder (Example V.12), then the probability columns."""
    columns = ColumnMap(schema)
    order = [schema.names[i] for i in columns.data_indices]
    for table in sort_table_order(signature):
        if table in columns.var_index:
            order.append(schema.names[columns.var_index[table]])
    return order


# ---------------------------------------------------------------------------
# Recursive factorised evaluation of one bag of duplicates
# ---------------------------------------------------------------------------


def group_probability(signature: Signature, rows: Sequence[Row], columns: ColumnMap) -> float:
    """Probability of the 1OF factorisation of one bag of duplicate rows.

    ``rows`` are the answer rows sharing one data tuple; the signature
    describes how their DNF factors.  Concatenation parts are independent
    factors evaluated over the distinct projections of the rows onto their
    variable columns; a starred composite partitions its rows by the leader
    table's variable.
    """
    if not rows:
        raise ProbabilityError("cannot compute the probability of an empty bag")
    if isinstance(signature, TableSig):
        return _single_table_probability(signature.table, rows, columns)
    if isinstance(signature, ConcatSig):
        probability = 1.0
        for part in signature.parts:
            probability *= group_probability(part, _distinct_for(part, rows, columns), columns)
        return probability
    if isinstance(signature, StarSig):
        inner = signature.inner
        if isinstance(inner, TableSig):
            return _or_over_distinct_variables(inner.table, rows, columns)
        parts = inner.top_level_parts()
        leader = next((p.table for p in parts if isinstance(p, TableSig)), None)
        if leader is None:
            raise QueryError(
                f"signature {signature} lacks the 1scan property; "
                "pre-aggregate with repro.sprout.scans first"
            )
        # Partitions are identified by the leader table's variable.  Grouping
        # uses a dictionary (insertion-ordered) rather than adjacency so the
        # result does not depend on the sort order within the bag; with the
        # operator's preferred sort order the groups are contiguous anyway.
        partitions: Dict[int, List[Row]] = {}
        for row in rows:
            partitions.setdefault(columns.var_of(row, leader), []).append(row)
        none_true = 1.0
        for partition_rows in partitions.values():
            partition_probability = 1.0
            for part in parts:
                partition_probability *= group_probability(
                    part, _distinct_for(part, partition_rows, columns), columns
                )
            none_true *= 1.0 - partition_probability
        return 1.0 - none_true
    raise QueryError(f"unknown signature node {signature!r}")


def _single_table_probability(table: str, rows: Sequence[Row], columns: ColumnMap) -> float:
    variables = {columns.var_of(row, table) for row in rows}
    if len(variables) != 1:
        raise ProbabilityError(
            f"signature promises a single {table} variable per group but found "
            f"{len(variables)}; the signature (or its FD refinement) is too precise "
            "for this data"
        )
    return columns.prob_of(rows[0], table)


def _or_over_distinct_variables(table: str, rows: Sequence[Row], columns: ColumnMap) -> float:
    none_true = 1.0
    seen = set()
    for row in rows:
        variable = columns.var_of(row, table)
        if variable in seen:
            continue
        seen.add(variable)
        none_true *= 1.0 - columns.prob_of(row, table)
    return 1.0 - none_true


def _distinct_for(part: Signature, rows: Sequence[Row], columns: ColumnMap) -> List[Row]:
    """Distinct rows with respect to the variable columns of ``part``'s tables.

    Within a group, sibling factors are cross-producted by the join; each
    factor's own formula is the projection of the clauses onto its variables,
    so duplicates (identical variable combinations) are dropped.  Row order is
    preserved so nested leader-groupings stay contiguous.
    """
    indices = [columns.var_index[table] for table in part.tables() if table in columns.var_index]
    seen = set()
    result: List[Row] = []
    for row in rows:
        key = tuple(row[i] for i in indices)
        if key in seen:
            continue
        seen.add(key)
        result.append(row)
    return result


# ---------------------------------------------------------------------------
# Scanning an entire (sorted) answer relation
# ---------------------------------------------------------------------------


def scan_confidences(
    rows: Iterable[Row],
    columns: ColumnMap,
    signature: Signature,
) -> Iterator[Tuple[Tuple[object, ...], float]]:
    """Yield ``(data_tuple, confidence)`` for every bag of a sorted answer.

    ``rows`` must be sorted by the data columns first (bags contiguous) and by
    the variable columns in signature order within each bag.
    """
    for data, bag in groupby(rows, key=columns.data_of):
        yield data, group_probability(signature, list(bag), columns)


def one_scan_operator(
    answer: Relation,
    signature: Signature,
    presorted: bool = False,
    name: Optional[str] = None,
) -> Relation:
    """Materialised form of the scan-based operator.

    Sorts the answer (unless ``presorted``) by the operator's required order
    and computes the confidence of every distinct data tuple in one pass.
    The result relation carries the data columns plus a ``conf`` column.
    """
    columns = ColumnMap(answer.schema)
    if presorted:
        rows: Iterable[Row] = answer.rows
    else:
        order = sort_column_order(answer.schema, signature)
        rows = answer.sorted_by(order).rows

    data_attributes = [answer.schema[answer.schema.names[i]] for i in columns.data_indices]
    result_schema = Schema(list(data_attributes) + [Attribute("conf", "float")])
    result = Relation(name or answer.name, result_schema)
    for data, confidence in scan_confidences(rows, columns, signature):
        result.append(data + (confidence,))
    return result


# ---------------------------------------------------------------------------
# Columnar (batch) evaluation: the same factorised semantics over columns
# ---------------------------------------------------------------------------
#
# The batch execution backend hands the operator one ColumnBatch of the sorted
# answer instead of row tuples.  Bags and partitions are then ranges/lists of
# *row indices* into the shared column lists, so no row tuples are ever built
# and each recursion step touches only the one or two columns it needs.  The
# arithmetic (and its order) is identical to ``group_probability``, which
# makes the two paths produce bit-identical confidences.


def columnar_bag_probability(
    signature: Signature,
    indices: Sequence[int],
    var_columns: Dict[str, Sequence[object]],
    prob_columns: Dict[str, Sequence[float]],
) -> float:
    """Probability of one bag of duplicates given as row indices into columns.

    Mirrors :func:`group_probability` exactly — same traversal, same grouping
    order, same multiplication order — over column-oriented storage.
    """
    if not indices:
        raise ProbabilityError("cannot compute the probability of an empty bag")
    if isinstance(signature, TableSig):
        variable_column = var_columns[signature.table]
        variables = {variable_column[i] for i in indices}
        if len(variables) != 1:
            raise ProbabilityError(
                f"signature promises a single {signature.table} variable per group but found "
                f"{len(variables)}; the signature (or its FD refinement) is too precise "
                "for this data"
            )
        return prob_columns[signature.table][indices[0]]
    if isinstance(signature, ConcatSig):
        probability = 1.0
        for part in signature.parts:
            probability *= columnar_bag_probability(
                part, _distinct_indices(part, indices, var_columns), var_columns, prob_columns
            )
        return probability
    if isinstance(signature, StarSig):
        inner = signature.inner
        if isinstance(inner, TableSig):
            variable_column = var_columns[inner.table]
            probability_column = prob_columns[inner.table]
            none_true = 1.0
            seen = set()
            for i in indices:
                variable = variable_column[i]
                if variable in seen:
                    continue
                seen.add(variable)
                none_true *= 1.0 - probability_column[i]
            return 1.0 - none_true
        parts = inner.top_level_parts()
        leader = next((p.table for p in parts if isinstance(p, TableSig)), None)
        if leader is None:
            raise QueryError(
                f"signature {signature} lacks the 1scan property; "
                "pre-aggregate with repro.sprout.scans first"
            )
        leader_column = var_columns[leader]
        partitions: Dict[object, List[int]] = {}
        for i in indices:
            partitions.setdefault(leader_column[i], []).append(i)
        none_true = 1.0
        for partition_indices in partitions.values():
            partition_probability = 1.0
            for part in parts:
                partition_probability *= columnar_bag_probability(
                    part,
                    _distinct_indices(part, partition_indices, var_columns),
                    var_columns,
                    prob_columns,
                )
            none_true *= 1.0 - partition_probability
        return 1.0 - none_true
    raise QueryError(f"unknown signature node {signature!r}")


def _distinct_indices(
    part: Signature,
    indices: Sequence[int],
    var_columns: Dict[str, Sequence[object]],
) -> List[int]:
    """Row indices distinct with respect to the variable columns of ``part``.

    The columnar counterpart of :func:`_distinct_for`: first occurrence wins,
    order is preserved.  The common single-table case avoids tuple packing.
    """
    columns = [var_columns[table] for table in part.tables() if table in var_columns]
    seen = set()
    result: List[int] = []
    if len(columns) == 1:
        column = columns[0]
        for i in indices:
            key = column[i]
            if key in seen:
                continue
            seen.add(key)
            result.append(i)
        return result
    for i in indices:
        key = tuple(column[i] for column in columns)
        if key in seen:
            continue
        seen.add(key)
        result.append(i)
    return result


def columnar_scan_confidences(
    batch: "ColumnBatch",
    signature: Signature,
) -> Iterator[Tuple[Tuple[object, ...], float]]:
    """Yield ``(data_tuple, confidence)`` per bag of a sorted column batch.

    The batch must be sorted by the data columns first and by the variable
    columns in signature order within each bag (see :func:`sort_column_order`).
    """
    columns = ColumnMap(batch.schema)
    var_columns = {table: batch.columns[i] for table, i in columns.var_index.items()}
    prob_columns = {table: batch.columns[i] for table, i in columns.prob_index.items()}
    data_columns = [batch.columns[i] for i in columns.data_indices]
    total = len(batch)
    if total == 0:
        return
    if data_columns:
        if len(data_columns) == 1:
            keys: Sequence[Tuple[object, ...]] = [(v,) for v in data_columns[0]]
        else:
            keys = list(zip(*data_columns))
    else:
        # Boolean query: every row belongs to the single empty data tuple.
        keys = [()] * total
    start = 0
    for position in range(1, total):
        if keys[position] != keys[start]:
            yield keys[start], columnar_bag_probability(
                signature, range(start, position), var_columns, prob_columns
            )
            start = position
    yield keys[start], columnar_bag_probability(
        signature, range(start, total), var_columns, prob_columns
    )


def one_scan_operator_columns(
    batch: "ColumnBatch",
    signature: Signature,
    presorted: bool = False,
    name: Optional[str] = None,
) -> Relation:
    """Columnar form of :func:`one_scan_operator` over a :class:`ColumnBatch`."""
    from repro.algebra.columnar import sort_batch

    if not presorted:
        batch = sort_batch(batch, sort_column_order(batch.schema, signature))
    columns = ColumnMap(batch.schema)
    data_attributes = [batch.schema[batch.schema.names[i]] for i in columns.data_indices]
    result_schema = Schema(list(data_attributes) + [Attribute("conf", "float")])
    result = Relation(name or "result", result_schema)
    rows = result.rows
    for data, confidence in columnar_scan_confidences(batch, signature):
        rows.append(data + (confidence,))
    return result


# ---------------------------------------------------------------------------
# Streaming evaluator with per-node running probabilities (Fig. 8 spirit)
# ---------------------------------------------------------------------------


def _count_partitioned_branches(signature: Signature) -> int:
    """Number of top-level parts that can have several partitions per bag."""
    return sum(
        1 for part in signature.top_level_parts() if isinstance(part, StarSig)
    )


def _check_streaming_supported(signature: Signature) -> None:
    """Reject signatures whose variable partitions re-occur non-adjacently.

    The constant-memory streaming evaluator identifies partitions by value
    changes in a column.  When two or more sibling branches each have several
    partitions per group (a many-to-many cross product, e.g. ``R*S*`` or
    ``(R1(R2R3*)*(R4R5*)*)*``), the branch sorted later re-visits old
    partitions and value-change detection alone is insufficient (the paper's
    Fig. 8 handles this with its enable/disable flags).  Those signatures do
    not occur in the TPC-H workload; for them use :func:`scan_confidences`,
    which buffers one bag of duplicates and is correct in general.
    """

    def check(node: Signature) -> None:
        if isinstance(node, TableSig):
            return
        if isinstance(node, StarSig):
            inner_parts = node.inner.top_level_parts()
            if sum(1 for part in inner_parts if isinstance(part, StarSig)) > 1:
                raise QueryError(
                    f"signature {node} has several starred sibling branches; "
                    "the streaming evaluator does not support many-to-many "
                    "cross products — use scan_confidences instead"
                )
            for part in inner_parts:
                check(part)
            return
        if isinstance(node, ConcatSig):
            if _count_partitioned_branches(node) > 1:
                raise QueryError(
                    f"signature {node} is a product of several starred factors; "
                    "use scan_confidences instead of the streaming evaluator"
                )
            for part in node.parts:
                check(part)
            return
        raise QueryError(f"unknown signature node {node!r}")

    check(signature)


class _StreamNode:
    """Running state of one 1scanTree node: current and completed partitions."""

    __slots__ = ("table", "children", "crt_probability", "all_probability", "current_variable")

    def __init__(self, table: str, children: Sequence["_StreamNode"]):
        self.table = table
        self.children = list(children)
        self.reset()

    def reset(self) -> None:
        self.crt_probability = 0.0
        self.all_probability = 0.0
        self.current_variable = None

    def close_partition(self) -> None:
        """Fold the current partition (times the children) into allP."""
        if self.current_variable is None:
            return
        probability = self.crt_probability
        for child in self.children:
            child.close_partition()
            probability *= child.all_probability
        self.all_probability = 1.0 - (1.0 - self.all_probability) * (1.0 - probability)
        self.crt_probability = 0.0
        self.current_variable = None
        for child in self.children:
            child.reset()

    def result(self) -> float:
        return self.all_probability


class OneScanState:
    """Streaming one-scan confidence computation for a single bag of duplicates.

    Keeps one :class:`_StreamNode` per variable column; processing a row costs
    O(number of columns) and no rows are buffered — the memory profile of the
    secondary-storage operator described in the paper.  Requires the input
    rows of the bag to be sorted by the variable columns in 1scanTree preorder
    and every starred composite of the signature to have a star-free leader
    (the 1scan property).
    """

    def __init__(self, signature: Signature, columns: ColumnMap):
        if not has_one_scan_property(signature):
            raise QueryError(
                f"signature {signature} lacks the 1scan property; "
                "use repro.sprout.scans.schedule_scans first"
            )
        _check_streaming_supported(signature)
        self.signature = signature
        self.columns = columns
        self.roots = [self._build(root) for root in one_scan_tree(signature)]
        self._nodes_preorder: List[_StreamNode] = []
        for root in self.roots:
            self._collect(root)

    def _build(self, tree_node) -> _StreamNode:
        return _StreamNode(tree_node.table, [self._build(child) for child in tree_node.children])

    def _collect(self, node: _StreamNode) -> None:
        self._nodes_preorder.append(node)
        for child in node.children:
            self._collect(child)

    def process(self, row: Row) -> None:
        """Feed one answer row of the current bag."""
        for root in self.roots:
            self._process_child(root, row)

    def _process_child(self, node: _StreamNode, row: Row) -> None:
        variable = self.columns.var_of(row, node.table)
        probability = self.columns.prob_of(row, node.table)
        if node.current_variable is None:
            node.crt_probability = probability
            node.current_variable = variable
        elif variable != node.current_variable:
            node.close_partition()
            node.crt_probability = probability
            node.current_variable = variable
        for child in node.children:
            self._process_child(child, row)

    def finish(self) -> float:
        """Close all open partitions and return the bag's confidence."""
        probability = 1.0
        for root in self.roots:
            root.close_partition()
            probability *= root.result()
        for root in self.roots:
            root.reset()
        return probability


def streaming_scan_confidences(
    rows: Iterable[Row],
    columns: ColumnMap,
    signature: Signature,
) -> Iterator[Tuple[Tuple[object, ...], float]]:
    """Streaming variant of :func:`scan_confidences` using :class:`OneScanState`."""
    state = OneScanState(signature, columns)
    current_data: Optional[Tuple[object, ...]] = None
    have_rows = False
    for row in rows:
        data = columns.data_of(row)
        if current_data is None:
            current_data = data
        elif data != current_data:
            yield current_data, state.finish()
            current_data = data
        state.process(row)
        have_rows = True
    if have_rows:
        yield current_data, state.finish()


# ---------------------------------------------------------------------------
# Columnar lineage extraction (the batch pipeline's hand-off to the d-tree
# and parallel-confidence paths)
# ---------------------------------------------------------------------------


def columnar_lineage(
    batch, interner=None
) -> Tuple[Dict[Tuple[object, ...], set], Dict[int, float]]:
    """Extract per-tuple DNF lineage and the variable→probability map from a
    :class:`repro.algebra.columnar.ColumnBatch` without materialising rows.

    The columnar twin of :func:`repro.prob.lineage.lineage_by_tuple` plus
    :func:`repro.prob.lineage.probabilities_from_answer`: the answer batch
    stays in column form (one zip across the VAR columns per clause) and the
    result is bit-identical to the row path — the clause *sets* and
    probability floats are the same objects the row extraction would build.
    Used by the d-tree and parallel-confidence routes under
    ``execution="batch"``.  Returns ``(data tuple → set of clause frozensets,
    variable → probability)``.

    With ``interner`` (a :class:`repro.prob.sharedag.ClauseInterner`) the
    emitted clauses are interned ids-and-objects directly: every recurrence
    of a clause — the same supplier/partsupp pair under many answer tuples —
    is the *same* frozenset object registered once in the shared-lineage
    store, so downstream hash-consing starts from pre-deduplicated parts.
    """
    from repro.errors import ProbabilityError
    from repro.prob.lineage import split_answer_columns

    data_indices, var_indices, prob_indices = split_answer_columns(batch.schema)
    if len(var_indices) != len(prob_indices):
        raise ProbabilityError("answer batch has unpaired variable/probability columns")
    columns = batch.columns
    data_columns = [columns[i] for i in data_indices]
    clauses: Dict[Tuple[object, ...], set] = {}
    probabilities: Dict[int, float] = {}
    var_columns = [columns[i] for i in var_indices]
    prob_columns = [columns[i] for i in prob_indices]
    data_rows = zip(*data_columns) if data_columns else (() for _ in range(len(batch)))
    var_rows = zip(*var_columns) if var_columns else (() for _ in range(len(batch)))
    prob_rows = zip(*prob_columns) if prob_columns else (() for _ in range(len(batch)))
    for data, variables, probs in zip(data_rows, var_rows, prob_rows):
        clause = []
        for variable, probability in zip(variables, probs):
            if variable is None:
                raise ProbabilityError("answer row has a NULL variable column")
            variable = int(variable)
            clause.append(variable)
            existing = probabilities.get(variable)
            if existing is not None and abs(existing - probability) > 1e-12:
                raise ProbabilityError(
                    f"variable {variable} carries two different probabilities "
                    f"({existing} vs {probability})"
                )
            probabilities[variable] = float(probability)
        interned = frozenset(clause) if interner is None else interner.intern(clause)
        clauses.setdefault(tuple(data), set()).add(interned)
    return clauses, probabilities

"""SPROUT core: confidence operator, scan scheduling, planners, engine.

The system layer that turns a conjunctive query into an answer relation
with confidences:

* :mod:`repro.sprout.engine` — :class:`SproutEngine`, the public entry
  point: plan styles (lazy/eager/hybrid/lineage/dtree), row vs. batch
  execution, exact vs. anytime-approximate confidence, top-k/threshold
  APIs, and the ``workers=N`` parallelism knob.
* :mod:`repro.sprout.planner` — join ordering, answer-plan construction,
  and the eager/hybrid evaluation that interleaves joins with aggregation.
* :mod:`repro.sprout.conf_operator` — the probability-computation
  operator's literal Fig. 5 semantics (aggregation/propagation sequences).
* :mod:`repro.sprout.scans` / :mod:`repro.sprout.onescan` — the scan-based
  secondary-storage implementation (Section V.C): pre-aggregation
  scheduling and the single-pass operator for 1scan signatures, in row and
  columnar variants.
* :mod:`repro.sprout.topk` — bound-driven top-k/threshold refinement
  scheduling over per-tuple d-tree brackets (serial, in-process).
* :mod:`repro.sprout.streaming` — standing top-k/threshold queries over
  delta feeds: :class:`StandingQuery` keeps the decided set live across
  probability updates and tuple inserts/deletes, re-deciding warm on the
  shared DAG (``docs/streaming.md``).
* :mod:`repro.sprout.parallel` — the parallel confidence executor:
  picklable per-tuple work units, serial/multiprocessing backends, and the
  round-based parallel top-k/threshold scheduler, with results
  bit-identical for every worker count.

``docs/architecture.md`` walks the full pipeline end to end.
"""

from repro.sprout.conf_operator import (
    ConfOperatorResult,
    ConfStep,
    apply_semantics,
    compute_answer_confidences,
    grp_statements,
)
from repro.sprout.engine import (
    CONF_METHODS,
    CONFIDENCE_MODES,
    EXECUTION_MODES,
    PLAN_STYLES,
    EvaluationResult,
    SproutEngine,
)
from repro.sprout.onescan import (
    ColumnMap,
    OneScanState,
    column_map_for,
    columnar_bag_probability,
    columnar_lineage,
    columnar_scan_confidences,
    group_probability,
    one_scan_operator,
    one_scan_operator_columns,
    scan_confidences,
    sort_column_order,
    streaming_scan_confidences,
)
from repro.sprout.planner import (
    JoinOrderPlanner,
    base_table_plan,
    base_table_plan_batch,
    build_answer_plan,
    build_answer_plan_batch,
    eager_evaluation,
    evaluate_deterministic,
    materialize_answer,
    needed_data_attributes,
)
from repro.sprout.parallel import (
    ConfidenceExecutor,
    ConfidenceTask,
    ParallelCandidate,
    ParallelOutcome,
    ParallelRefinementScheduler,
    ProcessExecutor,
    SerialExecutor,
    TaskOutcome,
    compute_confidences,
    derive_task_seed,
)
from repro.sprout.streaming import StandingQuery
from repro.sprout.topk import (
    RefinementScheduler,
    SchedulerOutcome,
    TupleCandidate,
    finish_selected,
    run_decision,
)
from repro.sprout.scans import (
    ScanSchedule,
    ScanStep,
    apply_scan_schedule,
    apply_scan_schedule_columns,
    schedule_scans,
)

__all__ = [
    "CONF_METHODS",
    "CONFIDENCE_MODES",
    "EXECUTION_MODES",
    "ColumnMap",
    "ConfOperatorResult",
    "ConfStep",
    "ConfidenceExecutor",
    "ConfidenceTask",
    "EvaluationResult",
    "JoinOrderPlanner",
    "OneScanState",
    "PLAN_STYLES",
    "ParallelCandidate",
    "ParallelOutcome",
    "ParallelRefinementScheduler",
    "ProcessExecutor",
    "RefinementScheduler",
    "ScanSchedule",
    "ScanStep",
    "SchedulerOutcome",
    "SerialExecutor",
    "SproutEngine",
    "StandingQuery",
    "TaskOutcome",
    "TupleCandidate",
    "compute_confidences",
    "derive_task_seed",
    "apply_scan_schedule",
    "apply_scan_schedule_columns",
    "apply_semantics",
    "compute_answer_confidences",
    "base_table_plan",
    "base_table_plan_batch",
    "build_answer_plan",
    "build_answer_plan_batch",
    "column_map_for",
    "columnar_bag_probability",
    "columnar_lineage",
    "columnar_scan_confidences",
    "one_scan_operator_columns",
    "eager_evaluation",
    "evaluate_deterministic",
    "finish_selected",
    "group_probability",
    "grp_statements",
    "materialize_answer",
    "needed_data_attributes",
    "one_scan_operator",
    "run_decision",
    "scan_confidences",
    "schedule_scans",
    "sort_column_order",
    "streaming_scan_confidences",
]

"""SPROUT core: the confidence operator, scan scheduling, planners, engine."""

from repro.sprout.conf_operator import ConfOperatorResult, ConfStep, apply_semantics, grp_statements
from repro.sprout.engine import CONF_METHODS, PLAN_STYLES, EvaluationResult, SproutEngine
from repro.sprout.onescan import (
    ColumnMap,
    OneScanState,
    column_map_for,
    group_probability,
    one_scan_operator,
    scan_confidences,
    sort_column_order,
    streaming_scan_confidences,
)
from repro.sprout.planner import (
    JoinOrderPlanner,
    base_table_plan,
    build_answer_plan,
    eager_evaluation,
    evaluate_deterministic,
    needed_data_attributes,
)
from repro.sprout.scans import ScanSchedule, ScanStep, apply_scan_schedule, schedule_scans

__all__ = [
    "CONF_METHODS",
    "ColumnMap",
    "ConfOperatorResult",
    "ConfStep",
    "EvaluationResult",
    "JoinOrderPlanner",
    "OneScanState",
    "PLAN_STYLES",
    "ScanSchedule",
    "ScanStep",
    "SproutEngine",
    "apply_scan_schedule",
    "apply_semantics",
    "base_table_plan",
    "build_answer_plan",
    "column_map_for",
    "eager_evaluation",
    "evaluate_deterministic",
    "group_probability",
    "grp_statements",
    "needed_data_attributes",
    "one_scan_operator",
    "scan_confidences",
    "schedule_scans",
    "sort_column_order",
    "streaming_scan_confidences",
]

"""Scan scheduling for the confidence operator (Proposition V.10).

A signature with the 1scan property is handled by a single scan of the sorted
answer.  Otherwise the operator first runs *pre-aggregation* scans: each scan
evaluates a constituent sub-operator (e.g. ``[Ord*]``) with one GRP pass,
rewriting the signature (``Ord* -> Ord``), until the remaining signature has
the 1scan property; a final scan then computes the confidences.  Example V.11:
``[(Cust*(Ord*Item*)*)*]`` needs three scans — ``[Ord*]``, ``[Cust*]``, and
the final scan over ``(Cust(Ord Item*)*)*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import QueryError
from repro.algebra.aggregate import AggregateSpec, GroupByOp
from repro.algebra.operators import MaterializedOp
from repro.query.signature import (
    ConcatSig,
    Signature,
    StarSig,
    TableSig,
    has_one_scan_property,
)
from repro.sprout.onescan import (
    ColumnMap,
    columnar_bag_probability,
    one_scan_operator,
    one_scan_operator_columns,
)
from repro.storage.relation import Relation

__all__ = [
    "ScanStep",
    "ScanSchedule",
    "schedule_scans",
    "apply_scan_schedule",
    "apply_scan_schedule_columns",
]


@dataclass(frozen=True)
class ScanStep:
    """One pre-aggregation scan: evaluate ``[subsignature]`` and simplify."""

    sub_signature: Signature
    aggregated_table: str  # representative (leftmost) table of the sub-signature
    signature_before: Signature
    signature_after: Signature

    def __str__(self) -> str:
        return (
            f"scan [{self.sub_signature}] : {self.signature_before} -> {self.signature_after}"
        )


@dataclass
class ScanSchedule:
    """The full scan schedule of an operator invocation."""

    original_signature: Signature
    pre_aggregations: List[ScanStep] = field(default_factory=list)
    final_signature: Signature = None

    @property
    def total_scans(self) -> int:
        """Pre-aggregation scans plus the final confidence scan."""
        return len(self.pre_aggregations) + 1

    def describe(self) -> str:
        lines = [f"signature: {self.original_signature}"]
        for step in self.pre_aggregations:
            lines.append(f"  {step}")
        lines.append(f"  final scan over {self.final_signature}")
        return "\n".join(lines)


def _innermost_failing_star(signature: Signature) -> Optional[StarSig]:
    """The deepest starred subexpression lacking the 1scan property."""
    failing = [
        sub
        for sub in signature.subexpressions()
        if isinstance(sub, StarSig) and not has_one_scan_property(sub)
    ]
    if not failing:
        return None
    # subexpressions() is preorder; the innermost failing star is the one with
    # no failing descendant.
    for candidate in failing:
        descendants = candidate.inner.subexpressions()
        if not any(
            isinstance(d, StarSig) and not has_one_scan_property(d) for d in descendants
        ):
            return candidate
    return failing[-1]


def _pick_pre_aggregation(failing: StarSig) -> Signature:
    """Choose the part of a failing starred composite to aggregate first.

    Prefer a starred table (``T*`` — one plain GRP), otherwise any part that
    itself has the 1scan property (a composite sub-operator).
    """
    parts = failing.inner.top_level_parts()
    for part in parts:
        if isinstance(part, StarSig) and isinstance(part.inner, TableSig):
            return part
    for part in parts:
        if has_one_scan_property(part):
            return part
    raise QueryError(
        f"cannot schedule scans for signature {failing}: no aggregatable part"
    )


def _replace(signature: Signature, target: Signature, replacement: Signature) -> Signature:
    """Replace the first structural occurrence of ``target`` by ``replacement``."""
    if signature == target:
        return replacement
    if isinstance(signature, TableSig):
        return signature
    if isinstance(signature, StarSig):
        return StarSig(_replace(signature.inner, target, replacement))
    if isinstance(signature, ConcatSig):
        replaced = False
        parts: List[Signature] = []
        for part in signature.parts:
            if not replaced:
                new_part = _replace(part, target, replacement)
                if new_part is not part and new_part != part:
                    replaced = True
                parts.append(new_part)
            else:
                parts.append(part)
        return ConcatSig(parts)
    raise QueryError(f"unknown signature node {signature!r}")


def schedule_scans(signature: Signature) -> ScanSchedule:
    """Plan the pre-aggregation scans needed before the final 1scan pass."""
    schedule = ScanSchedule(original_signature=signature)
    current = signature
    while not has_one_scan_property(current):
        failing = _innermost_failing_star(current)
        if failing is None:
            break
        part = _pick_pre_aggregation(failing)
        representative = part.tables()[0]
        after = _replace(current, part, TableSig(representative))
        schedule.pre_aggregations.append(
            ScanStep(
                sub_signature=part,
                aggregated_table=representative,
                signature_before=current,
                signature_after=after,
            )
        )
        current = after
    schedule.final_signature = current
    return schedule


def _run_pre_aggregation(answer: Relation, step: ScanStep) -> Relation:
    """Execute one pre-aggregation scan as a GRP pass.

    The sub-operator ``[part]`` groups by every column except the V/P columns
    of the part's tables, computes the part's probability per group (for a
    plain ``T*`` this is ``prob(T.P)``), stores it in the representative
    table's probability column with ``min`` of its variable column as the
    representative variable, and drops the other tables' columns.
    """
    part = step.sub_signature
    tables = part.tables()
    representative = step.aggregated_table
    columns = ColumnMap(answer.schema)
    part_columns = set()
    for table in tables:
        part_columns.add(answer.schema.names[columns.var_index[table]])
        part_columns.add(answer.schema.names[columns.prob_index[table]])
    group_by = [name for name in answer.schema.names if name not in part_columns]

    if isinstance(part, StarSig) and isinstance(part.inner, TableSig):
        # Plain [T*]: a single GRP statement suffices.
        var_column = answer.schema.names[columns.var_index[representative]]
        prob_column = answer.schema.names[columns.prob_index[representative]]
        operator = GroupByOp(
            MaterializedOp(answer),
            group_by,
            [
                AggregateSpec("min", var_column, var_column),
                AggregateSpec("prob", prob_column, prob_column),
            ],
        )
        return operator.to_relation(answer.name)

    # Composite sub-operator: evaluate its factorisation per group.
    from repro.sprout.onescan import group_probability  # local import to avoid cycle

    var_column = answer.schema.names[columns.var_index[representative]]
    prob_column = answer.schema.names[columns.prob_index[representative]]
    group_indices = answer.schema.indices_of(group_by)
    kept_names = group_by + [var_column, prob_column]
    kept_schema = answer.schema.project(kept_names)
    result = Relation(answer.name, kept_schema)

    groups = {}
    order: List[Tuple[object, ...]] = []
    for row in answer:
        key = tuple(row[i] for i in group_indices)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    var_index = columns.var_index[representative]
    for key in order:
        rows = groups[key]
        probability = group_probability(part, rows, columns)
        representative_variable = min(row[var_index] for row in rows)
        result.append(key + (representative_variable, probability))
    return result


def _run_pre_aggregation_columns(batch, step: ScanStep):
    """Columnar counterpart of :func:`_run_pre_aggregation` over a ColumnBatch.

    Same grouping (insertion order), same aggregates, same output column
    order, so the batch path reproduces the row path's results exactly.
    """
    from repro.algebra.columnar import ColumnBatch, build_group_buckets, group_by_columns

    part = step.sub_signature
    tables = part.tables()
    representative = step.aggregated_table
    columns = ColumnMap(batch.schema)
    part_columns = set()
    for table in tables:
        part_columns.add(batch.schema.names[columns.var_index[table]])
        part_columns.add(batch.schema.names[columns.prob_index[table]])
    group_by = [name for name in batch.schema.names if name not in part_columns]

    var_column = batch.schema.names[columns.var_index[representative]]
    prob_column = batch.schema.names[columns.prob_index[representative]]

    if isinstance(part, StarSig) and isinstance(part.inner, TableSig):
        # Plain [T*]: a single GRP statement suffices.
        return group_by_columns(
            batch,
            group_by,
            [
                AggregateSpec("min", var_column, var_column),
                AggregateSpec("prob", prob_column, prob_column),
            ],
        )

    # Composite sub-operator: evaluate its factorisation per group.
    group_indices = batch.schema.indices_of(group_by)
    kept_names = group_by + [var_column, prob_column]
    kept_schema = batch.schema.project(kept_names)

    group_columns, first_rows, buckets = build_group_buckets(batch, group_indices)
    var_columns = {table: batch.columns[i] for table, i in columns.var_index.items()}
    prob_columns = {table: batch.columns[i] for table, i in columns.prob_index.items()}
    representative_var = var_columns[representative]
    out_columns = [[column[i] for i in first_rows] for column in group_columns]
    out_columns.append([min(representative_var[i] for i in bucket) for bucket in buckets])
    out_columns.append(
        [
            columnar_bag_probability(part, bucket, var_columns, prob_columns)
            for bucket in buckets
        ]
    )
    return ColumnBatch(kept_schema, out_columns, len(buckets))


def apply_scan_schedule_columns(
    batch,
    signature: Signature,
    presorted: bool = False,
    name: str = "result",
) -> Tuple[Relation, ScanSchedule]:
    """Columnar form of :func:`apply_scan_schedule` over a ColumnBatch."""
    schedule = schedule_scans(signature)
    current = batch
    for step in schedule.pre_aggregations:
        current = _run_pre_aggregation_columns(current, step)
    result = one_scan_operator_columns(
        current, schedule.final_signature, presorted=presorted, name=name
    )
    return result, schedule


def apply_scan_schedule(
    answer: Relation,
    signature: Signature,
    presorted: bool = False,
) -> Tuple[Relation, ScanSchedule]:
    """Run the full multi-scan confidence computation on ``answer``.

    Returns the relation of distinct data tuples with their ``conf`` values
    and the schedule that was executed.  The number of scans equals
    ``schedule.total_scans`` and matches Proposition V.10 for the signatures
    arising from hierarchical queries.
    """
    schedule = schedule_scans(signature)
    current = answer
    for step in schedule.pre_aggregations:
        current = _run_pre_aggregation(current, step)
    result = one_scan_operator(current, schedule.final_signature, presorted=presorted)
    return result, schedule

"""Bound-driven top-k and threshold evaluation (multi-tuple refinement).

The anytime d-tree engine (:mod:`repro.prob.dtree`) brackets each answer
tuple's confidence with monotone lower/upper bounds.  For top-k and
τ-threshold queries the final answer is a *set*, not a number — so instead of
refining every tuple to a uniform epsilon, the scheduler here interleaves
refinement *across* tuples and stops the moment the answer set is provably
decided:

* **top-k** is decided when the k tuples with the largest lower bounds all
  dominate everything else: ``min lower(selected) >= max upper(rest)``.  Until
  then exactly two tuples gate the decision — the weakest selected tuple and
  the strongest excluded one — and the scheduler refines whichever of the two
  has the wider bracket (the multisimulation rule of Ré, Dalvi and Suciu,
  ICDE 2007, transplanted onto d-tree brackets);
* **threshold** is decided when no tuple's bracket straddles τ; until then the
  scheduler refines the straddling tuple with the widest bracket.

Tuples whose confidence is already known exactly (safe sub-plans, closed
trees) participate with degenerate brackets and are never refined.  Because
every d-tree expansion tightens its bracket and a tree closes after finitely
many expansions, both loops terminate without any epsilon — the optional
``max_steps`` budget only guards against pathological lineage, reporting
``decided=False`` with the best partition so far instead of running away.

This scheduler refines gating tuples on live, in-process trees (and is what
``SproutEngine(workers=0)`` runs, reusing the engine's lineage cache across
calls).  It has two refinement modes:

* **per-tuple** (``store=None``) — the candidates are independent
  :class:`repro.prob.dtree.DTree`\\ s and each grant refines the wider
  bracket of the crossing pair (top-k) or the widest straddler (threshold)
  by a :data:`DEFAULT_CHUNK`-step quantum;
* **shared-lineage** (``store`` set, the engine default) — the candidates
  are :class:`repro.prob.sharedag.SharedDTree` views over one hash-consed
  DAG, and each grant expands the single shared node with the largest
  bound-width mass summed over *all* tuples gating the decision
  (:meth:`repro.prob.sharedag.SharedLineageStore.refine_most_valuable`).
  One logical step can tighten many brackets at once, so decisions take
  measurably fewer steps on overlapping lineage.

Its parallel counterpart,
:class:`repro.sprout.parallel.ParallelRefinementScheduler`, generalises the
single gating tuple to a *frontier batch* refined concurrently per round on
a worker pool; all modes share the same decision rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import nlargest
from typing import Dict, List, Optional, Tuple, Union

from repro.deadline import Deadline
from repro.deadline import expired as _deadline_expired
from repro.errors import ApproximationBudgetError, PlanningError
from repro.prob.dtree import DTree, refine_to_budget
from repro.prob.sharedag import SharedDTree, SharedLineageStore

__all__ = [
    "DEFAULT_CHUNK",
    "TupleCandidate",
    "SchedulerOutcome",
    "RefinementScheduler",
    "finish_selected",
    "run_decision",
]

DataTuple = Tuple[object, ...]

#: Expansions granted per scheduling decision.  Large enough to amortise the
#: candidate ranking between grants, small enough that refinement never
#: overshoots the decision by much.
DEFAULT_CHUNK = 16

#: Expansions granted between re-rankings in *shared* mode.  Shared grants
#: target the globally most valuable node, so they need re-ranking far more
#: often than per-tuple chunks — but once per expansion would make the
#: O(n log k) ranking pass the dominant cost on large candidate sets.  A
#: small batch keeps the step frugality while amortising the ranking.
DEFAULT_SHARED_CHUNK = 4


class TupleCandidate:
    """One answer tuple competing for the result set.

    Backed either by an exact confidence (``value``) — a degenerate bracket
    that never refines — or by a live, resumable :class:`DTree` (or
    :class:`repro.prob.sharedag.SharedDTree` view) whose current root bounds
    are the bracket.
    """

    __slots__ = ("data", "tree", "value")

    def __init__(
        self,
        data: DataTuple,
        tree: Optional[Union[DTree, SharedDTree]] = None,
        value: Optional[float] = None,
    ):
        if (tree is None) == (value is None):
            raise PlanningError(
                "a candidate needs exactly one of a d-tree or an exact value"
            )
        self.data = data
        self.tree = tree
        self.value = value

    @property
    def lower(self) -> float:
        return self.value if self.tree is None else self.tree.lower

    @property
    def upper(self) -> float:
        return self.value if self.tree is None else self.tree.upper

    @property
    def gap(self) -> float:
        return 0.0 if self.tree is None else self.tree.gap

    @property
    def exact(self) -> bool:
        return self.tree is None or self.tree.is_exact or self.tree.gap <= 0.0

    @property
    def midpoint(self) -> float:
        return self.value if self.tree is None else 0.5 * (self.lower + self.upper)

    def refine(self, steps: int) -> int:
        """Tighten the bracket by up to ``steps`` expansions; count performed."""
        if self.tree is None:
            return 0
        return self.tree.refine(steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TupleCandidate({self.data!r}, [{self.lower:.4f}, {self.upper:.4f}])"


@dataclass
class SchedulerOutcome:
    """The decided (or budget-capped) answer set with its evidence."""

    #: Tuples in the answer set, most probable first (by current midpoint).
    selected: List[TupleCandidate]
    #: Every candidate, selected or not, with its final bracket.
    candidates: List[TupleCandidate]
    #: True when the answer set is provably correct; False when the
    #: ``max_steps`` budget or a wall-clock deadline ran out first.
    decided: bool
    #: Total d-tree expansions spent by the scheduler.
    steps: int = 0
    #: ``None`` for a full-fidelity answer; ``"deadline"`` when refinement
    #: stopped at a wall-clock deadline (anytime degradation: the bounds are
    #: still sound, only the stopping point moved).  Budget exhaustion keeps
    #: ``None`` — it is step-metered and therefore deterministic.
    degraded: Optional[str] = None

    def bounds(self) -> Dict[DataTuple, Tuple[float, float]]:
        return {c.data: (c.lower, c.upper) for c in self.candidates}


class RefinementScheduler:
    """Interleave d-tree refinement across candidate tuples (in-process).

    Parameters
    ----------
    candidates
        The competing :class:`TupleCandidate`\\ s — exact values and live,
        resumable d-trees may be mixed freely.
    chunk
        Expansions granted per scheduling decision (scaled up automatically
        on large candidate sets so the ranking pass stays amortised).
    max_steps
        Optional total expansion budget across all tuples.  ``None`` refines
        until the answer set is decided, which always terminates because
        every tree closes after finitely many expansions; a finite budget
        that runs out yields ``decided=False`` with the best partition so
        far — never an exception.
    store
        The :class:`repro.prob.sharedag.SharedLineageStore` backing the
        candidates' trees, when they are shared views.  Switches grants to
        shared-node scheduling: instead of refining the crossing pair's
        wider bracket by a chunk, each grant runs a refinement *round* over
        the shared nodes with the largest bound-width mass summed over the
        gating tuples — and every expansion is counted as one logical step
        no matter how many tuples it tightens.
    lane_pool
        Optional data-parallel lane pool (any object with a ``map(fn,
        items)`` method, e.g. :class:`repro.sprout.parallel.RefinementLanePool`)
        handed to the store's :meth:`~repro.prob.sharedag.SharedLineageStore.refine_round`.
        Lanes parallelise only the pure cofactor computation inside a round;
        the round *schedule* is planned before any lane runs, so outcomes
        are bit-identical with and without a pool.  Ignored when ``store``
        is ``None``.
    deadline
        Optional wall-clock :class:`repro.deadline.Deadline`, checked at the
        top of each decision loop and between shared refinement rounds —
        never inside a round, so the refinement *trajectory* stays the
        deterministic one and only the stopping point along it depends on
        the clock.  Expiry yields ``decided=False`` with
        ``degraded="deadline"`` and the current sound bounds.

    :meth:`run_topk` and :meth:`run_threshold` return a
    :class:`SchedulerOutcome`; both raise
    :class:`repro.errors.PlanningError` for invalid ``k``/``tau``.  Ties at
    the decision boundary resolve on the data tuple's ``repr``, so the
    selected set is identical no matter what order the candidates arrived in
    (row vs. batch pipelines) — and identical to the parallel scheduler's.
    """

    def __init__(
        self,
        candidates: List[TupleCandidate],
        chunk: int = DEFAULT_CHUNK,
        max_steps: Optional[int] = None,
        store: Optional[SharedLineageStore] = None,
        lane_pool: Optional[object] = None,
        deadline: Optional[Deadline] = None,
    ):
        if chunk < 1:
            raise PlanningError(f"chunk must be positive, got {chunk}")
        if max_steps is not None and max_steps < 0:
            raise PlanningError(f"max_steps must be non-negative, got {max_steps}")
        self.candidates = list(candidates)
        self.chunk = chunk
        self.max_steps = max_steps
        self.store = store
        self.lane_pool = lane_pool
        self.deadline = deadline
        self.steps = 0
        # Rank tiebreak on the data tuple's repr, precomputed once as a
        # numeric index: candidate *order* differs between the row and batch
        # pipelines, so a value-based key is the only way exact ties at the
        # k-boundary resolve to the same set under every backend.  Smaller
        # index = earlier repr = preferred on ties.
        by_repr = sorted(self.candidates, key=lambda c: repr(c.data))
        self._rank = {id(c): index for index, c in enumerate(by_repr)}

    # -- shared plumbing ----------------------------------------------------

    def _grant(self, candidate: TupleCandidate) -> None:
        # Scale the grant with the population so the per-grant ranking pass
        # (O(n log k)) stays amortised over the refinement work on large
        # candidate sets; small sets keep the fine-grained chunk.
        budget = max(self.chunk, len(self.candidates) // 64)
        if self.max_steps is not None:
            budget = min(budget, self.max_steps - self.steps)
        self.steps += candidate.refine(budget)

    def _grant_shared(self, gating: List[TupleCandidate]) -> int:
        """One shared refinement round for the gating set.

        Each expansion targets a node among those with the largest summed
        frontier value across the gating views — "bound-width mass over the
        tuples it gates" — so a clause block recurring under many candidates
        is refined once *for all of them*.  Up to :data:`DEFAULT_SHARED_CHUNK`
        expansions run as one planned round between re-rankings (batched
        bound propagation, optionally computed on data-parallel lanes):
        frequent re-checks keep the step count near-minimal without paying
        the full ranking pass on every single expansion.  Returns the steps
        performed (0 only when no gating view has an open frontier left).
        """
        views = [c.tree for c in gating if c.tree is not None]
        if not views:
            return 0
        budget = DEFAULT_SHARED_CHUNK
        if self.max_steps is not None:
            budget = min(budget, self.max_steps - self.steps)
        performed = 0
        while performed < budget:
            # Deadline check sits *between* rounds: a round is the atomic
            # unit of the bit-identity contract, so the clock only picks a
            # stopping point along the deterministic trajectory.
            if _deadline_expired(self.deadline):
                break
            advanced = self.store.refine_round(
                views, budget - performed, self.lane_pool, self.deadline
            )
            if advanced == 0:
                break
            performed += advanced
        self.steps += performed
        return performed

    def _exhausted(self) -> bool:
        return self.max_steps is not None and self.steps >= self.max_steps

    def _outcome(
        self,
        selected: List[TupleCandidate],
        decided: bool,
        degraded: Optional[str] = None,
    ) -> SchedulerOutcome:
        ordered = sorted(
            selected, key=lambda c: (-c.midpoint, repr(c.data))
        )
        return SchedulerOutcome(
            selected=ordered,
            candidates=list(self.candidates),
            decided=decided,
            steps=self.steps,
            degraded=degraded,
        )

    def _expired(self) -> bool:
        return _deadline_expired(self.deadline)

    # -- top-k --------------------------------------------------------------

    def run_topk(self, k: int) -> SchedulerOutcome:
        """Decide the k most probable tuples, refining only what gates the cut.

        Not decided means there is a *crossing pair*: the weakest tuple inside
        the provisional selection (smallest lower bound) and the strongest
        outside it (largest upper bound) overlap.  At least one of the two has
        a refinable bracket — two exact tuples in crossing position would
        contradict the selection order — and the wider one gets the grant.
        """
        if k < 1:
            raise PlanningError(f"k must be positive, got {k}")
        if k >= len(self.candidates):
            return self._outcome(list(self.candidates), True)
        rank = self._rank

        def key(c: TupleCandidate) -> Tuple[float, float, int]:
            # nlargest prefers larger keys; negating the rank index makes
            # ties fall to the candidate with the earlier repr.
            return (c.lower, c.upper, -rank[id(c)])

        while True:
            selected = nlargest(k, self.candidates, key=key)
            chosen = {id(c) for c in selected}
            rest = [c for c in self.candidates if id(c) not in chosen]
            weakest = min(selected, key=lambda c: c.lower)
            strongest = max(rest, key=lambda c: (c.upper, -rank[id(c)]))
            if weakest.lower >= strongest.upper:
                return self._outcome(selected, True)
            if self._expired():
                return self._outcome(selected, False, degraded="deadline")
            if self._exhausted():
                return self._outcome(selected, False)
            if self.store is not None:
                # Shared mode: every non-exact bracket overlapping the
                # contention window [weakest.lower, strongest.upper] gates
                # the cut; expand the shared node those tuples value most.
                gating = [
                    c for c in selected if not c.exact and c.lower < strongest.upper
                ]
                gating += [
                    c for c in rest if not c.exact and c.upper > weakest.lower
                ]
                if not gating or self._grant_shared(gating) == 0:
                    if self._expired():
                        return self._outcome(selected, False, degraded="deadline")
                    # Nothing refinable gates the decision: bail rather than spin.
                    return self._outcome(selected, False)
                continue
            # Refine the wider bracket of the crossing pair.
            target = max((weakest, strongest), key=lambda c: c.gap)
            if target.gap <= 0.0:
                # Unreachable: two exact tuples in crossing position would
                # contradict the lower-bound ranking.  Bail out rather than spin.
                return self._outcome(selected, False)
            self._grant(target)

    # -- threshold ----------------------------------------------------------

    def run_threshold(self, tau: float) -> SchedulerOutcome:
        """Partition candidates into confidence ``>= tau`` and ``< tau``.

        A candidate is decided-in once its lower bound reaches τ and
        decided-out once its upper bound drops below τ; the scheduler refines
        the straddling candidate with the widest bracket.  An exact candidate
        sitting precisely on τ counts as *in* (the answer is ``conf >= τ``).
        """
        if not 0.0 <= tau <= 1.0:
            raise PlanningError(f"tau must be within [0, 1], got {tau}")
        while True:
            # A straddling bracket has lower < tau <= upper, hence a positive
            # gap: exact candidates are always on one side of the cut.
            straddling = [c for c in self.candidates if c.lower < tau <= c.upper]
            if not straddling:
                selected = [c for c in self.candidates if c.lower >= tau]
                return self._outcome(selected, True)
            if self._expired():
                selected = [c for c in self.candidates if c.lower >= tau]
                return self._outcome(selected, False, degraded="deadline")
            if self._exhausted():
                selected = [c for c in self.candidates if c.lower >= tau]
                return self._outcome(selected, False)
            if self.store is not None:
                if self._grant_shared(straddling) == 0:
                    selected = [c for c in self.candidates if c.lower >= tau]
                    if self._expired():
                        return self._outcome(selected, False, degraded="deadline")
                    return self._outcome(selected, False)
                continue
            self._grant(max(straddling, key=lambda c: c.gap))


def run_decision(
    candidates: List[TupleCandidate],
    k: Optional[int],
    tau: Optional[float],
    confidence: str,
    max_steps: Optional[int],
    default_cap: Optional[int],
    store: Optional[SharedLineageStore] = None,
    lane_pool: Optional[object] = None,
    deadline: Optional[Deadline] = None,
) -> Tuple[SchedulerOutcome, int]:
    """One complete bound-driven decision: schedule, decide, finish exact.

    The single in-process decision routine shared by the serial engine route
    (``workers=0``) and the shared-parallel worker (which runs it against a
    store rebuilt from a shipped segment) — factoring it guarantees the two
    routes are the same code, which is what makes their decided sets,
    confidences, and step counts bit-identical.

    Runs :class:`RefinementScheduler` over ``candidates`` (top-k when ``k``
    is given, threshold otherwise) and, in exact confidence mode, refines
    every selected candidate to closure.  With ``max_steps=None`` each
    selected tuple gets the engine-default per-tuple ``default_cap`` and
    exhaustion raises :class:`repro.errors.ApproximationBudgetError`; an
    explicit ``max_steps`` instead caps the whole call (leftover after the
    decision, shared sequentially across tuples) and is reported, never
    raised.  Returns ``(outcome, finishing_steps)``.

    An empty candidate set — a standing query whose last tuple was deleted,
    a query with no answers — is decided trivially: an empty selection in
    zero steps, for both top-k and threshold.  Guarded here (not just in the
    scheduler) so every caller of the single decision routine shares it.

    With a shared ``store`` the whole decision runs *pinned*
    (:meth:`repro.prob.sharedag.SharedLineageStore.pinned`): a node-budget
    epoch reset triggered mid-decision is deferred until the decision
    finishes, which keeps interleaved requests over one store (the query
    service) bit-identical to running them serially.

    ``lane_pool`` fans each shared round's cofactor computation across
    data-parallel lanes (see :class:`RefinementScheduler`); because the
    round schedule is fixed before any lane runs, the returned outcome is
    bit-identical for no pool / 1 lane / N lanes.

    ``deadline`` bounds the wall-clock spent: checked between rounds in the
    scheduler and between candidates in exact finishing, expiry returns the
    current sound bounds with ``decided=False`` / ``degraded="deadline"``
    instead of raising (anytime degradation).
    """
    if not candidates:
        return SchedulerOutcome(selected=[], candidates=[], decided=True, steps=0), 0
    if store is None:
        return _run_decision_unpinned(
            candidates, k, tau, confidence, max_steps, default_cap, store,
            lane_pool, deadline,
        )
    with store.pinned():
        return _run_decision_unpinned(
            candidates, k, tau, confidence, max_steps, default_cap, store,
            lane_pool, deadline,
        )


def _run_decision_unpinned(
    candidates: List[TupleCandidate],
    k: Optional[int],
    tau: Optional[float],
    confidence: str,
    max_steps: Optional[int],
    default_cap: Optional[int],
    store: Optional[SharedLineageStore],
    lane_pool: Optional[object] = None,
    deadline: Optional[Deadline] = None,
) -> Tuple[SchedulerOutcome, int]:
    scheduler = RefinementScheduler(
        candidates,
        max_steps=default_cap if max_steps is None else max_steps,
        store=store,
        lane_pool=lane_pool,
        deadline=deadline,
    )
    outcome = scheduler.run_topk(k) if k is not None else scheduler.run_threshold(tau)
    finishing_steps = finish_selected(
        outcome.selected, confidence, max_steps, outcome.steps, default_cap,
        deadline=deadline,
    )
    if (
        confidence == "exact"
        and outcome.degraded is None
        and _deadline_expired(deadline)
        and any(not c.exact for c in outcome.selected)
    ):
        # Exact finishing hit the deadline: the decision stands but some
        # reported confidences are still brackets, so the payload must say so.
        outcome.degraded = "deadline"
    return outcome, finishing_steps


def finish_selected(
    selected: List[TupleCandidate],
    confidence: str,
    max_steps: Optional[int],
    spent_steps: int,
    default_cap: Optional[int],
    deadline: Optional[Deadline] = None,
) -> int:
    """Exact-mode finishing: refine each selected candidate to closure.

    The decision needed only bounds; exact mode still reports exact
    confidences for the tuples it returns (and only for those).  Factored
    out of :func:`run_decision` so the streaming re-decide path
    (:mod:`repro.sprout.streaming`) finishes its selected set with the very
    same budget arithmetic as the one-shot engine routes: with
    ``max_steps=None`` each tuple gets the per-tuple ``default_cap`` and
    exhaustion raises :class:`repro.errors.ApproximationBudgetError`; an
    explicit ``max_steps`` shares the leftover after the ``spent_steps``
    already charged, sequentially across tuples, and is reported, never
    raised.  Returns the expansions performed; a no-op outside exact mode.

    ``deadline`` is honoured between candidates (never inside one tuple's
    closure run would be wrong — closure is not round-structured, so the
    boundary here is the candidate): expiry stops finishing early and the
    caller reports ``degraded="deadline"`` for the still-bracketed tuples.
    """
    if confidence != "exact":
        return 0
    finishing_budget = None if max_steps is None else max(0, max_steps - spent_steps)
    finishing_steps = 0
    for candidate in selected:
        if candidate.tree is None or candidate.exact:
            continue
        if _deadline_expired(deadline):
            break
        if finishing_budget is None:
            remaining = default_cap
        else:
            remaining = finishing_budget - finishing_steps
        try:
            result = refine_to_budget(candidate.tree, epsilon=0.0, max_steps=remaining)
            finishing_steps += result.steps
        except ApproximationBudgetError as error:
            finishing_steps += error.steps
            if max_steps is None:
                raise
            break  # explicit cap: report the midpoints we have
    return finishing_steps

"""Parallel confidence computation: partition answer tuples across cores.

Confidence computation dominates probabilistic query answering (Section VII of
the paper), and after the d-tree engine made every per-tuple computation
resumable and independently seeded, the remaining cost is embarrassingly
parallel: each answer tuple's DNF lineage is an independent work unit.  This
module supplies the machinery the engine uses to spread that work across
worker processes:

* :class:`ConfidenceTask` / :class:`TaskOutcome` — picklable work units.  A
  task carries a tuple's lineage in order-canonical clause form
  (:func:`repro.prob.dtree.canonical_clauses`), the probabilities of exactly
  the variables it mentions, and either an epsilon budget (plain evaluation)
  or a *cumulative step target* (round-based top-k/threshold refinement).
* :class:`ConfidenceExecutor` — the backend abstraction.
  :class:`SerialExecutor` runs tasks in-process; :class:`ProcessExecutor`
  ships them to a ``concurrent.futures`` process pool.  Both call the very
  same :func:`execute_task`, which is what makes ``workers=0``, ``1`` and
  ``N`` produce bit-identical results.
* :func:`compute_confidences` — the fan-out/merge driver for plain
  evaluation: one task per distinct answer tuple, results merged back into
  :class:`repro.prob.dtree.ApproxResult` form.
* :class:`ParallelRefinementScheduler` — round-based multi-tuple refinement
  for top-k/threshold queries: each round picks a *frontier batch* of gating
  tuples (the generalisation of the serial scheduler's crossing pair),
  refines them concurrently, then re-decides.

Determinism contract
--------------------

Results are identical for every worker count because nothing a worker
computes depends on *where* or *when* it runs:

1. d-tree leaf expansion order is deterministic, so "the bounds after ``T``
   cumulative expansions" is a pure function of the lineage — a warm worker
   pays only the step difference, a cold worker rebuilds and pays the full
   count, and both report the same bracket (:meth:`DTree.refine_to_target`).
2. Epsilon-budget tasks always compile a fresh, isolated tree (own memo), so
   the stopping bracket cannot depend on which other tuples a process
   happened to evaluate earlier.
3. The Karp–Luby fallback seed is derived per tuple from the engine seed and
   the tuple's canonical lineage (:func:`derive_task_seed`), not drawn from a
   shared generator, so the estimate is independent of scheduling order.
4. The frontier size and per-round step grants are fixed by the algorithm
   (never by the worker count), so the refinement schedule — and therefore
   every reported bound — is identical under any parallelism.

Worker failures never hang the driver: a task that raises inside a worker
comes back as a structured payload and a worker process that dies outright
surfaces as :class:`repro.errors.ParallelExecutionError` (the broken pool is
discarded; the next call starts a fresh one).

See ``docs/parallelism.md`` for the user-facing guide.
"""

from __future__ import annotations

import hashlib
import itertools
import random
import traceback
from dataclasses import dataclass
from heapq import nlargest
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    ApproximationBudgetError,
    InjectedFault,
    ParallelExecutionError,
    PlanningError,
    ProbabilityError,
)
from repro.faults import fault_point
from repro.prob.dtree import (
    DEFAULT_MAX_STEPS,
    ApproxResult,
    CanonicalClauses,
    DTree,
    canonical_clauses,
    dnf_from_canonical,
    karp_luby_probability,
    refine_to_budget,
)
from repro.prob.formulas import DNF
from repro.prob.lineage import dtrees_from_dnfs
from repro.prob.sharedag import (
    DEFAULT_MAX_NODES,
    SharedDTree,
    SharedDTreeCache,
    SharedLineageStore,
)
from repro.sprout.topk import DEFAULT_CHUNK, TupleCandidate, run_decision

__all__ = [
    "ConfidenceTask",
    "TaskOutcome",
    "ConfidenceExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "ParallelCandidate",
    "ParallelOutcome",
    "ParallelRefinementScheduler",
    "RefinementLanePool",
    "SupervisedExecutor",
    "SupervisedLanePool",
    "SharedRunTask",
    "SharedRunOutcome",
    "compute_confidences",
    "confidence_tasks",
    "derive_task_seed",
    "execute_shared_run",
    "finish_exact",
    "partition_tasks",
    "run_shared_scheduled",
]

DataTuple = Tuple[object, ...]

#: Upper bound on gating tuples refined concurrently per scheduling round.
#: Fixed by the algorithm — *not* scaled with the worker count — so that the
#: refinement schedule, and with it every reported bound, is identical under
#: any parallelism.  Values beyond the low tens overshoot the decision.
DEFAULT_FRONTIER = 8

#: Tasks are grouped into ``workers * OVERPARTITION`` contiguous partitions so
#: stragglers (tuples with heavy lineage) can be balanced across the pool
#: while per-task IPC overhead stays amortised.
OVERPARTITION = 4


class RefinementLanePool:
    """N data-parallel lanes for the compute phase of shared refinement rounds.

    The lane half of the multi-lane refinement machinery
    (:meth:`repro.prob.sharedag.SharedLineageStore.refine_round`): a round's
    *plan* — which leaves to expand, in which commit order — is fixed under
    the store lock before any lane runs, and only the pure per-leaf cofactor
    computation is fanned out here.  Each lane owns a disjoint strided slice
    of the planned leaves (lane ``i`` computes plan entries ``i``, ``i+N``,
    ``i+2N``, ...), results are reassembled into plan order, and the serial
    commit phase consumes them exactly as the inline (``lanes=0``) schedule
    would have produced them — which is why lane count never shows up in
    decided sets, bounds, or step counts.

    Lanes are threads (`concurrent.futures.ThreadPoolExecutor`): the compute
    phase never touches the node table, so there is nothing to lock, and the
    DNF cofactor work releases no state a process pool would need shipped.
    The pool is reusable across rounds and decisions; :meth:`close` shuts the
    threads down (the engine does this from ``SproutEngine.close()``).
    """

    def __init__(self, lanes: int):
        if lanes < 1:
            raise PlanningError(f"refinement lanes must be positive, got {lanes}")
        from concurrent.futures import ThreadPoolExecutor

        self.lanes = lanes
        self._executor = ThreadPoolExecutor(
            max_workers=lanes, thread_name_prefix="repro-refine-lane"
        )

    def map(self, fn, items: Sequence) -> List:
        """Apply ``fn`` over ``items``, preserving order; lanes own strided slices."""
        items = list(items)
        if len(items) <= 1:
            # A single planned expansion (or none) has no parallelism to
            # exploit; skip the executor round trip.
            return [fn(item) for item in items]
        lanes = min(self.lanes, len(items))

        def lane_worker(offset: int) -> List:
            return [fn(item) for item in items[offset::lanes]]

        out: List = [None] * len(items)
        for offset, results in enumerate(self._executor.map(lane_worker, range(lanes))):
            for position, value in enumerate(results):
                out[offset + lanes * position] = value
        return out

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "RefinementLanePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SupervisedLanePool:
    """A :class:`RefinementLanePool` under supervision: respawn, then degrade.

    The engine's lane pool is long-lived — threads can die (an injected
    fault in the chaos battery; interpreter shutdown races in production) and
    a dead executor would otherwise raise out of every subsequent decision.
    Supervision exploits the PR 9 contract: the compute phase a pool runs is
    *pure* (cofactors only, no table mutation) and the round plan is frozen
    before any lane runs, so a failed ``map`` can simply be retried — on a
    fresh pool after a respawn, or inline on the calling thread after the
    respawn budget is spent — and the results are bit-identical either way.

    ``respawns`` counts pools replaced; ``fallbacks`` counts rounds computed
    inline because the pool was declared broken.  Both surface through
    ``SproutEngine.cache_stats()`` and the service's ``/stats``.
    """

    def __init__(self, lanes: int, max_respawns: int = 2):
        self.lanes = lanes
        self.max_respawns = max_respawns
        self._pool: Optional[RefinementLanePool] = RefinementLanePool(lanes)
        self._broken = False
        self.respawns = 0
        self.fallbacks = 0

    def map(self, fn, items: Sequence) -> List:
        if self._broken or self._pool is None:
            self.fallbacks += 1
            return [fn(item) for item in items]
        while True:
            try:
                fault_point("lane_pool.submit")
                return self._pool.map(fn, items)
            except Exception:
                self._discard_pool()
                if self.respawns >= self.max_respawns:
                    # Repeatedly broken: degrade to inline (lanes=0) compute
                    # for the rest of this pool's life.  Same results, by
                    # contract; only wall-clock changes.
                    self._broken = True
                    self.fallbacks += 1
                    return [fn(item) for item in items]
                self.respawns += 1
                self._pool = RefinementLanePool(self.lanes)

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.close()
            except Exception:  # pragma: no cover - defensive teardown
                pass

    def close(self) -> None:
        self._discard_pool()

    def __enter__(self) -> "SupervisedLanePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def derive_task_seed(
    base_seed: Optional[int], clauses: CanonicalClauses
) -> Optional[int]:
    """A per-tuple Monte Carlo seed, stable across processes and worker counts.

    Hashes the engine-level ``base_seed`` together with the tuple's canonical
    lineage, so every tuple draws from its own reproducible stream no matter
    which worker (or how many workers) evaluate it.  ``None`` stays ``None``
    — the engine's "fresh entropy" mode — in which case run-to-run
    reproducibility is forfeited by request.
    """
    if base_seed is None:
        return None
    digest = hashlib.sha256(str(int(base_seed)).encode("ascii"))
    for clause in clauses:
        digest.update(b"|")
        digest.update(",".join(map(str, clause)).encode("ascii"))
    return int.from_bytes(digest.digest()[:8], "big")


# ---------------------------------------------------------------------------
# work units
# ---------------------------------------------------------------------------


class ConfidenceTask:
    """One picklable unit of confidence work: a single tuple's lineage.

    Exactly one of two modes applies:

    * **budget mode** (``target_steps is None``) — compile a fresh, isolated
      d-tree and refine until the ``epsilon`` budget is met (``epsilon=0``
      compiles to exactness), capped at ``max_steps`` expansions.  On cap
      exhaustion the Karp–Luby estimator (``monte_carlo_samples`` draws
      seeded with ``seed``) supplies the point estimate, or — when sampling
      is disabled — a structured budget payload is returned for the driver
      to re-raise.
    * **target mode** (``target_steps`` set) — refine the tuple's d-tree to
      a *cumulative* expansion count.  Workers cache trees per ``run_id`` so
      successive rounds of the same scheduler run resume instead of
      rebuilding; the reported bracket is warmth-independent (see the module
      determinism contract).

    ``probabilities`` must cover exactly the variables in ``clauses`` (keep
    the pickled payload proportional to the lineage, not the database).
    A ``__slots__`` class rather than a dataclass: schedulers build one per
    candidate per round, so the per-instance dict is measurable overhead.
    """

    __slots__ = (
        "key",
        "clauses",
        "probabilities",
        "epsilon",
        "relative",
        "max_steps",
        "monte_carlo_samples",
        "seed",
        "target_steps",
        "run_id",
    )

    def __init__(
        self,
        key: int,
        clauses: CanonicalClauses,
        probabilities: Dict[int, float],
        epsilon: float = 0.0,
        relative: bool = False,
        max_steps: Optional[int] = DEFAULT_MAX_STEPS,
        monte_carlo_samples: Optional[int] = None,
        seed: Optional[int] = None,
        target_steps: Optional[int] = None,
        run_id: Optional[int] = None,
    ):
        self.key = key
        self.clauses = clauses
        self.probabilities = probabilities
        self.epsilon = epsilon
        self.relative = relative
        self.max_steps = max_steps
        self.monte_carlo_samples = monte_carlo_samples
        self.seed = seed
        self.target_steps = target_steps
        self.run_id = run_id


class TaskOutcome:
    """What came back for one :class:`ConfidenceTask`.

    ``kind`` is ``"ok"`` (bounds/probability valid), ``"budget"`` (the step
    cap was exhausted without meeting the epsilon budget and no Monte Carlo
    fallback was allowed; the bracket is still sound), or ``"error"`` (the
    task raised inside the worker; ``error`` carries the remote traceback).
    ``steps`` is the tree's cumulative expansion count after the task —
    placement-independent, and what the round-based scheduler meters budgets
    against (as before/after deltas).  ``performed`` is the expansion count
    this task physically executed: for budget-mode tasks (always fresh trees)
    it is deterministic and reported as the result's step cost, but in
    target mode it depends on whether the executing worker held a warm tree,
    so it is *not* used for any decision.
    """

    __slots__ = (
        "key",
        "kind",
        "lower",
        "upper",
        "probability",
        "steps",
        "performed",
        "exact",
        "error",
    )

    def __init__(
        self,
        key: int,
        kind: str = "ok",
        lower: float = 0.0,
        upper: float = 1.0,
        probability: float = 0.0,
        steps: int = 0,
        performed: int = 0,
        exact: bool = False,
        error: Optional[str] = None,
    ):
        self.key = key
        self.kind = kind
        self.lower = lower
        self.upper = upper
        self.probability = probability
        self.steps = steps
        self.performed = performed
        self.exact = exact
        self.error = error


class SharedRunTask:
    """A whole top-k/threshold refinement run over a shipped store segment.

    Shared-lineage refinement is inherently sequential — every grant targets
    the *globally* most valuable node across all gating tuples — so instead
    of fanning per-tuple trees across the pool, the driver compiles the
    run's lineage into one columnar store, exports it as a segment
    (:meth:`repro.prob.sharedag.SharedLineageStore.export_segment`), and
    ships the whole decision to a single worker.  ``views`` holds one root
    nid per distinct lineage DNF (serial view aliasing: equal clause sets
    share one frontier) and ``candidates`` maps each answer tuple to its
    view index, in the exact order the serial route builds them — which is
    what makes the worker's decision bit-identical to ``workers=0``.
    """

    __slots__ = (
        "key",
        "segment",
        "views",
        "candidates",
        "k",
        "tau",
        "confidence",
        "max_steps",
        "default_cap",
        "refine_lanes",
    )

    def __init__(
        self,
        segment: dict,
        views: Sequence[int],
        candidates: Sequence[Tuple[DataTuple, int]],
        k: Optional[int],
        tau: Optional[float],
        confidence: str,
        max_steps: Optional[int],
        default_cap: Optional[int],
        key: int = 0,
        refine_lanes: int = 0,
    ):
        self.key = key
        self.segment = segment
        self.views = list(views)
        self.candidates = list(candidates)
        self.k = k
        self.tau = tau
        self.confidence = confidence
        self.max_steps = max_steps
        self.default_cap = default_cap
        self.refine_lanes = refine_lanes


class SharedRunOutcome:
    """What came back for one :class:`SharedRunTask`.

    ``kind`` is ``"ok"``, ``"budget"`` (exact-mode finishing exhausted the
    engine-default per-tuple cap; the driver re-raises
    :class:`repro.errors.ApproximationBudgetError` with the shipped
    bracket), or ``"error"`` (via the generic partition wrapper).
    ``bounds`` carries ``(lower, upper, exact)`` per candidate in task
    order; ``selected`` indexes into that order, most probable first.
    """

    __slots__ = (
        "key",
        "kind",
        "selected",
        "bounds",
        "decided",
        "steps",
        "finishing_steps",
        "budget_lower",
        "budget_upper",
        "budget_steps",
        "error",
    )

    def __init__(
        self,
        key: int,
        kind: str = "ok",
        selected: Optional[List[int]] = None,
        bounds: Optional[List[Tuple[float, float, bool]]] = None,
        decided: bool = False,
        steps: int = 0,
        finishing_steps: int = 0,
        budget_lower: float = 0.0,
        budget_upper: float = 1.0,
        budget_steps: int = 0,
        error: Optional[str] = None,
    ):
        self.key = key
        self.kind = kind
        self.selected = selected if selected is not None else []
        self.bounds = bounds if bounds is not None else []
        self.decided = decided
        self.steps = steps
        self.finishing_steps = finishing_steps
        self.budget_lower = budget_lower
        self.budget_upper = budget_upper
        self.budget_steps = budget_steps
        self.error = error


# ---------------------------------------------------------------------------
# worker-side execution (shared verbatim by the serial and process backends)
# ---------------------------------------------------------------------------

#: Per-process d-tree cache for *target-mode* tasks: one scheduler run's
#: rounds keep revisiting the same candidates, and a warm tree pays only the
#: step difference.  Keyed by the task key (candidate identity — two
#: candidates that happen to share identical lineage must NOT alias one tree,
#: or a warm worker would hand one of them bounds refined past its granted
#: target); cleared whenever a task from a newer run arrives, so results
#: never depend on earlier runs' warmth.
_TREE_CACHE: Dict[int, DTree] = {}
_TREE_CACHE_RUN: Optional[int] = None
_TREE_CACHE_LIMIT = 4096


def _cached_tree(task: ConfidenceTask) -> DTree:
    global _TREE_CACHE_RUN
    if task.run_id != _TREE_CACHE_RUN:
        _TREE_CACHE.clear()
        _TREE_CACHE_RUN = task.run_id
    tree = _TREE_CACHE.get(task.key)
    if tree is None:
        tree = DTree(dnf_from_canonical(task.clauses), task.probabilities)
        _TREE_CACHE[task.key] = tree
        while len(_TREE_CACHE) > _TREE_CACHE_LIMIT:
            _TREE_CACHE.pop(next(iter(_TREE_CACHE)))
    return tree


def execute_shared_run(task: SharedRunTask) -> SharedRunOutcome:
    """Run one whole shared-lineage decision (in whichever process this is).

    Rebuilds the store from the shipped segment, re-creates one view per
    root nid (:meth:`repro.prob.sharedag.SharedDTree.from_root` — the
    frontier is a pure function of the table state, so it matches what the
    driver's in-process views held), and runs the very same
    :func:`repro.sprout.topk.run_decision` routine the serial engine route
    runs.  Same code, same store state, same candidate order — hence
    bit-identical decided sets, confidences, and step counts.
    """
    store = SharedLineageStore.from_segment(task.segment)
    views = [SharedDTree.from_root(store, root) for root in task.views]
    candidates = [
        TupleCandidate(data, tree=views[index]) for data, index in task.candidates
    ]
    # Lanes nest inside workers: the shipped decision may itself fan its
    # rounds' cofactor computation across a short-lived lane pool.  The
    # round schedule is planned before any lane runs, so the worker stays
    # bit-identical to the driver whatever ``refine_lanes`` says.
    lane_pool = (
        RefinementLanePool(task.refine_lanes) if task.refine_lanes > 0 else None
    )
    try:
        outcome, finishing_steps = run_decision(
            candidates,
            task.k,
            task.tau,
            task.confidence,
            task.max_steps,
            task.default_cap,
            store=store,
            lane_pool=lane_pool,
        )
    except ApproximationBudgetError as error:
        return SharedRunOutcome(
            key=task.key,
            kind="budget",
            budget_lower=error.lower,
            budget_upper=error.upper,
            budget_steps=error.steps,
        )
    finally:
        if lane_pool is not None:
            lane_pool.close()
    index_of = {id(candidate): index for index, candidate in enumerate(candidates)}
    return SharedRunOutcome(
        key=task.key,
        selected=[index_of[id(candidate)] for candidate in outcome.selected],
        bounds=[(c.lower, c.upper, c.exact) for c in candidates],
        decided=outcome.decided,
        steps=outcome.steps,
        finishing_steps=finishing_steps,
    )


def execute_task(task: ConfidenceTask) -> "TaskOutcome":
    """Run one task to completion (in whichever process this is).

    :class:`SharedRunTask` work units dispatch to
    :func:`execute_shared_run` (returning a :class:`SharedRunOutcome`);
    everything below handles the per-tuple :class:`ConfidenceTask` modes.
    """
    if isinstance(task, SharedRunTask):
        return execute_shared_run(task)
    if task.target_steps is not None:
        tree = _cached_tree(task)
        performed = tree.refine_to_target(task.target_steps)
        lower, upper = tree.bounds()
        return TaskOutcome(
            key=task.key,
            lower=lower,
            upper=upper,
            probability=0.5 * (lower + upper),
            steps=tree.steps,
            performed=performed,
            exact=tree.is_exact or upper == lower,
        )
    # Budget mode: a fresh, isolated tree per task — the stopping bracket must
    # not depend on which other tuples this process evaluated earlier.
    dnf = dnf_from_canonical(task.clauses)
    tree = DTree(dnf, task.probabilities)
    try:
        result = refine_to_budget(
            tree,
            epsilon=task.epsilon,
            relative=task.relative,
            max_steps=task.max_steps,
        )
    except ApproximationBudgetError as error:
        if task.monte_carlo_samples is None:
            return TaskOutcome(
                key=task.key,
                kind="budget",
                lower=error.lower,
                upper=error.upper,
                probability=0.5 * (error.lower + error.upper),
                steps=tree.steps,
                performed=error.steps,
            )
        estimator = karp_luby_probability(
            dnf,
            task.probabilities,
            samples=task.monte_carlo_samples,
            rng=random.Random(task.seed) if task.seed is not None else random.Random(),
        )
        return TaskOutcome(
            key=task.key,
            lower=error.lower,
            upper=error.upper,
            probability=min(max(estimator.estimate, error.lower), error.upper),
            steps=tree.steps,
            performed=error.steps,
        )
    return TaskOutcome(
        key=task.key,
        lower=result.lower,
        upper=result.upper,
        probability=result.probability,
        steps=tree.steps,
        performed=result.steps,
        exact=result.exact,
    )


def _execute_partition(tasks: Sequence[ConfidenceTask]) -> List[TaskOutcome]:
    """Worker entry point: run a partition, converting failures to payloads."""
    outcomes: List[TaskOutcome] = []
    for task in tasks:
        try:
            outcomes.append(execute_task(task))
        except Exception:
            outcomes.append(
                TaskOutcome(key=task.key, kind="error", error=traceback.format_exc())
            )
    return outcomes


def partition_tasks(
    tasks: Sequence[ConfidenceTask], partitions: int
) -> List[List[ConfidenceTask]]:
    """Split ``tasks`` into at most ``partitions`` contiguous, balanced runs.

    Partitioning affects only scheduling: every task is computed in
    isolation, so the merged results are independent of the partition count.
    """
    partitions = max(1, min(partitions, len(tasks)))
    size, extra = divmod(len(tasks), partitions)
    result: List[List[ConfidenceTask]] = []
    start = 0
    for index in range(partitions):
        end = start + size + (1 if index < extra else 0)
        result.append(list(tasks[start:end]))
        start = end
    return result


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


class ConfidenceExecutor:
    """Backend abstraction: run confidence tasks, return outcomes in order.

    Both backends run the same :func:`execute_task`, so swapping them never
    changes results — only where the CPU time is spent.  Executors are
    reusable across calls and must be :meth:`close`\\ d (or used as context
    managers) when process-backed.
    """

    #: Worker processes backing this executor (0 = in-process).
    workers: int = 0

    @staticmethod
    def create(workers: int) -> "ConfidenceExecutor":
        """The backend for ``workers`` processes: serial at 0, a pool above."""
        if workers < 0:
            raise PlanningError(f"workers must be non-negative, got {workers}")
        if workers == 0:
            return SerialExecutor()
        return ProcessExecutor(workers)

    def run(self, tasks: Sequence[ConfidenceTask]) -> List[TaskOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any backing processes (idempotent)."""

    def __enter__(self) -> "ConfidenceExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ConfidenceExecutor):
    """Runs every task in the calling process (the ``workers=0`` backend)."""

    def run(self, tasks: Sequence[ConfidenceTask]) -> List[TaskOutcome]:
        return _execute_partition(list(tasks))


class ProcessExecutor(ConfidenceExecutor):
    """Runs tasks on a ``concurrent.futures`` process pool.

    The pool is created lazily on first use (``fork`` start method where the
    platform offers it, the platform default otherwise) and reused across
    calls, so round-based schedulers keep their workers — and the workers
    their warm d-trees — for the whole run.  A worker that dies mid-task
    surfaces promptly as :class:`repro.errors.ParallelExecutionError`; the
    broken pool is discarded so the next call starts fresh.
    """

    def __init__(self, workers: int, overpartition: int = OVERPARTITION):
        if workers < 1:
            raise PlanningError(f"a process executor needs >= 1 worker, got {workers}")
        self.workers = workers
        self.overpartition = max(1, overpartition)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - platform without fork
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(max_workers=self.workers, mp_context=context)
        return self._pool

    def run(self, tasks: Sequence[ConfidenceTask]) -> List[TaskOutcome]:
        from concurrent.futures.process import BrokenProcessPool

        tasks = list(tasks)
        if not tasks:
            return []
        partitions = partition_tasks(tasks, self.workers * self.overpartition)
        pool = self._ensure_pool()
        try:
            batches = list(pool.map(_execute_partition, partitions))
        except BrokenProcessPool as error:
            self.close()
            raise ParallelExecutionError(
                f"a confidence worker process died while computing "
                f"{len(tasks)} task(s); the pool has been discarded",
                worker_error=repr(error),
            ) from error
        return [outcome for batch in batches for outcome in batch]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class SupervisedExecutor(ConfidenceExecutor):
    """A :class:`ProcessExecutor` under supervision: respawn, then go serial.

    :meth:`ProcessExecutor.run` raises :class:`ParallelExecutionError` only
    when the *pool itself* died (``BrokenProcessPool`` — e.g. a worker was
    OOM-killed); a task that merely failed inside a healthy worker surfaces
    later, from the driver, and is never retried here.  That split makes the
    retry safe: the same task list re-run on a fresh pool — or on the serial
    executor once the respawn budget is spent — produces bit-identical
    outcomes, because both backends run the same :func:`execute_task` and
    per-task Monte Carlo seeds are derived from the lineage, not the pool.

    ``respawns`` counts pool replacements (the inner pool is rebuilt lazily
    on the next run after a ``close()``); ``fallbacks`` counts batches that
    ran on the serial backend because the pool was declared broken.
    """

    def __init__(self, workers: int, max_respawns: int = 2):
        if workers < 1:
            raise PlanningError(f"a supervised executor needs >= 1 worker, got {workers}")
        self.workers = workers
        self.max_respawns = max_respawns
        self._inner = ProcessExecutor(workers)
        self._serial = SerialExecutor()
        self._broken = False
        self.respawns = 0
        self.fallbacks = 0

    def run(self, tasks: Sequence[ConfidenceTask]) -> List[TaskOutcome]:
        tasks = list(tasks)
        if self._broken:
            self.fallbacks += 1
            return self._serial.run(tasks)
        while True:
            try:
                fault_point("worker_pool.run")
                return self._inner.run(tasks)
            except (ParallelExecutionError, InjectedFault):
                # Pool death (or its scripted stand-in).  Discard the pool —
                # ProcessExecutor rebuilds lazily — and retry on a fresh one
                # until the respawn budget runs out, then degrade to serial.
                self._inner.close()
                if self.respawns >= self.max_respawns:
                    self._broken = True
                    self.fallbacks += 1
                    return self._serial.run(tasks)
                self.respawns += 1

    def close(self) -> None:
        self._inner.close()


# ---------------------------------------------------------------------------
# fan-out/merge driver for plain evaluation
# ---------------------------------------------------------------------------


def _restricted_probabilities(
    clauses: CanonicalClauses, probabilities: Mapping[int, float]
) -> Dict[int, float]:
    try:
        return {
            variable: probabilities[variable]
            for clause in clauses
            for variable in clause
        }
    except KeyError as missing:
        raise ProbabilityError(
            f"no probability for variable {missing.args[0]}"
        ) from None


def confidence_tasks(
    lineage: Mapping[DataTuple, DNF],
    probabilities: Mapping[int, float],
    *,
    epsilon: float = 0.0,
    relative: bool = False,
    max_steps: Optional[int] = DEFAULT_MAX_STEPS,
    monte_carlo_samples: Optional[int] = None,
    base_seed: Optional[int] = None,
) -> Tuple[List[DataTuple], List[ConfidenceTask]]:
    """Budget-mode tasks for every tuple of an extracted lineage map.

    Tuples are keyed in ``repr`` order — the same value-based order every
    evaluation path sorts by — so task keys are stable across the row and
    batch pipelines.  Returns ``(ordered data tuples, tasks)``.
    """
    ordered = sorted(lineage, key=repr)
    tasks: List[ConfidenceTask] = []
    for key, data in enumerate(ordered):
        clauses = canonical_clauses(lineage[data])
        tasks.append(
            ConfidenceTask(
                key=key,
                clauses=clauses,
                probabilities=_restricted_probabilities(clauses, probabilities),
                epsilon=epsilon,
                relative=relative,
                max_steps=max_steps,
                monte_carlo_samples=monte_carlo_samples,
                seed=derive_task_seed(base_seed, clauses),
            )
        )
    return ordered, tasks


def _raise_for_failure(outcome: TaskOutcome, data: DataTuple) -> None:
    if outcome.kind == "error":
        raise ParallelExecutionError(
            f"confidence task for tuple {data!r} failed in its worker",
            task_key=data,
            worker_error=outcome.error,
        )


def compute_confidences(
    lineage: Mapping[DataTuple, DNF],
    probabilities: Mapping[int, float],
    executor: ConfidenceExecutor,
    *,
    epsilon: float = 0.0,
    relative: bool = False,
    max_steps: Optional[int] = DEFAULT_MAX_STEPS,
    monte_carlo_samples: Optional[int] = None,
    base_seed: Optional[int] = None,
) -> Dict[DataTuple, ApproxResult]:
    """Per-tuple confidence of an extracted lineage map, fanned out and merged.

    The parallel counterpart of
    :func:`repro.prob.lineage.approximate_confidences_from_lineage`: one
    budget-mode task per distinct tuple, executed by ``executor``, merged
    back into :class:`ApproxResult` form in the input tuples' ``repr``
    order.  Budget exhaustion without a Monte Carlo fallback re-raises
    :class:`repro.errors.ApproximationBudgetError` exactly like the serial
    code path; a worker failure raises
    :class:`repro.errors.ParallelExecutionError`.
    """
    ordered, tasks = confidence_tasks(
        lineage,
        probabilities,
        epsilon=epsilon,
        relative=relative,
        max_steps=max_steps,
        monte_carlo_samples=monte_carlo_samples,
        base_seed=base_seed,
    )
    outcomes = executor.run(tasks)
    results: Dict[DataTuple, ApproxResult] = {}
    for data, outcome in zip(ordered, outcomes):
        _raise_for_failure(outcome, data)
        if outcome.kind == "budget":
            raise ApproximationBudgetError(
                lower=outcome.lower,
                upper=outcome.upper,
                epsilon=epsilon,
                relative=relative,
                steps=outcome.performed,
            )
        results[data] = ApproxResult(
            probability=outcome.probability,
            lower=outcome.lower,
            upper=outcome.upper,
            steps=outcome.performed,
            exact=outcome.exact,
        )
    return results


# ---------------------------------------------------------------------------
# round-based top-k / threshold refinement
# ---------------------------------------------------------------------------

_RUN_IDS = itertools.count(1)


class ParallelCandidate:
    """One answer tuple competing for the result set, tracked by bounds only.

    Unlike the serial scheduler's :class:`repro.sprout.topk.TupleCandidate`,
    the live d-tree stays in whichever worker refines it; the driver tracks
    the tuple's current bracket, cumulative step count, and value-based rank
    (its position in ``repr`` order, the tiebreak that makes decisions
    independent of answer-row order).
    """

    __slots__ = ("data", "clauses", "probabilities", "rank", "lower", "upper", "steps", "exact")

    def __init__(
        self,
        data: DataTuple,
        clauses: CanonicalClauses,
        probabilities: Dict[int, float],
        rank: int = 0,
        lower: float = 0.0,
        upper: float = 1.0,
        steps: int = 0,
        exact: bool = False,
    ):
        self.data = data
        self.clauses = clauses
        self.probabilities = probabilities
        self.rank = rank
        self.lower = lower
        self.upper = upper
        self.steps = steps
        self.exact = exact

    @property
    def gap(self) -> float:
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelCandidate({self.data!r}, [{self.lower:.4f}, {self.upper:.4f}], "
            f"steps={self.steps})"
        )


@dataclass
class ParallelOutcome:
    """The decided (or budget-capped) answer set with its evidence.

    Mirrors :class:`repro.sprout.topk.SchedulerOutcome` for the round-based
    parallel scheduler: ``selected`` holds the answer set most probable
    first, ``candidates`` every competitor with its final bracket,
    ``decided`` whether the set is proven, and ``steps`` the total d-tree
    expansions the run spent (across all workers).
    """

    selected: List[ParallelCandidate]
    candidates: List[ParallelCandidate]
    decided: bool
    steps: int = 0
    #: Always ``None`` here: deadlines are honoured on the serial route only
    #: (the one the query service runs); kept for a uniform outcome shape.
    degraded: Optional[str] = None

    def bounds(self) -> Dict[DataTuple, Tuple[float, float]]:
        return {c.data: (c.lower, c.upper) for c in self.candidates}


class ParallelRefinementScheduler:
    """Round-based multi-tuple refinement over a :class:`ConfidenceExecutor`.

    The serial scheduler refines one gating tuple at a time — correct, but
    it serialises the refinement.  This scheduler generalises the rule to a
    *frontier batch*: each round it collects up to ``frontier`` tuples whose
    brackets still gate the decision (for top-k, tuples overlapping the
    contention window between the weakest selected lower bound and the
    strongest excluded upper bound; for threshold, tuples straddling τ),
    grants each a fixed step quantum, refines them concurrently, and
    re-decides.  Grants are issued as cumulative step *targets*, so the
    resulting bounds — and hence the whole schedule — are identical for any
    worker count (see the module determinism contract).

    ``max_steps`` bounds the total expansions across all tuples; on
    exhaustion the best partition so far is returned with
    ``decided=False``, never an exception.
    """

    def __init__(
        self,
        lineage: Mapping[DataTuple, DNF],
        probabilities: Mapping[int, float],
        executor: ConfidenceExecutor,
        *,
        chunk: int = DEFAULT_CHUNK,
        frontier: int = DEFAULT_FRONTIER,
        max_steps: Optional[int] = None,
    ):
        if chunk < 1:
            raise PlanningError(f"chunk must be positive, got {chunk}")
        if frontier < 1:
            raise PlanningError(f"frontier must be positive, got {frontier}")
        if max_steps is not None and max_steps < 0:
            raise PlanningError(f"max_steps must be non-negative, got {max_steps}")
        self.executor = executor
        self.chunk = chunk
        self.frontier = frontier
        self.max_steps = max_steps
        self.steps = 0
        self.run_id = next(_RUN_IDS)
        self.candidates = [
            ParallelCandidate(
                data=data,
                clauses=clauses,
                probabilities=_restricted_probabilities(clauses, probabilities),
                rank=rank,
            )
            for rank, (data, clauses) in enumerate(
                (data, canonical_clauses(lineage[data]))
                for data in sorted(lineage, key=repr)
            )
        ]
        self._initialised = False

    # -- shared plumbing ----------------------------------------------------

    def _refine(
        self, chosen: Sequence[ParallelCandidate], targets: Sequence[int]
    ) -> bool:
        """One concurrent refinement wave; True if any bracket moved."""
        tasks = [
            ConfidenceTask(
                key=candidate.rank,
                clauses=candidate.clauses,
                probabilities=candidate.probabilities,
                target_steps=target,
                run_id=self.run_id,
            )
            for candidate, target in zip(chosen, targets)
        ]
        outcomes = self.executor.run(tasks)
        changed = False
        for candidate, outcome in zip(chosen, outcomes):
            _raise_for_failure(outcome, candidate.data)
            if (outcome.lower, outcome.upper) != (candidate.lower, candidate.upper):
                changed = True
            candidate.lower = outcome.lower
            candidate.upper = outcome.upper
            # Meter the tree's *logical* progression (cumulative count after
            # minus before), not `outcome.performed`: a cold worker that had
            # to rebuild the tree physically re-performs expansions a warm
            # worker would skip, and charging that would make the budget —
            # and with it grants, decidedness, and reported steps — depend on
            # task placement.  `outcome.steps` is placement-independent (the
            # cumulative count is a pure function of lineage and target), so
            # this delta is too; it also matches what the serial scheduler
            # charges, since serial trees are never rebuilt.
            self.steps += max(0, outcome.steps - candidate.steps)
            candidate.steps = outcome.steps
            candidate.exact = outcome.exact
        return changed

    def _initialise(self) -> None:
        """Round zero: collect construction-time bounds (zero-target tasks).

        d-tree construction applies the free decomposition steps, so many
        candidates arrive with tight (or closed) brackets before any
        expansion is granted — same as the serial scheduler's tree building,
        and free with respect to the ``max_steps`` budget.
        """
        if not self._initialised:
            self._initialised = True
            if self.candidates:
                self._refine(self.candidates, [0] * len(self.candidates))

    def _exhausted(self) -> bool:
        return self.max_steps is not None and self.steps >= self.max_steps

    def _grants(
        self, gating: Sequence[ParallelCandidate]
    ) -> Tuple[List[ParallelCandidate], List[int]]:
        """Allocate this round's step quanta (deterministic, budget-capped)."""
        base = max(self.chunk, len(self.candidates) // 64)
        remaining = (
            None if self.max_steps is None else max(0, self.max_steps - self.steps)
        )
        chosen: List[ParallelCandidate] = []
        targets: List[int] = []
        for candidate in gating:
            grant = base if remaining is None else min(base, remaining)
            if grant <= 0:
                break
            if remaining is not None:
                remaining -= grant
            chosen.append(candidate)
            targets.append(candidate.steps + grant)
        return chosen, targets

    def _outcome(
        self, selected: Sequence[ParallelCandidate], decided: bool
    ) -> ParallelOutcome:
        ordered = sorted(selected, key=lambda c: (-c.midpoint, repr(c.data)))
        return ParallelOutcome(
            selected=ordered,
            candidates=list(self.candidates),
            decided=decided,
            steps=self.steps,
        )

    def _round(
        self, selected: Sequence[ParallelCandidate], gating: List[ParallelCandidate]
    ) -> Optional[ParallelOutcome]:
        """Run one refinement wave; an outcome means the loop must stop."""
        gating.sort(key=lambda c: (-c.gap, c.rank))
        gating = gating[: self.frontier]
        if not gating:
            return self._outcome(selected, False)
        chosen, targets = self._grants(gating)
        if not chosen:
            return self._outcome(selected, False)
        before = self.steps
        changed = self._refine(chosen, targets)
        if self.steps == before and not changed:
            # No expansions and no movement: nothing further can decide this.
            return self._outcome(selected, False)
        return None

    # -- top-k --------------------------------------------------------------

    def run_topk(self, k: int) -> ParallelOutcome:
        """Decide the k most probable tuples via frontier-batch refinement."""
        if k < 1:
            raise PlanningError(f"k must be positive, got {k}")
        self._initialise()
        if k >= len(self.candidates):
            return self._outcome(list(self.candidates), True)
        while True:
            selected = nlargest(
                k, self.candidates, key=lambda c: (c.lower, c.upper, -c.rank)
            )
            chosen_ids = {id(c) for c in selected}
            rest = [c for c in self.candidates if id(c) not in chosen_ids]
            weakest = min(selected, key=lambda c: (c.lower, c.rank))
            strongest = max(rest, key=lambda c: (c.upper, -c.rank))
            if weakest.lower >= strongest.upper:
                return self._outcome(selected, True)
            if self._exhausted():
                return self._outcome(selected, False)
            # The contention window is [weakest.lower, strongest.upper]; any
            # non-exact bracket overlapping it can still flip the cut.
            gating = [c for c in selected if not c.exact and c.lower < strongest.upper]
            gating += [c for c in rest if not c.exact and c.upper > weakest.lower]
            outcome = self._round(selected, gating)
            if outcome is not None:
                return outcome

    # -- threshold ----------------------------------------------------------

    def run_threshold(self, tau: float) -> ParallelOutcome:
        """Partition candidates into confidence ``>= tau`` and ``< tau``."""
        if not 0.0 <= tau <= 1.0:
            raise PlanningError(f"tau must be within [0, 1], got {tau}")
        self._initialise()
        while True:
            straddling = [c for c in self.candidates if c.lower < tau <= c.upper]
            selected = [c for c in self.candidates if c.lower >= tau]
            if not straddling:
                return self._outcome(selected, True)
            if self._exhausted():
                return self._outcome(selected, False)
            outcome = self._round(selected, straddling)
            if outcome is not None:
                return outcome


def finish_exact(
    outcome: ParallelOutcome,
    executor: ConfidenceExecutor,
    *,
    per_tuple_cap: Optional[int] = DEFAULT_MAX_STEPS,
    raise_on_budget: bool = True,
) -> int:
    """Refine the selected candidates of a decided run to exact confidences.

    Exact-mode top-k/threshold reports exact values for the tuples it
    returns (and only those).  Each pending candidate gets a fresh-tree
    closure task — fresh rather than warm so the expansion count, and with
    it budget behaviour, is identical for every worker count.  With
    ``raise_on_budget`` a tuple that exhausts ``per_tuple_cap`` raises
    :class:`repro.errors.ApproximationBudgetError` (the engine-default
    budget contract); without it the candidate keeps the tightest sound
    bracket and the caller reports midpoints.  Returns the expansions spent.
    """
    pending = [c for c in outcome.selected if not c.exact]
    if not pending:
        return 0
    tasks = [
        ConfidenceTask(
            key=candidate.rank,
            clauses=candidate.clauses,
            probabilities=candidate.probabilities,
            epsilon=0.0,
            max_steps=per_tuple_cap,
        )
        for candidate in pending
    ]
    outcomes = executor.run(tasks)
    performed = 0
    for candidate, result in zip(pending, outcomes):
        _raise_for_failure(result, candidate.data)
        performed += result.performed
        if result.kind == "budget":
            if raise_on_budget:
                raise ApproximationBudgetError(
                    lower=result.lower,
                    upper=result.upper,
                    epsilon=0.0,
                    relative=False,
                    steps=result.performed,
                )
            # Keep the tightest sound bracket seen from either refinement.
            lower = max(candidate.lower, result.lower)
            upper = min(candidate.upper, result.upper)
            if lower <= upper:
                candidate.lower, candidate.upper = lower, upper
            continue
        candidate.lower = result.lower
        candidate.upper = result.upper
        candidate.exact = result.exact
    return performed


# ---------------------------------------------------------------------------
# shared-lineage runs: the whole decision ships as one segment
# ---------------------------------------------------------------------------


def run_shared_scheduled(
    lineage: Mapping[DataTuple, DNF],
    probabilities: Mapping[int, float],
    executor: ConfidenceExecutor,
    *,
    k: Optional[int],
    tau: Optional[float],
    confidence: str,
    max_steps: Optional[int],
    default_cap: Optional[int],
    max_nodes: Optional[int] = DEFAULT_MAX_NODES,
    vectorize: Optional[bool] = None,
    refine_lanes: int = 0,
) -> Tuple[ParallelOutcome, int]:
    """Drive one shared-lineage top-k/threshold run through an executor.

    The shared-lineage counterpart of
    :class:`ParallelRefinementScheduler` + :func:`finish_exact`: shared
    grants pick the *globally* most valuable node, which couples every
    gating tuple into one sequential decision — so instead of fanning
    per-tuple trees across rounds, the driver compiles the lineage into a
    fresh columnar store (exactly the way the ``workers=0`` route compiles
    into the engine's cache), exports the store segment, and ships the
    entire decision to one worker via :class:`SharedRunTask`.  The worker
    runs the same :func:`repro.sprout.topk.run_decision` code over the same
    store state, so decided sets, confidences, and step counts are
    bit-identical for workers 0/1/N.

    Exact-mode budget exhaustion re-raises
    :class:`repro.errors.ApproximationBudgetError` with the worker's
    bracket (the serial contract); a worker failure raises
    :class:`repro.errors.ParallelExecutionError`.  Returns
    ``(outcome, finishing_steps)`` in the engine scheduler convention.

    ``refine_lanes`` rides the task: the worker builds a short-lived
    :class:`RefinementLanePool` for its rounds' compute phase.  Lanes nest
    inside workers freely — the round schedule is planned before any lane
    runs, so every combination of ``workers`` × ``refine_lanes`` decides
    identically.
    """
    cache = SharedDTreeCache(max_nodes=max_nodes, vectorize=vectorize)
    trees = dtrees_from_dnfs(lineage, probabilities, cache=cache)
    if not trees:
        return ParallelOutcome(selected=[], candidates=[], decided=True, steps=0), 0
    view_slots: Dict[int, int] = {}
    views: List[int] = []
    members: List[Tuple[DataTuple, int]] = []
    for data, view in trees.items():
        slot = view_slots.get(id(view))
        if slot is None:
            slot = len(views)
            view_slots[id(view)] = slot
            views.append(view.root)
        members.append((data, slot))
    task = SharedRunTask(
        segment=cache.store.export_segment(),
        views=views,
        candidates=members,
        k=k,
        tau=tau,
        confidence=confidence,
        max_steps=max_steps,
        default_cap=default_cap,
        refine_lanes=refine_lanes,
    )
    payload = executor.run([task])[0]
    if payload.kind == "error":
        raise ParallelExecutionError(
            "a shared-lineage refinement run failed in its worker",
            worker_error=payload.error,
        )
    if payload.kind == "budget":
        raise ApproximationBudgetError(
            lower=payload.budget_lower,
            upper=payload.budget_upper,
            epsilon=0.0,
            relative=False,
            steps=payload.budget_steps,
        )
    candidates = [
        ParallelCandidate(
            data=data,
            clauses=(),
            probabilities={},
            rank=rank,
            lower=lower,
            upper=upper,
            exact=exact,
        )
        for rank, ((data, _), (lower, upper, exact)) in enumerate(
            zip(members, payload.bounds)
        )
    ]
    outcome = ParallelOutcome(
        selected=[candidates[index] for index in payload.selected],
        candidates=candidates,
        decided=payload.decided,
        steps=payload.steps,
    )
    return outcome, payload.finishing_steps

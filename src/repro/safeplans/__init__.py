"""Safe-plan baseline: Dalvi–Suciu safe plans and a MystiQ-style evaluator.

The comparison system of Section VII: :mod:`repro.safeplans.safe_plan`
builds the unique safe plan of a tractable query (or proves none exists),
and :mod:`repro.safeplans.mystiq` evaluates it the way the MystiQ
middleware would — per-operator aggregation with the numerically fragile
log-sum trick the paper measures against, including its characteristic
:class:`repro.errors.NumericalError` failures.  SPROUT's own plans live in
:mod:`repro.sprout`; this package exists to reproduce the baseline columns
of the paper's figures (see ``docs/benchmarks.md``).
"""

from repro.safeplans.mystiq import MystiqEngine
from repro.safeplans.safe_plan import (
    SafePlanNode,
    build_safe_plan,
    has_safe_plan,
    safe_plan_description,
)

__all__ = [
    "MystiqEngine",
    "SafePlanNode",
    "build_safe_plan",
    "has_safe_plan",
    "safe_plan_description",
]

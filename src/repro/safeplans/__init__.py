"""Safe-plan baseline: Dalvi–Suciu safe plans and a MystiQ-style evaluator."""

from repro.safeplans.mystiq import MystiqEngine
from repro.safeplans.safe_plan import (
    SafePlanNode,
    build_safe_plan,
    has_safe_plan,
    safe_plan_description,
)

__all__ = [
    "MystiqEngine",
    "SafePlanNode",
    "build_safe_plan",
    "has_safe_plan",
    "safe_plan_description",
]

"""A MystiQ-style baseline evaluator (the state of the art compared against).

MystiQ [5] is a middleware: it rewrites a hierarchical query into nested SQL
queries whose GROUP BY levels implement the independent projects of the safe
plan, and ships them to the host database.  Three characteristics matter for
the comparison in Section VII and are reproduced here:

* it works on probabilistic tables *without* variable columns, so only the
  restrictive safe-plan join order is correct — the unselective deep joins of
  queries 10/18/20/21 cannot be avoided;
* every level of the rewritten query materialises a temporary result and
  eliminates duplicates with sort-based grouping (emulating the nested
  ``SELECT DISTINCT ... GROUP BY`` subqueries the middleware generates);
* the probability of a disjunction is computed as
  ``1 - POWER(10000, SUM(LOG(1.001 - p)))``, which fails at runtime on long
  disjunctions — the reason queries 1, 4, 12 and several Boolean variants
  could not be computed by MystiQ (we surface this as
  :class:`repro.errors.NumericalError`).
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Tuple

from repro.errors import NumericalError, UnsafePlanError
from repro.algebra.aggregate import mystiq_log_prob_or, prob_or
from repro.algebra.expressions import TruePredicate
from repro.algebra.joins import HashJoinOp
from repro.algebra.operators import MaterializedOp, Operator, ProjectOp, ScanOp, SelectOp
from repro.prob.pdb import ProbabilisticDatabase
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.fd import chased_query, closure
from repro.query.hierarchy import HierarchyNode, build_hierarchy, is_hierarchical
from repro.sprout.engine import EvaluationResult
from repro.sprout.planner import needed_data_attributes
from repro.storage.external_sort import sort_key_for
from repro.storage.heapfile import HeapFile
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema

__all__ = ["MystiqEngine"]


class MystiqEngine:
    """Evaluate hierarchical queries with MystiQ-style safe plans."""

    def __init__(
        self,
        database: ProbabilisticDatabase,
        use_log_aggregation: bool = True,
        materialize_temporaries: bool = True,
    ):
        self.database = database
        self.use_log_aggregation = use_log_aggregation
        self.materialize_temporaries = materialize_temporaries

    # -- public API ---------------------------------------------------------------

    def evaluate(self, query: ConjunctiveQuery, use_fds: bool = True) -> EvaluationResult:
        """Evaluate ``query`` with the safe plan; raises if none exists.

        :class:`repro.errors.UnsafePlanError` signals a #P-hard query;
        :class:`repro.errors.NumericalError` signals the log-aggregation
        runtime failure reported in the paper.
        """
        uncovered = query.uncovered_selections()
        if uncovered:
            raise UnsafePlanError(
                f"query {query.name!r} has selection conditions spanning several tables"
            )
        fds = (
            self.database.catalog.functional_dependencies(query.table_names())
            if use_fds
            else []
        )
        tree = self._hierarchy(query, fds)
        head = frozenset(closure(query.projection, fds)) & frozenset(query.attributes())

        started = perf_counter()
        relation, rows_processed = self._evaluate_tree(query, tree, head)
        elapsed = perf_counter() - started

        return EvaluationResult(
            query_name=query.name,
            plan_style="mystiq",
            relation=relation,
            signature=None,
            join_order=[table for table in tree.tables()],
            tuples_seconds=elapsed,
            prob_seconds=0.0,
            answer_rows=len(relation),
            rows_processed=rows_processed,
            scans_used=0,
        )

    # -- plan construction -----------------------------------------------------------

    def _hierarchy(self, query: ConjunctiveQuery, fds) -> HierarchyNode:
        # The chased query (atoms extended to their closures, projection
        # widened to the head's closure) keeps the physical join attributes
        # while being hierarchical whenever the query is tractable under the
        # FDs, so the resulting tree is directly executable (MystiQ itself
        # uses FDs to decide safety, Remark IV.2).
        chased = chased_query(query, fds) if fds else query
        if fds:
            head = frozenset(closure(query.projection, fds)) & frozenset(chased.attributes())
            chased = chased.with_projection(sorted(head), name=f"plan({query.name})")
        if is_hierarchical(chased):
            return build_hierarchy(chased)
        if is_hierarchical(query):
            return build_hierarchy(query)
        raise UnsafePlanError(
            f"query {query.name!r} admits no safe plan; MystiQ cannot evaluate it"
        )

    # -- evaluation --------------------------------------------------------------------

    def _evaluate_tree(
        self, query: ConjunctiveQuery, tree: HierarchyNode, head: frozenset
    ) -> Tuple[Relation, int]:
        rows_processed = 0

        def keep_columns(schema: Schema, parent_attributes) -> List[str]:
            wanted = set(parent_attributes) | head
            keep = [a.name for a in schema if a.role is ColumnRole.DATA and a.name in wanted]
            keep += [a.name for a in schema if a.role is ColumnRole.PROB]
            return keep

        def evaluate(node: HierarchyNode, parent_attributes) -> Relation:
            nonlocal rows_processed
            if node.is_leaf:
                table = node.atom.table
                relation = self.database.relation(table)
                plan: Operator = ScanOp(relation, alias=table)
                selection = query.selections_on(table)
                if not isinstance(selection, TruePredicate):
                    plan = SelectOp(plan, selection)
                prob_column = self.database.table(table).prob_column
                keep = needed_data_attributes(query, table) + [prob_column]
                plan = ProjectOp(plan, keep)
                materialised = plan.to_relation(table)
                rows_processed += plan.total_rows_processed()
                projected = materialised.project(
                    keep_columns(materialised.schema, parent_attributes)
                )
                return self._independent_project(projected)

            children = [evaluate(child, node.attributes) for child in node.children]
            plan = MaterializedOp(children[0])
            for child in children[1:]:
                plan = HashJoinOp(plan, MaterializedOp(child))
            joined = plan.to_relation(query.name)
            rows_processed += plan.total_rows_processed()
            joined = self._multiply_probabilities(joined)
            joined = joined.project(keep_columns(joined.schema, parent_attributes))
            return self._independent_project(joined)

        result = evaluate(tree, ())
        # Final level: project away the functionally determined companions of
        # the head and group by the true head attributes.
        prob_columns = [a.name for a in result.schema if a.role is ColumnRole.PROB]
        keep = [a for a in query.projection if a in result.schema] + prob_columns
        if keep != list(result.schema.names):
            result = result.project(keep)
        result = self._independent_project(result)
        return self._finalize(result, query), rows_processed

    # -- operators -----------------------------------------------------------------------

    def _aggregate_function(self):
        return mystiq_log_prob_or if self.use_log_aggregation else prob_or

    def _independent_project(self, relation: Relation) -> Relation:
        """``π^ind``: duplicate elimination with probability aggregation.

        Emulates the middleware's nested SQL: sort-based grouping over a
        materialised temporary (written to and read back from a heap file when
        ``materialize_temporaries`` is on).
        """
        schema = relation.schema
        prob_columns = [a.name for a in schema if a.role is ColumnRole.PROB]
        if len(prob_columns) != 1:
            raise UnsafePlanError(
                f"independent project expects exactly one probability column, got {prob_columns}"
            )
        prob_index = schema.index_of(prob_columns[0])
        group_indices = [i for i in range(len(schema)) if i != prob_index]

        if self.materialize_temporaries:
            heap = HeapFile(schema)
            heap.write_rows(relation.rows)
            rows = list(heap.scan())
            heap.close()
        else:
            rows = list(relation.rows)

        rows.sort(key=lambda row: tuple(sort_key_for(row[i]) for i in group_indices))
        aggregate = self._aggregate_function()
        result = Relation(relation.name, schema)
        current_key: Optional[Tuple] = None
        probabilities: List[float] = []
        current_row: Optional[Tuple] = None

        def flush() -> None:
            if current_row is None:
                return
            try:
                combined = aggregate(probabilities)
            except NumericalError:
                raise
            values = list(current_row)
            values[prob_index] = combined
            result.append(tuple(values))

        for row in rows:
            key = tuple(row[i] for i in group_indices)
            if key != current_key:
                flush()
                current_key = key
                current_row = row
                probabilities = []
            probabilities.append(row[prob_index])
        flush()
        return result

    def _multiply_probabilities(self, relation: Relation) -> Relation:
        """A probabilistic join multiplies the probabilities of its inputs."""
        schema = relation.schema
        prob_indices = [i for i, a in enumerate(schema) if a.role is ColumnRole.PROB]
        if len(prob_indices) <= 1:
            return relation
        keep_index = prob_indices[0]
        drop_indices = set(prob_indices[1:])
        attributes = [a for i, a in enumerate(schema) if i not in drop_indices]
        new_schema = Schema(attributes)
        result = Relation(relation.name, new_schema)
        for row in relation:
            probability = 1.0
            for index in prob_indices:
                probability *= row[index]
            values = [v for i, v in enumerate(row) if i not in drop_indices]
            values[new_schema.index_of(schema.names[keep_index])] = probability
            result.append(tuple(values))
        return result

    def _finalize(self, relation: Relation, query: ConjunctiveQuery) -> Relation:
        prob_columns = [a.name for a in relation.schema if a.role is ColumnRole.PROB]
        prob_index = relation.schema.index_of(prob_columns[0])
        data_names = [a.name for a in relation.schema if a.role is ColumnRole.DATA]
        schema = Schema(
            [relation.schema[name] for name in data_names] + [Attribute("conf", "float")]
        )
        result = Relation(query.name, schema)
        data_indices = relation.schema.indices_of(data_names)
        for row in relation:
            result.append(tuple(row[i] for i in data_indices) + (row[prob_index],))
        return result

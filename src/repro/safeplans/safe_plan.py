"""Safe plans in the style of Dalvi and Suciu (the MystiQ baseline's planner).

A *safe plan* computes answer probabilities with standard relational operators
extended to manipulate probabilities: joins multiply probabilities and
independent projects (``π^ind``) eliminate duplicates while aggregating their
probabilities, which is only correct when all duplicates are pairwise
independent.  That independence is guaranteed by restricting the join order to
follow the hierarchical structure of the query (Fig. 2) — exactly the
restriction SPROUT's variable-column data model removes.

This module builds the safe-plan structure (for explain output, plan-shape
tests, and the MystiQ evaluation in :mod:`repro.safeplans.mystiq`) and decides
safety: a query admits a safe plan if and only if it is hierarchical, possibly
after exploiting functional dependencies (Remark IV.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import UnsafePlanError
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.fd import fd_reduct
from repro.query.hierarchy import HierarchyNode, build_hierarchy, is_hierarchical
from repro.storage.catalog import FunctionalDependency

__all__ = ["SafePlanNode", "has_safe_plan", "build_safe_plan", "safe_plan_description"]


@dataclass(frozen=True)
class SafePlanNode:
    """A node of a safe plan: a base table or an independent-project over a join."""

    kind: str  # "table" or "project-join"
    table: Optional[str] = None
    project_attributes: Tuple[str, ...] = ()
    join_attributes: Tuple[str, ...] = ()
    children: Tuple["SafePlanNode", ...] = ()

    def tables(self) -> List[str]:
        if self.kind == "table":
            return [self.table]
        result: List[str] = []
        for child in self.children:
            result.extend(child.tables())
        return result

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.kind == "table":
            return f"{pad}{self.table}"
        head = ", ".join(self.project_attributes) or "∅"
        join = ", ".join(self.join_attributes) or "×"
        lines = [f"{pad}π^ind[{head}] ⋈[{join}]"]
        lines.extend(child.pretty(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()


def has_safe_plan(
    query: ConjunctiveQuery, fds: Sequence[FunctionalDependency] = ()
) -> bool:
    """Whether the query admits a safe plan (hierarchical, possibly under FDs)."""
    if is_hierarchical(query):
        return True
    return bool(fds) and is_hierarchical(fd_reduct(query, fds))


def build_safe_plan(
    query: ConjunctiveQuery, fds: Sequence[FunctionalDependency] = ()
) -> SafePlanNode:
    """Build the safe plan of ``query`` following its hierarchy tree.

    Raises :class:`UnsafePlanError` if the query admits none — the behaviour a
    MystiQ-style system exhibits for the #P-hard queries.
    """
    if is_hierarchical(query):
        tree = build_hierarchy(query)
        head = set(query.projection)
    elif fds and is_hierarchical(fd_reduct(query, fds)):
        tree = build_hierarchy(fd_reduct(query, fds))
        head = set(query.projection)
    else:
        raise UnsafePlanError(
            f"query {query.name!r} is not hierarchical (even under the given FDs); "
            "no safe plan exists"
        )

    def convert(node: HierarchyNode, parent_attributes) -> SafePlanNode:
        if node.is_leaf:
            return SafePlanNode(kind="table", table=node.atom.table)
        children = tuple(convert(child, node.attributes) for child in node.children)
        project = tuple(sorted((set(parent_attributes) | head) & _physical(node, query)))
        return SafePlanNode(
            kind="project-join",
            project_attributes=project,
            join_attributes=tuple(sorted(node.attributes)),
            children=children,
        )

    return convert(tree, ())


def _physical(node: HierarchyNode, query: ConjunctiveQuery) -> set:
    """Attributes physically available below ``node`` in the original query."""
    available = set()
    for table in node.tables():
        available |= set(query.attributes_of(table))
    return available


def safe_plan_description(
    query: ConjunctiveQuery, fds: Sequence[FunctionalDependency] = ()
) -> str:
    """Human-readable rendering of the safe plan (Fig. 2 style)."""
    return build_safe_plan(query, fds).pretty()

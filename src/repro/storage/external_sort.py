"""External merge sort over row iterators.

The confidence operator requires its input sorted by the data columns followed
by the variable columns in 1scanTree preorder (Section V.C).  At TPC-H scale
the answer relation does not necessarily fit in memory, so SPROUT relies on the
host engine's external sort.  This module provides a k-way external merge sort
that spills sorted runs to temporary files once an in-memory budget is
exceeded, plus a convenience in-memory path for small inputs.
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageCorruptionError

__all__ = ["SortStats", "external_sort", "sort_key_for"]

Row = Tuple[object, ...]

#: Run-file framing: a ``#R <rows>`` header, then one ``<crc32hex> <json>``
#: line per row.  The per-row CRC catches corruption, the header row count
#: catches truncation (a run that ends early raises
#: :class:`repro.errors.StorageCorruptionError` instead of silently merging
#: fewer rows — a wrong sort result with no error is the worst failure mode).
_RUN_MARKER = "#R"


@dataclass
class SortStats:
    """Counters describing one external-sort execution."""

    rows_in: int = 0
    runs_spilled: int = 0
    rows_spilled: int = 0
    merge_passes: int = 0
    run_files: List[str] = field(default_factory=list)


def sort_key_for(value: object) -> Tuple[int, object]:
    """Total order over heterogeneous, possibly-None values.

    None sorts first, then booleans/numbers, then everything else by string.
    This matches :func:`repro.storage.relation._sort_key` so that convenience
    sorts and external sorts agree on ordering.
    """
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def _row_key(indices: Sequence[int]) -> Callable[[Row], Tuple]:
    def key(row: Row) -> Tuple:
        return tuple(sort_key_for(row[i]) for i in indices)

    return key


def external_sort(
    rows: Iterable[Sequence[object]],
    key_indices: Sequence[int],
    max_rows_in_memory: int = 100_000,
    stats: Optional[SortStats] = None,
) -> Iterator[Row]:
    """Yield ``rows`` sorted by the columns at ``key_indices``.

    Runs of up to ``max_rows_in_memory`` rows are sorted in memory; if more
    than one run is needed the runs are spilled to temporary files and merged
    with a k-way heap merge.  The iterator owns the temporary files and removes
    them when exhausted or garbage collected.
    """
    stats = stats if stats is not None else SortStats()
    key = _row_key(key_indices)

    run_paths: List[str] = []
    buffer: List[Row] = []

    def spill(buffer_rows: List[Row]) -> None:
        buffer_rows.sort(key=key)
        fd, path = tempfile.mkstemp(prefix="repro_sort_run_", suffix=".jsonl")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{_RUN_MARKER} {len(buffer_rows)}\n")
            for row in buffer_rows:
                encoded = json.dumps(list(row), default=str)
                checksum = zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF
                handle.write(f"{checksum:08x} {encoded}\n")
        run_paths.append(path)
        stats.runs_spilled += 1
        stats.rows_spilled += len(buffer_rows)
        stats.run_files.append(path)

    for row in rows:
        buffer.append(tuple(row))
        stats.rows_in += 1
        if len(buffer) >= max_rows_in_memory:
            spill(buffer)
            buffer = []

    if not run_paths:
        # Everything fits in memory: plain sort, no spill.
        buffer.sort(key=key)
        yield from buffer
        return

    if buffer:
        spill(buffer)
        buffer = []

    stats.merge_passes += 1
    try:
        yield from _merge_runs(run_paths, key)
    finally:
        for path in run_paths:
            if os.path.exists(path):
                os.remove(path)


def _read_run(path: str) -> Iterator[Row]:
    """Replay one spilled run, verifying framing, checksums, and row count.

    Reads in binary so damaged bytes reach the CRC check instead of dying
    in the text-mode UTF-8 decoder with a bare ``UnicodeDecodeError``.
    """
    with open(path, "rb") as handle:
        header = handle.readline()
        fields = header.decode("utf-8", "replace").split()
        if len(fields) != 2 or fields[0] != _RUN_MARKER or not fields[1].isdigit():
            raise StorageCorruptionError(
                f"sort run {path!r} has a missing or garbled header {header!r}"
            )
        expected = int(fields[1])
        seen = 0
        for raw in handle:
            if not raw.endswith(b"\n"):
                # A complete run ends every row with a newline; a bare tail
                # could still pass its CRC (cut exactly at the terminator).
                raise StorageCorruptionError(
                    f"sort run {path!r}, row {seen} is missing its terminator "
                    f"— the file was truncated"
                )
            checksum_bytes, _, encoded = raw.rstrip(b"\n").partition(b" ")
            try:
                checksum = int(checksum_bytes.decode("ascii", "replace"), 16)
            except ValueError:
                raise StorageCorruptionError(
                    f"sort run {path!r}, row {seen}: garbled checksum prefix "
                    f"{checksum_bytes!r}"
                ) from None
            if zlib.crc32(encoded) & 0xFFFFFFFF != checksum:
                raise StorageCorruptionError(
                    f"sort run {path!r}, row {seen} failed its CRC-32 checksum"
                )
            try:
                row = json.loads(encoded.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                # pragma: no cover - the CRC catches damage first
                raise StorageCorruptionError(
                    f"sort run {path!r}, row {seen} passed its checksum but is "
                    f"not JSON: {error}"
                ) from error
            seen += 1
            yield tuple(row)
        if seen != expected:
            raise StorageCorruptionError(
                f"sort run {path!r} is truncated: header promises {expected} "
                f"row(s), file holds {seen}"
            )


def _merge_runs(run_paths: List[str], key: Callable[[Row], Tuple]) -> Iterator[Row]:
    iterators = [_read_run(path) for path in run_paths]
    yield from heapq.merge(*iterators, key=key)

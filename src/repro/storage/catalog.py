"""Database catalog: tables, keys, and functional dependencies.

The catalog is the schema-level knowledge SPROUT uses *statically*: which
tables exist, which attribute sets are keys, and which functional dependencies
(FDs) hold.  Section IV of the paper uses this information to compute
FD-reducts and to refine query signatures; the catalog is therefore shared by
the deterministic substrate, the probabilistic layer, and the planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.storage.relation import Relation
from repro.storage.schema import Schema

__all__ = ["FunctionalDependency", "TableInfo", "Catalog"]


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``determinant -> dependent`` on one table.

    The dependency is scoped to a table name because the paper's FDs are
    per-relation (e.g. ``Ord: okey -> ckey, odate``).  Attribute names follow
    the query-model convention that join attributes share names across tables,
    so the closure computation in :mod:`repro.query.fd` can apply an FD of one
    table to the attribute set of another whenever the determinant attributes
    are present there (this is exactly the chase step of Proposition IV.5).
    """

    table: str
    determinant: FrozenSet[str]
    dependent: FrozenSet[str]

    def __init__(self, table: str, determinant: Iterable[str], dependent: Iterable[str]):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "determinant", frozenset(determinant))
        object.__setattr__(self, "dependent", frozenset(dependent))
        if not self.determinant:
            raise CatalogError("functional dependency needs a non-empty determinant")
        if not self.dependent:
            raise CatalogError("functional dependency needs a non-empty dependent")

    def __str__(self) -> str:
        lhs = ",".join(sorted(self.determinant))
        rhs = ",".join(sorted(self.dependent))
        return f"{self.table}: {lhs} -> {rhs}"

    def applies_to(self, attributes: Iterable[str]) -> bool:
        """True if the determinant is contained in ``attributes`` (a chase step fires)."""
        return self.determinant <= set(attributes)


@dataclass
class TableInfo:
    """Catalog entry for one table."""

    name: str
    schema: Schema
    relation: Optional[Relation] = None
    primary_key: Optional[Tuple[str, ...]] = None
    candidate_keys: List[Tuple[str, ...]] = field(default_factory=list)

    def keys(self) -> List[Tuple[str, ...]]:
        """All declared keys (primary first)."""
        keys: List[Tuple[str, ...]] = []
        if self.primary_key:
            keys.append(self.primary_key)
        keys.extend(k for k in self.candidate_keys if k != self.primary_key)
        return keys


class Catalog:
    """Registry of tables, their keys, and functional dependencies."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableInfo] = {}
        self._fds: List[FunctionalDependency] = []

    # -- tables ---------------------------------------------------------------

    def register_table(
        self,
        name: str,
        schema: Schema,
        relation: Optional[Relation] = None,
        primary_key: Optional[Sequence[str]] = None,
        candidate_keys: Optional[Iterable[Sequence[str]]] = None,
    ) -> TableInfo:
        """Register a table; keys are also recorded as functional dependencies."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already registered")
        info = TableInfo(
            name=name,
            schema=schema,
            relation=relation,
            primary_key=tuple(primary_key) if primary_key else None,
            candidate_keys=[tuple(k) for k in (candidate_keys or [])],
        )
        self._tables[name] = info
        for key in info.keys():
            self._register_key_fd(name, key, schema)
        return info

    def _register_key_fd(self, table: str, key: Sequence[str], schema: Schema) -> None:
        dependents = [a for a in schema.data_names() if a not in key]
        if dependents:
            self.add_fd(FunctionalDependency(table, key, dependents))

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; known tables: {sorted(self._tables)}"
            ) from None

    def tables(self) -> List[TableInfo]:
        return list(self._tables.values())

    def table_names(self) -> List[str]:
        return list(self._tables)

    def set_relation(self, name: str, relation: Relation) -> None:
        """Attach (or replace) the stored rows of a registered table."""
        self.table(name).relation = relation

    def relation(self, name: str) -> Relation:
        info = self.table(name)
        if info.relation is None:
            raise CatalogError(f"table {name!r} has no stored relation")
        return info.relation

    # -- keys and functional dependencies --------------------------------------

    def add_fd(self, fd: FunctionalDependency) -> None:
        """Register a functional dependency (duplicates are ignored)."""
        if fd not in self._fds:
            self._fds.append(fd)

    def add_key(self, table: str, key: Sequence[str]) -> None:
        """Declare ``key`` to be a key of ``table`` and record the implied FD."""
        info = self.table(table)
        key_tuple = tuple(key)
        if info.primary_key is None:
            info.primary_key = key_tuple
        elif key_tuple not in info.candidate_keys and key_tuple != info.primary_key:
            info.candidate_keys.append(key_tuple)
        self._register_key_fd(table, key_tuple, info.schema)

    def functional_dependencies(
        self, tables: Optional[Iterable[str]] = None
    ) -> List[FunctionalDependency]:
        """All FDs, optionally restricted to the given tables."""
        if tables is None:
            return list(self._fds)
        wanted = set(tables)
        return [fd for fd in self._fds if fd.table in wanted]

    def keys_of(self, table: str) -> List[Tuple[str, ...]]:
        """Declared keys of ``table`` (may be empty)."""
        return self.table(table).keys()

    def is_key(self, table: str, attributes: Iterable[str]) -> bool:
        """True if ``attributes`` contain a declared key of ``table``."""
        attribute_set = set(attributes)
        return any(set(key) <= attribute_set for key in self.keys_of(table))

    # -- introspection ----------------------------------------------------------

    def describe(self) -> str:
        """Human-readable catalog summary (used by examples and the README)."""
        lines = []
        for info in self._tables.values():
            row_count = len(info.relation) if info.relation is not None else 0
            keys = ", ".join("(" + ",".join(k) + ")" for k in info.keys()) or "none"
            lines.append(
                f"{info.name}({', '.join(info.schema.names)}) "
                f"[{row_count} rows, keys: {keys}]"
            )
        if self._fds:
            lines.append("functional dependencies:")
            lines.extend(f"  {fd}" for fd in self._fds)
        return "\n".join(lines)

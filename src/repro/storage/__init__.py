"""Storage substrate: schemas, relations, heap files, external sort, catalog.

The bottom layer everything else stands on:

* :mod:`repro.storage.schema` — attributes with *column roles*
  (:class:`repro.storage.schema.ColumnRole`): ordinary ``DATA`` columns vs.
  the ``VAR``/``PROB`` pairs that carry each tuple's Boolean variable and
  its marginal probability through query plans.
* :mod:`repro.storage.relation` — in-memory relations with both row and
  column access (``from_columns``/``to_columns`` back the columnar engine).
* :mod:`repro.storage.heapfile` / :mod:`repro.storage.external_sort` —
  page-based secondary storage and k-way external merge sort, used by the
  disk-materialising evaluation paths.
* :mod:`repro.storage.catalog` — tables, primary keys, and the functional
  dependencies the FD-aware rewriting (Section IV) consumes.
* :mod:`repro.storage.csv_io` — CSV import/export for the TPC-H generator.

See ``docs/architecture.md`` for the full layer map.
"""

from repro.storage.catalog import Catalog, FunctionalDependency, TableInfo
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.external_sort import SortStats, external_sort, sort_key_for
from repro.storage.heapfile import HeapFile, PageStats
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema, VarProbPair

__all__ = [
    "Attribute",
    "Catalog",
    "ColumnRole",
    "FunctionalDependency",
    "HeapFile",
    "PageStats",
    "Relation",
    "Schema",
    "SortStats",
    "TableInfo",
    "VarProbPair",
    "external_sort",
    "read_csv",
    "sort_key_for",
    "write_csv",
]

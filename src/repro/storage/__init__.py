"""Storage substrate: schemas, relations, heap files, external sort, catalog."""

from repro.storage.catalog import Catalog, FunctionalDependency, TableInfo
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.external_sort import SortStats, external_sort, sort_key_for
from repro.storage.heapfile import HeapFile, PageStats
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema, VarProbPair

__all__ = [
    "Attribute",
    "Catalog",
    "ColumnRole",
    "FunctionalDependency",
    "HeapFile",
    "PageStats",
    "Relation",
    "Schema",
    "SortStats",
    "TableInfo",
    "VarProbPair",
    "external_sort",
    "read_csv",
    "sort_key_for",
    "write_csv",
]

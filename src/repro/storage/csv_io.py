"""CSV import/export for relations.

TPC-H data and experiment outputs are exchanged as CSV so that users can
inspect or regenerate them with standard tools.  Typed parsing is driven by
the relation schema.
"""

from __future__ import annotations

import csv
from typing import Optional

from repro.errors import StorageError
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, Schema

__all__ = ["write_csv", "read_csv"]


def write_csv(relation: Relation, path: str) -> None:
    """Write ``relation`` to ``path`` with a header row of attribute names."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation:
            writer.writerow(["" if v is None else v for v in row])


def _parse(attribute: Attribute, text: str) -> object:
    if text == "":
        return None
    if attribute.dtype == "int":
        return int(text)
    if attribute.dtype == "float":
        return float(text)
    if attribute.dtype == "bool":
        return text.strip().lower() in ("1", "true", "t", "yes")
    return text


def read_csv(path: str, schema: Schema, name: Optional[str] = None) -> Relation:
    """Read a CSV file written by :func:`write_csv` back into a relation."""
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"CSV file {path!r} is empty") from None
        if tuple(header) != schema.names:
            raise StorageError(
                f"CSV header {header} does not match schema {list(schema.names)}"
            )
        relation = Relation(name or path, schema)
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(schema):
                raise StorageError(
                    f"{path}:{line_number}: expected {len(schema)} fields, got {len(row)}"
                )
            relation.append(
                tuple(_parse(attribute, text) for attribute, text in zip(schema, row))
            )
        return relation

"""In-memory relations (tables) over typed schemas.

A :class:`Relation` is the unit of data exchanged between plan operators and
the unit stored in the catalog.  Rows are plain Python tuples in schema order.
The class offers a handful of convenience transformations (project, filter,
sort, distinct) used by tests and examples; the full iterator-model algebra
lives in :mod:`repro.algebra`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.storage.schema import Schema

__all__ = ["Relation"]

Row = Tuple[object, ...]


class Relation:
    """A named bag of rows conforming to a :class:`Schema`.

    Relations are bags (duplicates allowed), matching SQL semantics and the
    paper's treatment of answer relations before duplicate elimination.
    """

    __slots__ = ("name", "schema", "_rows", "_columns_cache")

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Optional[Iterable[Sequence[object]]] = None,
        validate: bool = False,
    ):
        self.name = name
        self.schema = schema
        self._rows: List[Row] = []
        self._columns_cache: Optional[Tuple[int, List[List[object]]]] = None
        if rows is not None:
            self.extend(rows, validate=validate)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dicts(
        cls, name: str, schema: Schema, dicts: Iterable[Dict[str, object]]
    ) -> "Relation":
        """Build a relation from dictionaries keyed by attribute name."""
        names = schema.names
        rows = [tuple(d.get(n) for n in names) for d in dicts]
        return cls(name, schema, rows)

    @classmethod
    def from_columns(
        cls,
        name: str,
        schema: Schema,
        columns: Sequence[Sequence[object]],
        length: Optional[int] = None,
    ) -> "Relation":
        """Build a relation from parallel columns (the columnar backend's exit).

        ``zip`` transposes at C speed, so this is much cheaper than appending
        row by row.  ``length`` must be given for zero-column schemas, where
        the row count cannot be recovered from the columns.
        """
        if len(columns) != len(schema):
            raise SchemaError(
                f"column count {len(columns)} does not match schema arity {len(schema)}"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise SchemaError(
                f"ragged columns: lengths {sorted(lengths)} differ "
                "(zip would silently truncate)"
            )
        out = cls(name, schema)
        if columns:
            out._rows = list(zip(*columns))
        else:
            out._rows = [()] * (length or 0)
        return out

    def to_columns(self) -> List[List[object]]:
        """Transpose the rows into one list per column (schema order)."""
        if not self._rows:
            return [[] for _ in self.schema]
        return [list(column) for column in zip(*self._rows)]

    def columns_cached(self) -> List[List[object]]:
        """Column view of the relation, cached between calls.

        The columnar scan operator reads base tables through this so that a
        table is transposed at most once, like a column store would keep it.
        The cache is keyed on the row count: appends invalidate it, and no
        code path replaces rows without changing the count.  Treat the
        returned lists as read-only.
        """
        cached = self._columns_cache
        if cached is not None and cached[0] == len(self._rows):
            return cached[1]
        columns = self.to_columns()
        self._columns_cache = (len(self._rows), columns)
        return columns

    def empty_like(self, name: Optional[str] = None) -> "Relation":
        """Return an empty relation with the same schema."""
        return Relation(name or self.name, self.schema)

    # -- mutation --------------------------------------------------------------

    def append(self, row: Sequence[object], validate: bool = False) -> None:
        """Append a single row (converted to a tuple)."""
        row = tuple(row)
        if validate:
            self.schema.validate_row(row)
        elif len(row) != len(self.schema):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity {len(self.schema)}"
            )
        self._rows.append(row)

    def extend(self, rows: Iterable[Sequence[object]], validate: bool = False) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row, validate=validate)

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and sorted(
            self._rows, key=repr
        ) == sorted(other._rows, key=repr)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {len(self._rows)} rows, {len(self.schema)} cols)"

    @property
    def rows(self) -> List[Row]:
        """The underlying row list (treat as read-only)."""
        return self._rows

    # -- access helpers --------------------------------------------------------

    def column(self, name: str) -> List[object]:
        """Return all values of the named column, in row order."""
        index = self.schema.index_of(name)
        return [row[index] for row in self._rows]

    def to_dicts(self) -> List[Dict[str, object]]:
        """Return rows as dictionaries keyed by attribute name."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self._rows]

    def row_dict(self, row: Row) -> Dict[str, object]:
        """Convert one row of this relation to a dict."""
        return dict(zip(self.schema.names, row))

    # -- simple transformations (convenience; the algebra operators are richer)

    def project(self, names: Sequence[str], name: Optional[str] = None) -> "Relation":
        """Bag projection onto ``names`` (no duplicate elimination)."""
        indices = self.schema.indices_of(names)
        out = Relation(name or self.name, self.schema.project(names))
        out._rows = [tuple(row[i] for i in indices) for row in self._rows]
        return out

    def filter(
        self, predicate: Callable[[Dict[str, object]], bool], name: Optional[str] = None
    ) -> "Relation":
        """Keep rows for which ``predicate(row_as_dict)`` is true."""
        names = self.schema.names
        out = Relation(name or self.name, self.schema)
        out._rows = [
            row for row in self._rows if predicate(dict(zip(names, row)))
        ]
        return out

    def sorted_by(self, names: Sequence[str], name: Optional[str] = None) -> "Relation":
        """Return a copy sorted lexicographically by the given columns."""
        indices = self.schema.indices_of(names)
        out = Relation(name or self.name, self.schema)
        out._rows = sorted(self._rows, key=lambda row: tuple(_sort_key(row[i]) for i in indices))
        return out

    def distinct(self, name: Optional[str] = None) -> "Relation":
        """Return a copy with duplicate rows removed (first occurrence kept)."""
        seen = set()
        out = Relation(name or self.name, self.schema)
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                out._rows.append(row)
        return out

    def renamed(self, mapping: Dict[str, str], name: Optional[str] = None) -> "Relation":
        """Return a copy with attributes renamed according to ``mapping``."""
        out = Relation(name or self.name, self.schema.rename(mapping))
        out._rows = list(self._rows)
        return out

    # -- presentation ----------------------------------------------------------

    def head(self, n: int = 10) -> "Relation":
        """Return the first ``n`` rows as a new relation."""
        out = Relation(self.name, self.schema)
        out._rows = self._rows[:n]
        return out

    def pretty(self, limit: int = 20) -> str:
        """Render the relation as a fixed-width text table (for examples/docs)."""
        names = list(self.schema.names)
        shown = self._rows[:limit]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [len(n) for n in names]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        separator = "-+-".join("-" * w for w in widths)
        lines = [header, separator]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _sort_key(value: object) -> Tuple[int, object]:
    """Total order over heterogeneous, possibly-None column values."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))

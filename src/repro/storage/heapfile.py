"""A minimal page-based heap file, the secondary-storage substrate.

The paper's operator is a *secondary-storage* operator: it streams sorted
answer tuples from disk and keeps only a constant number of running
aggregates in memory.  To make that aspect reproducible without PostgreSQL we
provide a small heap-file abstraction: rows are serialised to fixed-size pages
on disk and read back page at a time.  The rest of the library works against
plain iterators, so in-memory and on-disk relations are interchangeable; the
heap file exists so that tests and benchmarks can exercise (and count) real
page I/O.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageCorruptionError, StorageError
from repro.storage.schema import Schema

__all__ = ["PageStats", "HeapFile"]

DEFAULT_PAGE_SIZE = 8192

#: Per-page header: ``#P <tuple_count> <payload_bytes> <crc32hex>``.  The
#: length lets the reader detect truncation (a short read is an error, not a
#: short page) and the CRC detects in-place corruption — both surface as
#: :class:`repro.errors.StorageCorruptionError` instead of a silent short scan
#: or a bare ``json.JSONDecodeError``.
_PAGE_MARKER = "#P"


@dataclass
class PageStats:
    """Counters of page-level I/O performed by a heap file."""

    pages_written: int = 0
    pages_read: int = 0
    tuples_written: int = 0
    tuples_read: int = 0

    def reset(self) -> None:
        self.pages_written = 0
        self.pages_read = 0
        self.tuples_written = 0
        self.tuples_read = 0


class HeapFile:
    """Append-only heap file storing rows as JSON lines grouped into pages.

    Pages are delimited by byte offsets recorded in an in-memory page
    directory; a page holds as many rows as fit in ``page_size`` encoded bytes.
    The encoding is deliberately simple (JSON) — the point is to model the
    *access pattern* (sequential page reads/writes), not storage density.
    """

    def __init__(
        self,
        schema: Schema,
        path: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self.schema = schema
        self.page_size = page_size
        self.stats = PageStats()
        self._page_offsets: List[int] = []
        self._page_tuple_counts: List[int] = []
        self._closed = False
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro_heap_", suffix=".jsonl")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        # Truncate on creation: a HeapFile owns its contents.
        with open(self.path, "w", encoding="utf-8"):
            pass

    # -- writing ----------------------------------------------------------------

    def write_rows(self, rows: Iterable[Sequence[object]]) -> int:
        """Append ``rows``, packing them into pages.  Returns the tuple count."""
        self._check_open()
        count = 0
        with open(self.path, "a", encoding="utf-8") as handle:
            buffer: List[str] = []
            buffer_bytes = 0
            offset = handle.tell()
            for row in rows:
                encoded = json.dumps(list(row), default=str)
                if buffer and buffer_bytes + len(encoded) + 1 > self.page_size:
                    offset = self._flush_page(handle, buffer, offset)
                    buffer, buffer_bytes = [], 0
                buffer.append(encoded)
                buffer_bytes += len(encoded) + 1
                count += 1
            if buffer:
                self._flush_page(handle, buffer, offset)
        self.stats.tuples_written += count
        return count

    def _flush_page(self, handle, buffer: List[str], offset: int) -> int:
        payload = "\n".join(buffer) + "\n"
        encoded = payload.encode("utf-8")
        checksum = zlib.crc32(encoded) & 0xFFFFFFFF
        header = f"{_PAGE_MARKER} {len(buffer)} {len(encoded)} {checksum:08x}\n"
        handle.write(header)
        handle.write(payload)
        self._page_offsets.append(offset)
        self._page_tuple_counts.append(len(buffer))
        self.stats.pages_written += 1
        return offset + len(header) + len(encoded)  # header is pure ASCII

    # -- reading ----------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[object, ...]]:
        """Sequentially scan all pages, yielding rows as tuples.

        Every page is verified before any of its rows are yielded: header
        shape, exact payload length, CRC-32, and row count.  Any mismatch
        raises :class:`repro.errors.StorageCorruptionError` naming the page
        — never a silent short result, never a bare decode error.
        """
        self._check_open()
        with open(self.path, "rb") as handle:
            for offset, tuple_count in zip(self._page_offsets, self._page_tuple_counts):
                handle.seek(offset)
                self.stats.pages_read += 1
                yield from self._read_page(handle, offset, tuple_count)

    def _read_page(self, handle, offset: int, tuple_count: int) -> Iterator[Tuple[object, ...]]:
        where = f"heap file {self.path!r}, page at offset {offset}"
        header = handle.readline()
        fields = header.decode("utf-8", "replace").split()
        if len(fields) != 4 or fields[0] != _PAGE_MARKER:
            raise StorageCorruptionError(
                f"{where} has a missing or garbled header {header!r}"
            )
        try:
            count, length, checksum = int(fields[1]), int(fields[2]), int(fields[3], 16)
        except ValueError:
            raise StorageCorruptionError(
                f"{where} has a non-numeric header {header!r}"
            ) from None
        if count != tuple_count:
            raise StorageCorruptionError(
                f"{where} holds {count} row(s) but the page directory "
                f"recorded {tuple_count}"
            )
        payload = handle.read(length)
        if len(payload) != length:
            raise StorageCorruptionError(
                f"{where} is truncated: header promises {length} payload "
                f"byte(s), file holds {len(payload)}"
            )
        if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
            raise StorageCorruptionError(f"{where} failed its CRC-32 checksum")
        lines = payload.decode("utf-8").splitlines()
        if len(lines) != count:
            raise StorageCorruptionError(
                f"{where} decodes to {len(lines)} row(s), header promises {count}"
            )
        for line in lines:
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:  # pragma: no cover - CRC catches
                raise StorageCorruptionError(
                    f"{where} passed its checksum but holds non-JSON row "
                    f"{line!r}: {error}"
                ) from error
            self.stats.tuples_read += 1
            yield tuple(row)

    # -- metadata ----------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self._page_offsets)

    @property
    def tuple_count(self) -> int:
        return sum(self._page_tuple_counts)

    def __len__(self) -> int:
        return self.tuple_count

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Delete the backing file if this heap file created it."""
        if self._closed:
            return
        self._closed = True
        if self._owns_file and os.path.exists(self.path):
            os.remove(self.path)

    def __enter__(self) -> "HeapFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("heap file is closed")

"""A minimal page-based heap file, the secondary-storage substrate.

The paper's operator is a *secondary-storage* operator: it streams sorted
answer tuples from disk and keeps only a constant number of running
aggregates in memory.  To make that aspect reproducible without PostgreSQL we
provide a small heap-file abstraction: rows are serialised to fixed-size pages
on disk and read back page at a time.  The rest of the library works against
plain iterators, so in-memory and on-disk relations are interchangeable; the
heap file exists so that tests and benchmarks can exercise (and count) real
page I/O.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.schema import Schema

__all__ = ["PageStats", "HeapFile"]

DEFAULT_PAGE_SIZE = 8192


@dataclass
class PageStats:
    """Counters of page-level I/O performed by a heap file."""

    pages_written: int = 0
    pages_read: int = 0
    tuples_written: int = 0
    tuples_read: int = 0

    def reset(self) -> None:
        self.pages_written = 0
        self.pages_read = 0
        self.tuples_written = 0
        self.tuples_read = 0


class HeapFile:
    """Append-only heap file storing rows as JSON lines grouped into pages.

    Pages are delimited by byte offsets recorded in an in-memory page
    directory; a page holds as many rows as fit in ``page_size`` encoded bytes.
    The encoding is deliberately simple (JSON) — the point is to model the
    *access pattern* (sequential page reads/writes), not storage density.
    """

    def __init__(
        self,
        schema: Schema,
        path: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self.schema = schema
        self.page_size = page_size
        self.stats = PageStats()
        self._page_offsets: List[int] = []
        self._page_tuple_counts: List[int] = []
        self._closed = False
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro_heap_", suffix=".jsonl")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        # Truncate on creation: a HeapFile owns its contents.
        with open(self.path, "w", encoding="utf-8"):
            pass

    # -- writing ----------------------------------------------------------------

    def write_rows(self, rows: Iterable[Sequence[object]]) -> int:
        """Append ``rows``, packing them into pages.  Returns the tuple count."""
        self._check_open()
        count = 0
        with open(self.path, "a", encoding="utf-8") as handle:
            buffer: List[str] = []
            buffer_bytes = 0
            offset = handle.tell()
            for row in rows:
                encoded = json.dumps(list(row), default=str)
                if buffer and buffer_bytes + len(encoded) + 1 > self.page_size:
                    offset = self._flush_page(handle, buffer, offset)
                    buffer, buffer_bytes = [], 0
                buffer.append(encoded)
                buffer_bytes += len(encoded) + 1
                count += 1
            if buffer:
                self._flush_page(handle, buffer, offset)
        self.stats.tuples_written += count
        return count

    def _flush_page(self, handle, buffer: List[str], offset: int) -> int:
        payload = "\n".join(buffer) + "\n"
        handle.write(payload)
        self._page_offsets.append(offset)
        self._page_tuple_counts.append(len(buffer))
        self.stats.pages_written += 1
        return offset + len(payload.encode("utf-8"))

    # -- reading ----------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[object, ...]]:
        """Sequentially scan all pages, yielding rows as tuples."""
        self._check_open()
        with open(self.path, "r", encoding="utf-8") as handle:
            for offset, tuple_count in zip(self._page_offsets, self._page_tuple_counts):
                handle.seek(offset)
                self.stats.pages_read += 1
                for _ in range(tuple_count):
                    line = handle.readline()
                    if not line:
                        raise StorageError(f"truncated heap file {self.path!r}")
                    self.stats.tuples_read += 1
                    yield tuple(json.loads(line))

    # -- metadata ----------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self._page_offsets)

    @property
    def tuple_count(self) -> int:
        return sum(self._page_tuple_counts)

    def __len__(self) -> int:
        return self.tuple_count

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Delete the backing file if this heap file created it."""
        if self._closed:
            return
        self._closed = True
        if self._owns_file and os.path.exists(self.path):
            os.remove(self.path)

    def __enter__(self) -> "HeapFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("heap file is closed")

"""Typed relation schemas with column roles.

SPROUT's data model extends ordinary relations with two distinguished column
kinds: *variable* columns (``V``) holding Boolean random-variable identifiers
and *probability* columns (``P``) holding the marginal probability of the
variable being true.  During query evaluation these columns are copied along
like ordinary data columns; the confidence operator later needs to know which
columns are variables/probabilities and which base table each pair came from.

This module provides :class:`Attribute` (a named, typed column with a
:class:`ColumnRole` and a ``source`` table) and :class:`Schema` (an ordered,
name-addressable collection of attributes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError

__all__ = ["ColumnRole", "Attribute", "Schema", "VarProbPair"]


class ColumnRole(enum.Enum):
    """Role of a column in a (probabilistic) relation."""

    DATA = "data"
    VAR = "var"
    PROB = "prob"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnRole.{self.name}"


#: Python types accepted for each declared dtype.
_DTYPE_PYTYPES = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
    "date": (str,),  # ISO yyyy-mm-dd strings sort correctly lexicographically
}


@dataclass(frozen=True)
class Attribute:
    """A single column of a relation.

    Parameters
    ----------
    name:
        Column name.  Join attributes are matched by name across tables
        (the paper assumes equi-join attributes share their name).
    dtype:
        One of ``int``, ``float``, ``str``, ``bool``, ``date``.
    role:
        Whether the column holds data, a random-variable id, or a probability.
    source:
        For VAR/PROB columns, the base-table name the pair originates from.
        For DATA columns this is optional provenance information.
    """

    name: str
    dtype: str = "str"
    role: ColumnRole = ColumnRole.DATA
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPE_PYTYPES:
            raise SchemaError(
                f"unknown dtype {self.dtype!r} for attribute {self.name!r}; "
                f"expected one of {sorted(_DTYPE_PYTYPES)}"
            )
        if self.role is not ColumnRole.DATA and self.source is None:
            raise SchemaError(
                f"attribute {self.name!r} with role {self.role.value} needs a source table"
            )

    def accepts(self, value: object) -> bool:
        """Return True if ``value`` is acceptable for this attribute (None allowed)."""
        if value is None:
            return True
        if self.dtype == "float" and isinstance(value, bool):
            return False
        return isinstance(value, _DTYPE_PYTYPES[self.dtype])

    def renamed(self, name: str) -> "Attribute":
        """Return a copy of this attribute under a new name."""
        return replace(self, name=name)

    def with_source(self, source: str) -> "Attribute":
        """Return a copy of this attribute with ``source`` set."""
        return replace(self, source=source)

    def __str__(self) -> str:
        suffix = ""
        if self.role is not ColumnRole.DATA:
            suffix = f"[{self.role.value}:{self.source}]"
        return f"{self.name}:{self.dtype}{suffix}"


@dataclass(frozen=True)
class VarProbPair:
    """Positions of the variable and probability column for one base table."""

    source: str
    var_index: int
    prob_index: int
    var_name: str
    prob_name: str


def var_column_name(table: str) -> str:
    """Canonical name of the variable column contributed by ``table``."""
    return f"{table}.V"


def prob_column_name(table: str) -> str:
    """Canonical name of the probability column contributed by ``table``."""
    return f"{table}.P"


class Schema:
    """An ordered collection of :class:`Attribute` with name-based lookup.

    Schemas are immutable; all transformation methods return new schemas.
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index = {}
        for position, attribute in enumerate(attrs):
            if attribute.name in index:
                raise SchemaError(f"duplicate attribute name {attribute.name!r} in schema")
            index[attribute.name] = position
        self._attributes: Tuple[Attribute, ...] = attrs
        self._index = index

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, *specs: str, source: Optional[str] = None) -> "Schema":
        """Build a schema from ``"name:dtype"`` strings (dtype defaults to str)."""
        attributes = []
        for spec in specs:
            name, _, dtype = spec.partition(":")
            attributes.append(Attribute(name, dtype or "str", source=source))
        return cls(attributes)

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, item) -> Attribute:
        if isinstance(item, str):
            return self._attributes[self.index_of(item)]
        return self._attributes[item]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return "Schema(" + ", ".join(str(a) for a in self._attributes) + ")"

    # -- lookups ---------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def index_of(self, name: str) -> int:
        """Return the position of attribute ``name``; raise SchemaError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {list(self.names)}"
            ) from None

    def indices_of(self, names: Sequence[str]) -> Tuple[int, ...]:
        """Return the positions of the given attribute names, in order."""
        return tuple(self.index_of(name) for name in names)

    def data_attributes(self) -> List[Attribute]:
        """Attributes with role DATA, in schema order."""
        return [a for a in self._attributes if a.role is ColumnRole.DATA]

    def data_names(self) -> List[str]:
        return [a.name for a in self.data_attributes()]

    def var_prob_pairs(self) -> List[VarProbPair]:
        """Variable/probability column pairs, grouped by source table.

        The pairs are returned in the order the variable columns appear in the
        schema.  A VAR column without a matching PROB column (or vice versa)
        raises :class:`SchemaError` — the SPROUT data model always keeps them
        together.
        """
        vars_by_source = {}
        probs_by_source = {}
        order: List[str] = []
        for position, attribute in enumerate(self._attributes):
            if attribute.role is ColumnRole.VAR:
                if attribute.source in vars_by_source:
                    raise SchemaError(f"duplicate variable column for table {attribute.source!r}")
                vars_by_source[attribute.source] = (position, attribute.name)
                order.append(attribute.source)
            elif attribute.role is ColumnRole.PROB:
                if attribute.source in probs_by_source:
                    raise SchemaError(
                        f"duplicate probability column for table {attribute.source!r}"
                    )
                probs_by_source[attribute.source] = (position, attribute.name)
        if set(vars_by_source) != set(probs_by_source):
            missing = set(vars_by_source) ^ set(probs_by_source)
            raise SchemaError(f"unpaired variable/probability columns for tables {sorted(missing)}")
        pairs = []
        for source in order:
            var_index, var_name = vars_by_source[source]
            prob_index, prob_name = probs_by_source[source]
            pairs.append(VarProbPair(source, var_index, prob_index, var_name, prob_name))
        return pairs

    def sources(self) -> List[str]:
        """Base tables contributing a variable/probability pair, in order."""
        return [pair.source for pair in self.var_prob_pairs()]

    # -- transformations -------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        return Schema(self[name] for name in names)

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas; duplicate names raise SchemaError."""
        return Schema(tuple(self._attributes) + tuple(other.attributes))

    def rename(self, mapping: dict) -> "Schema":
        """Rename attributes according to ``mapping`` (old name -> new name)."""
        return Schema(
            a.renamed(mapping.get(a.name, a.name)) for a in self._attributes
        )

    def drop(self, names: Sequence[str]) -> "Schema":
        """Schema without the given attribute names."""
        dropped = set(names)
        for name in dropped:
            self.index_of(name)  # validate
        return Schema(a for a in self._attributes if a.name not in dropped)

    def prefixed(self, prefix: str) -> "Schema":
        """Schema with every attribute name prefixed by ``prefix`` + '.'."""
        return Schema(a.renamed(f"{prefix}.{a.name}") for a in self._attributes)

    def validate_row(self, row: Sequence[object]) -> None:
        """Raise :class:`SchemaError` if ``row`` does not conform to this schema."""
        if len(row) != len(self._attributes):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity {len(self._attributes)}"
            )
        for attribute, value in zip(self._attributes, row):
            if not attribute.accepts(value):
                raise SchemaError(
                    f"value {value!r} is not valid for attribute {attribute}"
                )

"""Tuple-independent probabilistic tables.

A probabilistic table ``R^rep`` has schema ``(A, V, P)`` with the functional
dependency ``A -> V P``: every data tuple is annotated with a distinct Boolean
random variable (column ``V``) and the probability of that variable being true
(column ``P``).  This module converts ordinary relations into that
representation, allocating fresh variables from a :class:`VariableRegistry`.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import ProbabilityError, SchemaError
from repro.prob.variables import VariableRegistry, validate_probability
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema, prob_column_name, var_column_name

__all__ = ["ProbabilisticTable", "make_tuple_independent"]

ProbabilitySpec = Union[float, Sequence[float], Callable[[int, tuple], float], None]


class ProbabilisticTable:
    """A tuple-independent probabilistic table: data columns plus ``V``/``P``."""

    def __init__(self, source: str, relation: Relation, data_schema: Schema):
        self.source = source
        self.relation = relation
        self.data_schema = data_schema

    def __len__(self) -> int:
        return len(self.relation)

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    @property
    def var_column(self) -> str:
        return var_column_name(self.source)

    @property
    def prob_column(self) -> str:
        return prob_column_name(self.source)

    def variables(self) -> List[int]:
        """Variable ids of all tuples, in row order."""
        return [int(v) for v in self.relation.column(self.var_column)]

    def data_rows(self) -> List[tuple]:
        """Data tuples without the V/P annotation, in row order."""
        data_names = self.data_schema.names
        return [tuple(row) for row in self.relation.project(list(data_names))]

    def __repr__(self) -> str:
        return f"ProbabilisticTable({self.source!r}, {len(self)} tuples)"


def make_tuple_independent(
    relation: Relation,
    registry: VariableRegistry,
    probabilities: ProbabilitySpec = None,
    rng: Optional[random.Random] = None,
    source: Optional[str] = None,
) -> ProbabilisticTable:
    """Annotate every tuple of ``relation`` with a fresh variable and probability.

    Parameters
    ----------
    relation:
        Deterministic input relation (DATA columns only).
    registry:
        Variable registry used to allocate fresh Boolean variables.
    probabilities:
        Either a single probability applied to all tuples, a sequence with one
        probability per tuple, a callable ``(row_index, row) -> probability``,
        or ``None`` to draw probabilities uniformly from (0, 1] using ``rng``
        (the paper "chooses at random a probability distribution over these
        variables").
    rng:
        Random generator used when ``probabilities`` is None (defaults to a
        fixed seed so that experiments are reproducible).
    source:
        Table name recorded as the source of the V/P pair (defaults to the
        relation name).
    """
    source = source or relation.name
    for attribute in relation.schema:
        if attribute.role is not ColumnRole.DATA:
            raise SchemaError(
                f"relation {relation.name!r} already has a {attribute.role.value} column"
            )
    # The data model requires the functional dependency A -> V P: a probabilistic
    # table is a *set* of data tuples, each annotated with one variable.  The
    # signature refinement relies on this (a group that fixes all data columns
    # contains at most one tuple), so duplicate input rows are rejected rather
    # than silently annotated with two variables.
    seen = set()
    for row in relation:
        key = tuple(row)
        if key in seen:
            raise ProbabilityError(
                f"relation {relation.name!r} contains the duplicate tuple {key!r}; "
                "tuple-independent tables are sets of tuples (schema (A, V, P) with "
                "A -> V P) — add a distinguishing column if both copies are needed"
            )
        seen.add(key)
    rng = rng or random.Random(0)

    def probability_for(index: int, row: tuple) -> float:
        if probabilities is None:
            return rng.uniform(0.01, 1.0)
        if isinstance(probabilities, (int, float)) and not isinstance(probabilities, bool):
            return float(probabilities)
        if callable(probabilities):
            return probabilities(index, row)
        try:
            return float(probabilities[index])
        except (IndexError, TypeError) as exc:
            raise ProbabilityError(
                f"probability spec does not cover row {index} of {relation.name!r}"
            ) from exc

    data_schema = Schema(a.with_source(source) if a.source is None else a for a in relation.schema)
    schema = Schema(
        tuple(data_schema.attributes)
        + (
            Attribute(var_column_name(source), "int", ColumnRole.VAR, source=source),
            Attribute(prob_column_name(source), "float", ColumnRole.PROB, source=source),
        )
    )
    output = Relation(source, schema)
    for index, row in enumerate(relation):
        probability = validate_probability(probability_for(index, row))
        variable = registry.fresh(source, probability)
        output.append(tuple(row) + (variable, probability))
    return ProbabilisticTable(source, output, data_schema)

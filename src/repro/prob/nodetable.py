"""Columnar node table: flat-array node storage with batched bound propagation.

The shared-lineage DAG (:mod:`repro.prob.sharedag`) stores its nodes here,
the way :mod:`repro.algebra.columnar` stores relations: one struct-of-arrays
table instead of an object graph.  A node is an integer id (``nid``) indexing
parallel ``array``-module columns:

==============  ====  =====================================================
column          type  meaning
==============  ====  =====================================================
``kind``        i8    0 closed · 1 leaf · 2 ⊗ ind_and · 3 ⊕ ind_or · 4 ⊙ det_or
``lower``       f64   current lower probability bound
``upper``       f64   current upper probability bound
``level``       i64   topological level: ``level(parent) > level(child)``
``child_start`` i64   first out-edge index (-1 when childless)
``child_count`` i64   number of children (contiguous edge range)
``in_head``     i64   head of the in-edge (parent backlink) linked list
==============  ====  =====================================================

and edges live in four parallel edge columns (``edge_child``,
``edge_parent``, ``edge_weight`` — the ⊙ cobranch weights — and
``edge_next`` linking each child's in-edges).  Child slot ``t`` of node
``n`` is edge ``child_start[n] + t``: the out-edges of a node are contiguous,
so per-slot batch kernels address them with pure arithmetic.

Bound propagation is **per level, not per node**: refining a node refreshes
its ancestor closure grouped by ``level`` in ascending order — every node's
children live on strictly smaller levels, so one pass per level replaces the
per-node topological bookkeeping of the old object graph.  With NumPy
installed (``pip install .[fast]``) each level refreshes as masked per-slot
array kernels over zero-copy ``np.frombuffer`` views of the columns; without
it, as plain Python loops.  Both paths replicate the float64 arithmetic of
:func:`repro.prob.dtree.combine_bounds` operation for operation — same
accumulation order, same ``min`` placement — so switching the backend never
changes a single bit of any bound (``tests/test_node_table.py`` and the
vectorized axis of ``tests/test_differential_matrix.py`` pin this).

Because the table is append-only and node mutation is in place (a leaf
becomes a ⊙ node under the same nid), nids remain valid for the lifetime of
the store — which is what lets :mod:`repro.sprout.parallel` ship whole store
segments (these columns, pickled) to worker processes instead of pickled
per-tuple trees.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.prob.backend import default_vectorize, numpy_or_none

__all__ = [
    "KIND_CLOSED",
    "KIND_LEAF",
    "KIND_IND_AND",
    "KIND_IND_OR",
    "KIND_DET_OR",
    "NodeTable",
]

KIND_CLOSED = 0
KIND_LEAF = 1
KIND_IND_AND = 2
KIND_IND_OR = 3
KIND_DET_OR = 4


class NodeTable:
    """Append-only struct-of-arrays storage for decomposition DAG nodes."""

    __slots__ = (
        "kind",
        "lower",
        "upper",
        "level",
        "child_start",
        "child_count",
        "in_head",
        "edge_child",
        "edge_parent",
        "edge_weight",
        "edge_next",
        "vectorize",
        "mutations",
    )

    def __init__(self, vectorize: Optional[bool] = None):
        self.kind = array("b")
        self.lower = array("d")
        self.upper = array("d")
        self.level = array("q")
        self.child_start = array("q")
        self.child_count = array("q")
        self.in_head = array("q")
        self.edge_child = array("q")
        self.edge_parent = array("q")
        self.edge_weight = array("d")
        self.edge_next = array("q")
        if vectorize is None:
            vectorize = default_vectorize()
        self.vectorize = bool(vectorize) and numpy_or_none() is not None
        #: Structural mutation counter: bumped on every node append and every
        #: child attachment (including the in-place leaf → ⊙ expansion).  A
        #: concurrent reader — the query service's stats endpoint, a test
        #: fingerprinting store state — can compare counter values taken
        #: before and after a read to detect that a refinement slipped in
        #: between, without holding the store lock across the whole read.
        self.mutations = 0

    # arrays pickle natively; spelling the state out keeps the wire format
    # explicit for the parallel executor's store-segment shipping.
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        self.mutations = 0  # absent from segments shipped by older builds
        for name, value in state.items():
            setattr(self, name, value)

    def __len__(self) -> int:
        return len(self.kind)

    # -- construction -------------------------------------------------------

    def new_node(self, kind: int, lower: float = 0.0, upper: float = 1.0) -> int:
        """Append a childless node, returning its nid (creation order)."""
        nid = len(self.kind)
        self.kind.append(kind)
        self.lower.append(lower)
        self.upper.append(upper)
        self.level.append(0)
        self.child_start.append(-1)
        self.child_count.append(0)
        self.in_head.append(-1)
        self.mutations += 1
        return nid

    def attach_children(
        self, nid: int, children: Sequence[int], weights: Optional[Sequence[float]] = None
    ) -> None:
        """Give a (currently childless) node its children, in slot order.

        Appends one contiguous out-edge range, threads each edge onto its
        child's in-edge list, and lifts topological levels so that
        ``level(parent) > level(child)`` holds again everywhere — the
        invariant the per-level propagation passes rely on.  Used both at
        inner-node construction and when a Shannon expansion mutates a leaf
        into a ⊙ node in place.
        """
        start = len(self.edge_child)
        self.child_start[nid] = start
        self.child_count[nid] = len(children)
        for slot, child in enumerate(children):
            edge = start + slot
            self.edge_child.append(child)
            self.edge_parent.append(nid)
            self.edge_weight.append(1.0 if weights is None else weights[slot])
            self.edge_next.append(self.in_head[child])
            self.in_head[child] = edge
        self.mutations += 1
        self._lift_levels(nid)

    def _lift_levels(self, nid: int) -> None:
        """Restore ``level(parent) > level(child)`` upward from ``nid``."""
        stack = [nid]
        level = self.level
        while stack:
            node = stack.pop()
            start = self.child_start[node]
            count = self.child_count[node]
            if count == 0:
                continue
            highest = 0
            for slot in range(count):
                child_level = level[self.edge_child[start + slot]]
                if child_level > highest:
                    highest = child_level
            need = highest + 1
            if need > level[node]:
                level[node] = need
                edge = self.in_head[node]
                while edge != -1:
                    parent = self.edge_parent[edge]
                    if level[parent] <= need:
                        stack.append(parent)
                    edge = self.edge_next[edge]

    # -- scalar per-node arithmetic ----------------------------------------
    #
    # These replicate repro.prob.dtree.combine_bounds / influence_weight
    # expression for expression (same accumulation order, same min
    # placement) — the bit-identity contract between the per-tuple d-tree
    # and every node-table backend depends on it.

    def child(self, nid: int, slot: int) -> int:
        return self.edge_child[self.child_start[nid] + slot]

    def children_of(self, nid: int) -> List[int]:
        start = self.child_start[nid]
        return [self.edge_child[start + slot] for slot in range(self.child_count[nid])]

    def gap(self, nid: int) -> float:
        return self.upper[nid] - self.lower[nid]

    def refresh_one(self, nid: int) -> bool:
        """Recompute one inner node's bounds from its children; True if moved."""
        kind = self.kind[nid]
        start = self.child_start[nid]
        count = self.child_count[nid]
        lower_col = self.lower
        upper_col = self.upper
        edge_child = self.edge_child
        if kind == KIND_IND_AND:
            lower = upper = 1.0
            for slot in range(count):
                node = edge_child[start + slot]
                lower *= lower_col[node]
                upper *= upper_col[node]
        elif kind == KIND_IND_OR:
            lower = upper = 1.0
            for slot in range(count):
                node = edge_child[start + slot]
                lower *= 1.0 - lower_col[node]
                upper *= 1.0 - upper_col[node]
            lower, upper = 1.0 - lower, 1.0 - upper
        else:  # deterministic-or
            lower = upper = 0.0
            edge_weight = self.edge_weight
            for slot in range(count):
                edge = start + slot
                node = edge_child[edge]
                weight = edge_weight[edge]
                lower += weight * lower_col[node]
                upper += weight * upper_col[node]
        upper = min(1.0, upper)
        if lower_col[nid] == lower and upper_col[nid] == upper:
            return False
        lower_col[nid] = lower
        upper_col[nid] = upper
        return True

    def influence(self, nid: int, slot: int) -> float:
        """Midpoint-linearised derivative w.r.t. child ``slot`` (as in d-trees)."""
        kind = self.kind[nid]
        start = self.child_start[nid]
        if kind == KIND_DET_OR:
            return self.edge_weight[start + slot]
        factor = 1.0
        for index in range(self.child_count[nid]):
            if index == slot:
                continue
            node = self.edge_child[start + index]
            mid = 0.5 * (self.lower[node] + self.upper[node])
            factor *= mid if kind == KIND_IND_AND else 1.0 - mid
        return factor

    # -- propagation passes -------------------------------------------------

    def ancestors_of(self, start: int) -> set:
        """``start`` plus its ancestor closure over the in-edge backlinks."""
        return self.ancestors_of_many((start,))

    def ancestors_of_many(self, starts: Sequence[int]) -> set:
        """The ``starts`` plus their joint ancestor closure (one walk)."""
        seen = set(starts)
        stack = list(seen)
        edge_parent = self.edge_parent
        edge_next = self.edge_next
        in_head = self.in_head
        while stack:
            node = stack.pop()
            edge = in_head[node]
            while edge != -1:
                parent = edge_parent[edge]
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
                edge = edge_next[edge]
        return seen

    def propagate_from(self, start: int) -> set:
        """Refresh ``start`` and every ancestor, one level pass at a time.

        The scalar path keeps the changed-set early exit (a node whose
        in-closure children all kept their bounds is skipped); the
        vectorized path recomputes every ancestor level wholesale — inner
        bounds are always exactly ``combine_bounds`` of the current
        children, so the full recompute is idempotent and the two paths
        land on bit-identical columns.  Returns the ancestor closure.
        """
        return self.propagate_from_many((start,))

    def propagate_from_many(self, starts: Sequence[int]) -> set:
        """Multi-source twin of :meth:`propagate_from` (delta updates).

        Refreshes the joint ancestor closure of ``starts`` in one per-level
        sweep instead of once per source — a probability update re-seeds
        every row carrying the variable and then repairs all their ancestors
        together.  Every start is refreshed unconditionally (its stored
        value or edge weights were just rewritten, so the changed-set test
        would not see the mutation); the returned closure is a pure function
        of the DAG shape, identical under both backends, which is what lets
        callers reason about "touched" nodes without backend caveats.
        """
        sources = set(starts)
        seen = self.ancestors_of_many(sources)
        if self.vectorize:
            self._refresh_levels(
                [node for node in seen if self.child_count[node]]
            )
            return seen
        level = self.level
        order = sorted(seen, key=lambda node: (level[node], node))
        child_start = self.child_start
        child_count = self.child_count
        # Childless sources (re-seeded leaves and closed rows) were rewritten
        # in place by the caller, so they count as changed from the start —
        # refresh_one never sees them and would otherwise leave their
        # parents' early-exit test blind to the mutation.
        changed = {node for node in sources if child_count[node] == 0}
        edge_child = self.edge_child
        for node in order:
            count = child_count[node]
            if count == 0:
                continue
            if node not in sources:
                begin = child_start[node]
                if not any(edge_child[begin + slot] in changed for slot in range(count)):
                    continue
            if self.refresh_one(node):
                changed.add(node)
        return seen

    def bounds_fingerprint(self) -> bytes:
        """The bound columns as raw IEEE-754 bytes — the bit-identity witness.

        Two tables fingerprint equal iff every node's ``[lower, upper]``
        bracket is *bit*-identical (not merely approximately equal), which is
        the currency of the repo's determinism contracts: the lane tests and
        ``benchmarks/bench_lanes.py`` compare stores refined under different
        lane counts by this digest rather than by walking rows.
        """
        return self.lower.tobytes() + self.upper.tobytes()

    def refresh_all_bounds(self, vectorize: Optional[bool] = None) -> None:
        """Recompute every inner node bottom-up (one full per-level sweep).

        The whole-table twin of :meth:`propagate_from` — the benchmark
        quantity of ``benchmarks/bench_refinement_core.py`` and a
        consistency pass for rehydrated store segments.  ``vectorize``
        overrides the table's backend for this call only (so the scalar and
        NumPy passes can be timed against each other on the same table).
        """
        if vectorize is None:
            use_numpy = self.vectorize
        else:
            use_numpy = bool(vectorize) and numpy_or_none() is not None
        inner = [node for node in range(len(self.kind)) if self.child_count[node]]
        if use_numpy:
            self._refresh_levels(inner)
            return
        inner.sort(key=lambda node: (self.level[node], node))
        for node in inner:
            self.refresh_one(node)

    # -- NumPy kernels ------------------------------------------------------

    def _refresh_levels(self, nodes: List[int]) -> None:
        """Refresh ``nodes`` (all inner) as per-level masked array kernels."""
        if not nodes:
            return
        np = numpy_or_none()
        by_level: Dict[int, List[int]] = {}
        level = self.level
        for node in nodes:
            by_level.setdefault(level[node], []).append(node)
        # Views are rebuilt per pass, never cached: appending to an array
        # column reallocates its buffer and would leave a stale view behind.
        views = (
            np.frombuffer(self.kind, dtype=np.int8),
            np.frombuffer(self.lower, dtype=np.float64),
            np.frombuffer(self.upper, dtype=np.float64),
            np.frombuffer(self.child_start, dtype=np.int64),
            np.frombuffer(self.child_count, dtype=np.int64),
            np.frombuffer(self.edge_child, dtype=np.int64),
            np.frombuffer(self.edge_weight, dtype=np.float64),
        )
        for key in sorted(by_level):
            self._refresh_batch(np, views, by_level[key])

    @staticmethod
    def _refresh_batch(np, views, nodes: List[int]) -> None:
        """One level's refresh: per-kind, per-slot masked float64 kernels.

        Accumulates slot-by-slot in ascending order with elementwise
        multiply/add — exactly the loop structure of
        :func:`repro.prob.dtree.combine_bounds` — so every lane computes the
        same float sequence the scalar path would.
        """
        kind_v, lower_v, upper_v, start_v, count_v, child_v, weight_v = views
        ids = np.fromiter(sorted(nodes), dtype=np.int64, count=len(nodes))
        kinds = kind_v[ids]
        for code in (KIND_IND_AND, KIND_IND_OR, KIND_DET_OR):
            sub = ids[kinds == code]
            if not sub.size:
                continue
            starts = start_v[sub]
            counts = count_v[sub]
            width = int(counts.max())
            if code == KIND_DET_OR:
                lower = np.zeros(sub.size)
                upper = np.zeros(sub.size)
                for slot in range(width):
                    mask = counts > slot
                    edges = starts[mask] + slot
                    children = child_v[edges]
                    weights = weight_v[edges]
                    lower[mask] = lower[mask] + weights * lower_v[children]
                    upper[mask] = upper[mask] + weights * upper_v[children]
                lower_v[sub] = lower
                upper_v[sub] = np.minimum(1.0, upper)
                continue
            lower = np.ones(sub.size)
            upper = np.ones(sub.size)
            for slot in range(width):
                mask = counts > slot
                children = child_v[starts[mask] + slot]
                if code == KIND_IND_AND:
                    lower[mask] = lower[mask] * lower_v[children]
                    upper[mask] = upper[mask] * upper_v[children]
                else:
                    lower[mask] = lower[mask] * (1.0 - lower_v[children])
                    upper[mask] = upper[mask] * (1.0 - upper_v[children])
            if code == KIND_IND_AND:
                lower_v[sub] = lower
                upper_v[sub] = np.minimum(1.0, upper)
            else:
                lower_v[sub] = 1.0 - lower
                upper_v[sub] = np.minimum(1.0, 1.0 - upper)

    # -- influence descent --------------------------------------------------

    def open_leaf_influences(self, start: int, start_weight: float) -> List[Tuple[int, float]]:
        """Open leaves under ``start`` with their summed downward influence.

        Walks the reachable sub-DAG in descending level order (parents
        strictly above children), accumulating path derivatives, so a leaf
        shared by several paths gets the *sum* of its path weights in one
        entry.  Deliberately one scalar implementation for both backends:
        the descent is irregular (per-node fan-out), and a single code path
        is what makes leaf choice — and with it step counts — trivially
        backend-independent.
        """
        kind_col = self.kind
        child_start = self.child_start
        child_count = self.child_count
        edge_child = self.edge_child
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            begin = child_start[node]
            for slot in range(child_count[node]):
                child = edge_child[begin + slot]
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        accumulated = {node: 0.0 for node in seen}
        accumulated[start] = start_weight
        level = self.level
        order = sorted(seen, key=lambda node: (-level[node], node))
        found: List[Tuple[int, float]] = []
        for node in order:
            weight = accumulated[node]
            if kind_col[node] == KIND_LEAF:
                if self.upper[node] > self.lower[node]:
                    found.append((node, weight))
                continue
            begin = child_start[node]
            for slot in range(child_count[node]):
                accumulated[edge_child[begin + slot]] += weight * self.influence(node, slot)
        return found

"""Possible-worlds query semantics (the brute-force ground truth).

``Pr[t ∈ Q(D)]`` is the total probability of the worlds whose query answer
contains ``t`` (Section II-C).  For small databases we can evaluate a query in
every world and sum world probabilities per answer tuple; every other
confidence computation path in the repository is validated against this.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.prob.pdb import ProbabilisticDatabase
from repro.storage.relation import Relation

__all__ = ["confidences_by_enumeration"]

DataTuple = Tuple[object, ...]

#: A deterministic query: maps a world instance (table name -> relation) to an
#: answer relation over data columns only.
DeterministicQuery = Callable[[Dict[str, Relation]], Relation]


def confidences_by_enumeration(
    database: ProbabilisticDatabase,
    query: DeterministicQuery,
    max_variables: int = 22,
) -> Dict[DataTuple, float]:
    """Exact confidences of all distinct answer tuples by world enumeration.

    Parameters
    ----------
    database:
        The probabilistic database.
    query:
        A function evaluating the query on one deterministic world instance.
    max_variables:
        Guard against exponential blow-up; raise if the database has more
        Boolean variables than this.
    """
    confidences: Dict[DataTuple, float] = {}
    for world in database.worlds(max_variables=max_variables):
        answer = query(world.instance)
        for data in {tuple(row) for row in answer}:
            confidences[data] = confidences.get(data, 0.0) + world.probability
    return confidences

"""Propositional formulas over Boolean random variables: DNF lineage and 1OF.

The answer to a conjunctive query on a tuple-independent database associates
each distinct answer tuple with a DNF formula over the input variables (one
clause per derivation, one literal per contributing input tuple).  This module
provides:

* a small formula algebra (:class:`Var`, :class:`And`, :class:`Or`,
  :class:`Top`, :class:`Bottom`) used to represent factored *one-occurrence
  form* (1OF) formulas, whose probability is computable in linear time because
  sub-formulas over disjoint variable sets are independent;
* a :class:`DNF` container for positive-clause DNF lineage;
* exact probability computation for arbitrary DNFs via Shannon expansion with
  memoisation and independent-component decomposition (used as ground truth in
  tests and as the fallback for intractable queries);
* a brute-force enumeration evaluator used to validate everything else.
"""

from __future__ import annotations

import abc

from itertools import product as cartesian_product
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ProbabilityError

__all__ = [
    "Formula",
    "Var",
    "And",
    "Or",
    "Top",
    "Bottom",
    "DNF",
    "dnf_probability",
    "dnf_probability_enumeration",
    "is_read_once",
]

Clause = FrozenSet[int]


class Formula(abc.ABC):
    """A positive propositional formula over integer variables."""

    @abc.abstractmethod
    def variables(self) -> FrozenSet[int]:
        """Set of variables occurring in the formula."""

    @abc.abstractmethod
    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Truth value under a (total) assignment."""

    @abc.abstractmethod
    def probability(self, probabilities: Mapping[int, float]) -> float:
        """Probability assuming the formula is in one-occurrence form.

        Correct whenever sibling sub-formulas use disjoint variable sets (the
        defining property of 1OF); raises :class:`ProbabilityError` if a
        variable occurs more than once anywhere in the tree.
        """

    @abc.abstractmethod
    def occurrence_count(self) -> Dict[int, int]:
        """Number of occurrences of each variable in the syntax tree."""

    def is_one_occurrence_form(self) -> bool:
        """True if every variable occurs at most once in the syntax tree."""
        return all(count <= 1 for count in self.occurrence_count().values())

    def to_dnf(self) -> "DNF":
        """Expand to DNF (exponential in the worst case; used in tests only)."""
        return DNF(self._dnf_clauses())

    @abc.abstractmethod
    def _dnf_clauses(self) -> Set[Clause]:
        ...


class Top(Formula):
    """The constant true formula (lineage of a tuple present in all worlds)."""

    def variables(self) -> FrozenSet[int]:
        return frozenset()

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return True

    def probability(self, probabilities: Mapping[int, float]) -> float:
        return 1.0

    def occurrence_count(self) -> Dict[int, int]:
        return {}

    def _dnf_clauses(self) -> Set[Clause]:
        return {frozenset()}

    def __str__(self) -> str:
        return "true"

    def __eq__(self, other) -> bool:
        return isinstance(other, Top)

    def __hash__(self) -> int:
        return hash("Top")


class Bottom(Formula):
    """The constant false formula (empty lineage)."""

    def variables(self) -> FrozenSet[int]:
        return frozenset()

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return False

    def probability(self, probabilities: Mapping[int, float]) -> float:
        return 0.0

    def occurrence_count(self) -> Dict[int, int]:
        return {}

    def _dnf_clauses(self) -> Set[Clause]:
        return set()

    def __str__(self) -> str:
        return "false"

    def __eq__(self, other) -> bool:
        return isinstance(other, Bottom)

    def __hash__(self) -> int:
        return hash("Bottom")


class Var(Formula):
    """A single positive literal."""

    __slots__ = ("variable",)

    def __init__(self, variable: int):
        self.variable = variable

    def variables(self) -> FrozenSet[int]:
        return frozenset({self.variable})

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return bool(assignment[self.variable])

    def probability(self, probabilities: Mapping[int, float]) -> float:
        try:
            return probabilities[self.variable]
        except KeyError:
            raise ProbabilityError(f"no probability for variable {self.variable}") from None

    def occurrence_count(self) -> Dict[int, int]:
        return {self.variable: 1}

    def _dnf_clauses(self) -> Set[Clause]:
        return {frozenset({self.variable})}

    def __str__(self) -> str:
        return f"x{self.variable}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and self.variable == other.variable

    def __hash__(self) -> int:
        return hash(("Var", self.variable))


class _Nary(Formula):
    """Shared behaviour of AND/OR nodes."""

    symbol = "?"

    def __init__(self, children: Iterable[Formula]):
        self.children: Tuple[Formula, ...] = tuple(children)
        if not self.children:
            raise ProbabilityError(f"{type(self).__name__} needs at least one child")

    def variables(self) -> FrozenSet[int]:
        result: FrozenSet[int] = frozenset()
        for child in self.children:
            result |= child.variables()
        return result

    def occurrence_count(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for child in self.children:
            for variable, count in child.occurrence_count().items():
                counts[variable] = counts.get(variable, 0) + count
        return counts

    def _check_disjoint(self) -> None:
        counts = self.occurrence_count()
        repeated = sorted(v for v, count in counts.items() if count > 1)
        if repeated:
            raise ProbabilityError(
                "formula is not in one-occurrence form; repeated variables "
                f"{repeated[:5]}{'...' if len(repeated) > 5 else ''}"
            )

    def __str__(self) -> str:
        return "(" + f" {self.symbol} ".join(str(child) for child in self.children) + ")"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))


class And(_Nary):
    """Conjunction; probability is the product of independent children."""

    symbol = "∧"

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return all(child.evaluate(assignment) for child in self.children)

    def probability(self, probabilities: Mapping[int, float]) -> float:
        self._check_disjoint()
        result = 1.0
        for child in self.children:
            result *= child.probability(probabilities)
        return result

    def _dnf_clauses(self) -> Set[Clause]:
        clause_sets = [child._dnf_clauses() for child in self.children]
        result: Set[Clause] = {frozenset()}
        for clauses in clause_sets:
            result = {
                existing | addition for existing in result for addition in clauses
            }
        return result


class Or(_Nary):
    """Disjunction; probability is ``1 - prod(1 - p)`` over independent children."""

    symbol = "∨"

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return any(child.evaluate(assignment) for child in self.children)

    def probability(self, probabilities: Mapping[int, float]) -> float:
        self._check_disjoint()
        result = 1.0
        for child in self.children:
            result *= 1.0 - child.probability(probabilities)
        return 1.0 - result

    def _dnf_clauses(self) -> Set[Clause]:
        result: Set[Clause] = set()
        for child in self.children:
            result |= child._dnf_clauses()
        return result


def is_read_once(formula: Formula) -> bool:
    """Alias for :meth:`Formula.is_one_occurrence_form` (paper terminology: 1OF)."""
    return formula.is_one_occurrence_form()


class DNF:
    """A DNF of positive clauses — the relational lineage encoding.

    Clauses are frozensets of variable ids; the empty DNF is false and a DNF
    containing the empty clause is true.  Subsumed clauses are *not* removed
    automatically (query evaluation never produces them for queries without
    self-joins), but :meth:`minimised` is available.

    ``_canonical`` caches the order-canonical serialisation computed by
    :func:`repro.prob.dtree.canonical_clauses` — the parallel executor
    serialises the same lineage once per *task* it builds, so the sort is
    paid once per DNF object instead.
    """

    __slots__ = ("clauses", "_canonical")

    def __init__(self, clauses: Iterable[Iterable[int]] = ()):
        self.clauses: FrozenSet[Clause] = frozenset(frozenset(c) for c in clauses)
        self._canonical: Optional[Tuple[Tuple[int, ...], ...]] = None

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]]) -> "DNF":
        """Build a DNF with one clause per row of variable ids."""
        return cls(frozenset(row) for row in rows)

    def variables(self) -> FrozenSet[int]:
        result: FrozenSet[int] = frozenset()
        for clause in self.clauses:
            result |= clause
        return result

    def is_false(self) -> bool:
        return not self.clauses

    def is_true(self) -> bool:
        return frozenset() in self.clauses

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __eq__(self, other) -> bool:
        return isinstance(other, DNF) and self.clauses == other.clauses

    def __hash__(self) -> int:
        return hash(self.clauses)

    def __str__(self) -> str:
        if self.is_false():
            return "false"
        parts = []
        for clause in sorted(self.clauses, key=lambda c: sorted(c)):
            if not clause:
                parts.append("true")
            else:
                parts.append("".join(f"x{v}" for v in sorted(clause)))
        return " ∨ ".join(parts)

    def __or__(self, other: "DNF") -> "DNF":
        return DNF(self.clauses | other.clauses)

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Truth value under a total assignment."""
        return any(all(assignment[v] for v in clause) for clause in self.clauses)

    def condition(self, variable: int, value: bool) -> "DNF":
        """Shannon cofactor: the DNF with ``variable`` fixed to ``value``."""
        clauses: Set[Clause] = set()
        for clause in self.clauses:
            if variable in clause:
                if value:
                    clauses.add(clause - {variable})
                # a positive literal under value=False removes the clause
            else:
                clauses.add(clause)
        return DNF(clauses)

    def minimised(self) -> "DNF":
        """Remove subsumed clauses (a clause containing another clause)."""
        clauses = sorted(self.clauses, key=len)
        kept: List[Clause] = []
        for clause in clauses:
            if not any(other <= clause for other in kept):
                kept.append(clause)
        return DNF(kept)

    def to_formula(self) -> Formula:
        """Convert to the formula algebra (not factored; variables may repeat)."""
        if self.is_false():
            return Bottom()
        if self.is_true():
            return Top()
        disjuncts: List[Formula] = []
        for clause in sorted(self.clauses, key=lambda c: sorted(c)):
            literals = [Var(v) for v in sorted(clause)]
            disjuncts.append(literals[0] if len(literals) == 1 else And(literals))
        return disjuncts[0] if len(disjuncts) == 1 else Or(disjuncts)


# ---------------------------------------------------------------------------
# Exact probability of arbitrary DNFs
# ---------------------------------------------------------------------------


def dnf_probability_enumeration(dnf: DNF, probabilities: Mapping[int, float]) -> float:
    """Probability by enumerating all assignments of the DNF's variables.

    Exponential; used only to validate the other evaluators on small inputs.
    """
    variables = sorted(dnf.variables())
    if not variables:
        return 1.0 if dnf.is_true() else 0.0
    total = 0.0
    for values in cartesian_product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if dnf.evaluate(assignment):
            weight = 1.0
            for variable, value in assignment.items():
                p = probabilities[variable]
                weight *= p if value else 1.0 - p
            total += weight
    return total


def _connected_components(dnf: DNF) -> List[DNF]:
    """Split a DNF into sub-DNFs over disjoint variable sets (independent factors)."""
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for clause in dnf.clauses:
        for variable in clause:
            parent.setdefault(variable, variable)
        clause_list = list(clause)
        for first, second in zip(clause_list, clause_list[1:]):
            union(first, second)

    groups: Dict[int, Set[Clause]] = {}
    constant_clauses: Set[Clause] = set()
    for clause in dnf.clauses:
        if not clause:
            constant_clauses.add(clause)
            continue
        root = find(next(iter(clause)))
        groups.setdefault(root, set()).add(clause)
    components = [DNF(clauses) for clauses in groups.values()]
    if constant_clauses:
        components.append(DNF(constant_clauses))
    return components


def dnf_probability(dnf: DNF, probabilities: Mapping[int, float]) -> float:
    """Exact probability of a positive DNF via Shannon expansion.

    The computation decomposes the DNF into independent components (disjoint
    variable sets), memoises cofactors, and picks the most frequent variable
    to branch on.  Worst-case exponential (confidence computation is
    #P-complete in general) but fast for the lineage of hierarchical queries
    and adequate as ground truth for the TPC-H workloads at test scale.
    """
    memo: Dict[FrozenSet[Clause], float] = {}

    def solve(current: DNF) -> float:
        if current.is_true():
            return 1.0
        if current.is_false():
            return 0.0
        key = current.clauses
        cached = memo.get(key)
        if cached is not None:
            return cached

        components = _connected_components(current)
        if len(components) > 1:
            # Components use disjoint variables, hence are independent:
            # P(or of components) = 1 - prod(1 - P(component)).
            none_true = 1.0
            for component in components:
                none_true *= 1.0 - solve(component)
            result = 1.0 - none_true
        else:
            result = _shannon(current)
        memo[key] = result
        return result

    def _shannon(current: DNF) -> float:
        counts: Dict[int, int] = {}
        for clause in current.clauses:
            for variable in clause:
                counts[variable] = counts.get(variable, 0) + 1
        branch_variable = max(sorted(counts), key=lambda v: counts[v])
        p = probabilities[branch_variable]
        positive = solve(current.condition(branch_variable, True))
        negative = solve(current.condition(branch_variable, False))
        return p * positive + (1.0 - p) * negative

    return solve(dnf.minimised())

"""Shared-lineage DAG on a columnar node table: compile once, refine in passes.

The per-tuple decomposition trees of :mod:`repro.prob.dtree` treat every
answer tuple's lineage as an island: identical subformulas that occur under
several tuples (the same supplier/partsupp clauses recurring under many
brands in the TPC-H workloads) are Shannon-expanded and bounded once *per
tuple*.  This module replaces the islands with one **hash-consed AND/OR DAG**
per probability space — and since PR 6 the DAG is not an object graph but a
:class:`repro.prob.nodetable.NodeTable`: node kind, child ranges, levels and
lower/upper bounds live in parallel flat arrays, a node is an integer id
(``nid``, assigned in creation order — the deterministic scheduler
tiebreak), and bound propagation runs as batched per-level passes over the
columns (NumPy kernels when the ``fast`` extra is installed, plain loops
otherwise; bit-identical either way).

* every subformula (a subsumption-free positive DNF) is interned in a
  :class:`SharedLineageStore` keyed by its clause set, so structurally equal
  subformulas are represented by a single table row no matter how many
  tuples' lineages contain them;
* each row memoises its current lower/upper probability bounds (degenerate
  once the subformula is fully compiled, i.e. its exact probability);
* a refinement step — a Shannon cobranch on a shared variable — mutates one
  row *in place* (a ``leaf`` becomes a ``det_or`` under the same nid) and
  propagates the tightened bounds level by level to **all** ancestors, and
  therefore to every tuple whose lineage contains the refined node;
* a :class:`SharedDTree` is a per-tuple *view* over the store: a root nid
  plus a private influence-ordered frontier.  It is call-compatible with
  :class:`repro.prob.dtree.DTree` (``lower``/``upper``, ``bounds``/``gap``/
  ``is_exact``/``refine``/``refine_to_target``/``result``), so the
  top-k/threshold scheduler and the exact finishing driver
  :func:`repro.prob.dtree.refine_to_budget` run on views unchanged.

The decomposition rules, branch-variable choice, and bound arithmetic mirror
:mod:`repro.prob.dtree` operation for operation (the table's scalar and
vectorized refresh kernels replicate ``combine_bounds`` exactly), so the
exact probability the DAG computes for a clause set is **bit-identical** to
what a per-tuple d-tree computes for the same clause set — sharing changes
how much work is performed, never a single float of the answer.

Because nids stay valid for the store's lifetime (the table is append-only;
mutation is in place), a store is *shippable*: :meth:`export_segment` /
:meth:`from_segment` serialise the columns plus the open-leaf DNFs and the
intern map, which is how :mod:`repro.sprout.parallel` moves whole stores to
worker processes instead of pickling per-tuple trees.

:class:`ClauseInterner` deduplicates the clause frozensets themselves (the
batch pipeline's :func:`repro.sprout.onescan.columnar_lineage` emits interned
clauses directly), and :class:`SharedDTreeCache` is the engine-side drop-in
for :class:`repro.prob.dtree.DTreeCache` when shared-lineage mode is on:
same ``get``/``hits``/``misses``/``evictions``/``clear`` surface,
node-count-bounded.

See ``docs/shared_lineage.md`` and ``docs/refinement_core.md`` for the
user-facing guides.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from heapq import heappop, heappush
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ProbabilityError
from repro.faults import fault_point
from repro.prob.delta import DeltaReport, apply_probability_update
from repro.prob.delta import retire_view as _retire_view
from repro.prob.dtree import (
    _REFRESH_BASE,
    _REFRESH_FACTOR,
    ApproxResult,
    _budget_met,
    _cofactor_true,
    branch_variable,
    canonical_clauses,
    dnf_from_canonical,
    leaf_bounds,
)
from repro.prob.formulas import DNF, _connected_components
from repro.prob.nodetable import (
    KIND_CLOSED,
    KIND_DET_OR,
    KIND_IND_AND,
    KIND_IND_OR,
    KIND_LEAF,
    NodeTable,
)

__all__ = [
    "ClauseInterner",
    "SharedLineageStore",
    "SharedDTree",
    "SharedDTreeCache",
]

Clause = FrozenSet[int]

#: Node-count budget after which :class:`SharedDTreeCache` resets its store's
#: intern table (live views keep working; see the cache docstring).
DEFAULT_MAX_NODES = 2_000_000


class ClauseInterner:
    """Interns clause frozensets: one shared object and a dense id per clause.

    Candidate lineages in top-k/threshold workloads repeat the same clauses
    across many answer tuples; interning makes every occurrence share a
    single ``frozenset`` object (hashing and equality then hit the same
    cached hash).  A dense integer id per clause is also available as a
    compact handle — assigned lazily by :meth:`id_of`, so the hot
    :meth:`intern` path carries no id bookkeeping.
    """

    __slots__ = ("_canonical", "_ids")

    def __init__(self) -> None:
        self._canonical: Dict[Clause, Clause] = {}
        self._ids: Dict[Clause, int] = {}

    def __len__(self) -> int:
        return len(self._canonical)

    def intern(self, clause: Iterable[int]) -> Clause:
        """The canonical shared frozenset for ``clause`` (registering it)."""
        key = frozenset(clause)
        found = self._canonical.get(key)
        if found is None:
            self._canonical[key] = key
            return key
        return found

    def id_of(self, clause: Iterable[int]) -> int:
        """The dense id of an interned clause (assigned lazily on first ask,
        so callers that only ever :meth:`intern` pay nothing for ids)."""
        key = self.intern(clause)
        index = self._ids.get(key)
        if index is None:
            index = len(self._ids)
            self._ids[key] = index
        return index


class SharedLineageStore:
    """The hash-consed AND/OR DAG shared by every tuple of one probability space.

    Nodes live in a columnar :class:`~repro.prob.nodetable.NodeTable`;
    ``build`` interns subformulas with structural deduplication (two DNFs
    with the same clause set map to the same nid), ``expand_leaf`` performs
    one Shannon cobranch and propagates the tightened bounds to all
    ancestors — one batched pass per topological level — and
    ``refine_most_valuable`` implements the scheduler primitive: among the
    frontiers of a set of gating views, expand the single node with the
    largest bound-width mass summed over the tuples it gates.

    ``steps`` counts the store-global **logical refinement steps** — each
    Shannon expansion once, no matter how many tuples it serves.
    ``node_count`` counts nids created since the last :meth:`reset_nodes`
    (the budget quantity); ``len(store.table)`` is the total table length.
    All lookups must use probabilities from one probabilistic database
    (:meth:`add_probabilities` guards this, like
    :class:`repro.prob.dtree.DTreeCache` does).
    """

    def __init__(
        self,
        interner: Optional[ClauseInterner] = None,
        max_nodes: Optional[int] = None,
        vectorize: Optional[bool] = None,
    ):
        self.probabilities: Dict[int, float] = {}
        self.interner = interner if interner is not None else ClauseInterner()
        self.table = NodeTable(vectorize=vectorize)
        self.steps = 0
        self.node_count = 0
        #: Intern-table budget enforced *during refinement* too: every leaf
        #: expansion builds new nodes, so a budget checked only at view
        #: construction would let a single huge compilation grow the table
        #: arbitrarily far past it.  ``None`` disables the in-refinement check.
        self.max_nodes = max_nodes
        #: Incremented by every :meth:`reset_nodes` — holders of node
        #: references (the view cache) watch this to drop structures from
        #: earlier epochs.  The columnar table itself is append-only for the
        #: store's lifetime; rows are reclaimed when the owning cache's
        #: ``clear()`` swaps in a fresh store.
        self.reset_epoch = 0
        #: Rows counted as potential garbage by :meth:`retire_view`.  Purely
        #: accounting (the table is append-only); crossing ``max_nodes``
        #: triggers an epoch reset.  Zeroed by :meth:`reset_nodes`.
        self.retired_nodes = 0
        self._nodes: Dict[FrozenSet[Clause], int] = {}
        #: Open-leaf payloads: the DNF a leaf nid will cobranch on.  Popped
        #: on expansion; deliberately *not* dropped by :meth:`reset_nodes`,
        #: because live views keep refining leaves from earlier epochs.
        self._leaf_dnf: Dict[int, DNF] = {}
        #: Probability-dependency registries for delta updates
        #: (:mod:`repro.prob.delta`).  ``_const_vars`` records, per closed
        #: product row, the member variables *in the fold order of the
        #: original build* (so a re-seed replays the same float sequence);
        #: ``_branch_var`` the Shannon variable of each ⊙ row; ``_var_index``
        #: maps a variable to every row registered as depending on it
        #: directly (append-only — stale entries, e.g. a leaf later expanded,
        #: are filtered by kind at update time).  Like ``_leaf_dnf``, these
        #: survive :meth:`reset_nodes`: live views keep being updatable.
        self._const_vars: Dict[int, Tuple[int, ...]] = {}
        self._branch_var: Dict[int, int] = {}
        self._var_index: Dict[int, List[int]] = {}
        #: Concurrency discipline (the query service's contract).  The
        #: re-entrant lock serialises every mutating entry point —
        #: construction, expansion, delta updates, retirement, epoch resets
        #: — so a store shared between a refinement thread and reader
        #: threads (stats endpoints) never interleaves a mutation with
        #: another mutation.  The pin count implements the *epoch* half:
        #: while any request holds views mid-decision (``pinned()``), a
        #: budget-triggered :meth:`reset_nodes` is deferred to the last
        #: unpin, so ``reset_epoch`` never advances beneath an in-flight
        #: decision and the view cache never drops entries a request is
        #: still refining.  The lock is deliberately *not* part of
        #: :meth:`export_segment` — segments ship between processes, locks
        #: do not.
        self._lock = threading.RLock()
        self._pins = 0
        self._reset_pending = False

    def __len__(self) -> int:
        return len(self._nodes)

    # -- concurrency discipline --------------------------------------------

    @property
    def lock(self) -> "threading.RLock":
        """The store's re-entrant lock (shared with its owning cache)."""
        return self._lock

    def pin(self) -> None:
        """Enter a decision epoch: defer intern-table resets until unpin."""
        with self._lock:
            self._pins += 1

    def unpin(self) -> None:
        """Leave a decision epoch; the last unpin runs any deferred reset."""
        with self._lock:
            self._pins -= 1
            if self._pins <= 0:
                self._pins = 0
                if self._reset_pending:
                    self._reset_pending = False
                    self.reset_nodes()

    @contextmanager
    def pinned(self):
        """Context manager around one decision: pin, run, unpin.

        :func:`repro.sprout.topk.run_decision` wraps every shared-store
        decision in this, which is what makes the node-budget epoch reset
        safe under the query service: the reset (and the view-cache
        eviction keyed on ``reset_epoch``) lands *between* requests, never
        in the middle of one — preserving the bit-identical-to-serial
        determinism contract.
        """
        self.pin()
        try:
            yield self
        finally:
            self.unpin()

    # -- probability space -------------------------------------------------

    def add_probabilities(self, dnf: DNF, probabilities: Mapping[int, float]) -> None:
        """Record the marginals ``dnf`` needs, guarding the shared space."""
        with self._lock:
            self._add_probabilities(dnf, probabilities)

    def _add_probabilities(self, dnf: DNF, probabilities: Mapping[int, float]) -> None:
        recorded = self.probabilities
        for variable in dnf.variables():
            value = probabilities.get(variable)
            if value is None:
                raise ProbabilityError(f"no probability for variable {variable}")
            existing = recorded.get(variable)
            if existing is None:
                recorded[variable] = value
            elif existing != value:
                raise ProbabilityError(
                    f"SharedLineageStore is bound to one probability space: "
                    f"variable {variable} was interned with probability "
                    f"{existing}, now given {value}"
                )

    # -- hash-consed construction ------------------------------------------

    def _new_node(self, kind: int, lower: float = 0.0, upper: float = 1.0) -> int:
        self.node_count += 1
        return self.table.new_node(kind, lower, upper)

    def _constant(self, value: float) -> int:
        return self._new_node(KIND_CLOSED, value, value)

    def build(self, dnf: DNF) -> int:
        """The interned nid for a subsumption-free ``dnf`` (built on a miss).

        Mirrors ``DTree._build`` rule for rule: constants, single clause,
        independent-and factoring of the common variable prefix,
        independent-or splitting into connected components, open leaf
        otherwise — except that every non-constant result is interned by its
        clause set, so a subformula reached from several tuples (or several
        cofactor paths of one tuple) is compiled and refined exactly once.
        """
        if dnf.is_true():
            return self._constant(1.0)
        if dnf.is_false():
            return self._constant(0.0)
        nid = self._nodes.get(dnf.clauses)
        if nid is not None:
            return nid
        clauses = list(dnf.clauses)
        if len(clauses) == 1:
            members = tuple(clauses[0])
            weight = 1.0
            for variable in members:
                weight *= self.probabilities[variable]
            nid = self._new_node(KIND_CLOSED, weight, weight)
            self._nodes[dnf.clauses] = nid
            self._register_product(nid, members)
            return nid
        common = frozenset.intersection(*clauses)
        if common:
            members = tuple(common)
            weight = 1.0
            for variable in members:
                weight *= self.probabilities[variable]
            rest = DNF(clause - common for clause in clauses)
            constant = self._constant(weight)
            self._register_product(constant, members)
            return self._inner(
                KIND_IND_AND, [constant, self.build(rest)], dnf.clauses
            )
        components = _connected_components(dnf)
        if len(components) > 1:
            children = [self.build(component) for component in components]
            return self._inner(KIND_IND_OR, children, dnf.clauses)
        nid = self._leaf(dnf)
        self._nodes[dnf.clauses] = nid
        return nid

    def _inner(
        self,
        kind: int,
        children: List[int],
        key: FrozenSet[Clause],
        weights: Optional[Sequence[float]] = None,
    ) -> int:
        nid = self._new_node(kind)
        self.table.attach_children(nid, children, weights)
        self.table.refresh_one(nid)
        self._nodes[key] = nid
        return nid

    def _register_dependents(self, nid: int, variables: Iterable[int]) -> None:
        """Index ``nid`` under each variable its stored numbers depend on."""
        index = self._var_index
        for variable in variables:
            index.setdefault(variable, []).append(nid)

    def _register_product(self, nid: int, members: Tuple[int, ...]) -> None:
        """Record a closed product row's members (in build fold order)."""
        self._const_vars[nid] = members
        self._register_dependents(nid, members)

    def _leaf(self, dnf: DNF) -> int:
        """An open leaf with the construction bounds of ``dtree._Leaf``."""
        lower, upper = leaf_bounds(dnf, self.probabilities)
        nid = self._new_node(KIND_LEAF, lower, upper)
        self._leaf_dnf[nid] = dnf
        self._register_dependents(nid, dnf.variables())
        return nid

    def build_root(self, dnf: DNF) -> int:
        """The interned root nid for a raw lineage DNF (minimised, like ``DTree``)."""
        with self._lock:
            return self.build(dnf.minimised())

    # -- shared refinement --------------------------------------------------

    def _commit_expansion(
        self, leaf: int, branch: int, positive: DNF, negative: DNF
    ) -> None:
        """Commit one precomputed Shannon cobranch, deferring propagation.

        The serial half of a refinement round: the branch variable and the
        two cofactor DNFs were computed outside (a pure function of the
        leaf's DNF, safe to run on any lane), but node creation must stay
        sequential — nids are assigned in creation order, and that order is
        the scheduler's deterministic tiebreak.  Bound propagation is *not*
        performed here; the caller flushes all of a round's expansions in
        one batched :meth:`~repro.prob.nodetable.NodeTable.propagate_from_many`
        pass (propagation is idempotent bottom-up recomputation, so batching
        lands on the same columns as per-expansion passes).
        """
        table = self.table
        if table.kind[leaf] != KIND_LEAF:
            raise ProbabilityError("expansion committed on a non-leaf shared node")
        del self._leaf_dnf[leaf]
        p = self.probabilities[branch]
        children = [self.build(positive), self.build(negative)]
        table.kind[leaf] = KIND_DET_OR
        table.attach_children(leaf, children, [p, 1.0 - p])
        self._branch_var[leaf] = branch
        self._register_dependents(leaf, (branch,))
        self.steps += 1

    def expand_leaf(self, leaf: int) -> None:
        """One Shannon cobranch: mutate leaf ``nid`` into a ⊙ row, propagate bounds.

        The branch variable is the most frequent one (smallest id on ties) —
        the deterministic rule of ``DTree._expand_leaf`` — so the compiled
        shape, and with it the exact probability, of a clause set is the
        same as the per-tuple engine's.  The in-place mutation is what makes
        the refinement *shared*: every parent, under every tuple, sees the
        tightened bounds via the per-level propagation pass.
        """
        with self._lock:
            if self.table.kind[leaf] != KIND_LEAF:
                raise ProbabilityError("expand_leaf() called on a non-leaf shared node")
            dnf = self._leaf_dnf[leaf]
            branch = branch_variable(dnf)
            self._commit_expansion(
                leaf, branch, _cofactor_true(dnf, branch), dnf.condition(branch, False)
            )
            self.table.propagate_from(leaf)
            if self.max_nodes is not None and self.node_count > self.max_nodes:
                # Keep the documented bound even for one giant compilation:
                # the intern table is a pure accelerator, so dropping it
                # mid-refinement costs only future sharing — live nids stay
                # valid in the columnar table.  (Deferred while pinned.)
                self.reset_nodes()

    def plan_round(
        self, views: Sequence["SharedDTree"], width: int
    ) -> List[Tuple[int, List[Tuple["SharedDTree", float]]]]:
        """Plan one refinement round: up to ``width`` leaves, most valuable first.

        The frontier partitioner of the lane machinery.  Each gating view
        contributes its current most influential open leaf (influence ×
        bound gap, measured against *that view's* root); contributions to
        the same shared nid add up — the "bound-width mass summed over the
        tuples it gates".  The plan is the top ``width`` distinct leaves by
        summed score, ties towards the oldest nid (creation order), listed
        in rank order — which is also the commit order.  A pure function of
        the frozen table state and the views' frontiers, which is what makes
        the round schedule — and with it every decided set, bound, and step
        count — independent of how many lanes later compute the cofactors.

        Each entry is ``(leaf nid, [(view, path weight), ...])``; the leaves
        are distinct by construction (every view contributes at most one
        entry and equal leaves merge), so the planned expansions touch
        disjoint rows and their compute phases are independent.

        Must be called under the store lock (every public caller is).
        """
        contributions: Dict[int, List[Tuple["SharedDTree", float]]] = {}
        scores: Dict[int, float] = {}
        # Candidates with identical lineage share one view object; process
        # it once or its influence would double-count (and its heap would
        # absorb the expansion twice).
        seen_views: set = set()
        for view in views:
            if id(view) in seen_views:
                continue
            seen_views.add(id(view))
            entry = view._peek()
            if entry is None:
                continue
            influence, weight, leaf = entry
            scores[leaf] = scores.get(leaf, 0.0) + influence
            contributions.setdefault(leaf, []).append((view, weight))
        ranked = sorted(scores, key=lambda nid: (-scores[nid], nid))
        return [(leaf, contributions[leaf]) for leaf in ranked[:width]]

    def refine_round(
        self,
        views: Sequence["SharedDTree"],
        width: int,
        lane_pool: Optional["object"] = None,
        deadline: Optional["object"] = None,
    ) -> int:
        """One data-parallel refinement round over the gating ``views``.

        Four phases, metered as one logical step per committed expansion no
        matter how many lanes ran or how many tuples each expansion serves:

        1. **plan** (under the lock): :meth:`plan_round` freezes up to
           ``width`` distinct most-valuable leaves, in commit order;
        2. **compute** (the only parallel phase): each planned leaf's branch
           variable and cofactor DNFs are derived from its open-leaf DNF — a
           pure computation that never touches the table — either inline
           (``lane_pool=None``, the lanes=0 schedule) or fanned across the
           pool's lanes, which own disjoint slices of the plan;
        3. **commit** (serial, in plan order): each expansion mutates its
           leaf row in place via :meth:`_commit_expansion` — node creation
           order, and with it every nid, is identical for lanes=0/1/N;
        4. **flush + absorb**: one batched
           :meth:`~repro.prob.nodetable.NodeTable.propagate_from_many` pass
           repairs the joint ancestor closure (the per-lane bound updates
           buffered by the deferred commits), then every contributing view
           absorbs its expansion in plan order.

        Returns the expansions performed (0 when no gating view has an open
        frontier left).  ``refine_round(views, 1)`` is exactly the legacy
        most-valuable-node primitive.

        ``deadline`` (a :class:`repro.deadline.Deadline`) is consulted once,
        at entry — *before* the round is planned, so an expired deadline
        returns 0 with the table untouched and every bound exactly where the
        previous round left it (sound by monotonicity).  A round is never
        interrupted mid-flight: that is the invariant that keeps step-metered
        results bit-identical while only the stopping point tracks the clock.

        The ``store.propagate`` fault seam also fires here at entry, before
        any mutation, so an injected fault leaves the store consistent: the
        caller sees a structured error and a clean retry (or the next
        request) resumes from sound bounds.
        """
        if deadline is not None and deadline.expired():
            return 0
        fault_point("store.propagate")
        with self._lock:
            plan = self.plan_round(views, width)
            if not plan:
                return 0
            leaves = [leaf for leaf, _ in plan]
            leaf_dnf = self._leaf_dnf

            def cofactors(leaf: int) -> Tuple[int, DNF, DNF]:
                dnf = leaf_dnf[leaf]
                branch = branch_variable(dnf)
                return branch, _cofactor_true(dnf, branch), dnf.condition(branch, False)

            if lane_pool is None:
                computed = [cofactors(leaf) for leaf in leaves]
            else:
                computed = lane_pool.map(cofactors, leaves)
            for leaf, (branch, positive, negative) in zip(leaves, computed):
                self._commit_expansion(leaf, branch, positive, negative)
            self.table.propagate_from_many(leaves)
            for leaf, contributors in plan:
                for view, weight in contributors:
                    view._absorb_expansion(leaf, weight)
            if self.max_nodes is not None and self.node_count > self.max_nodes:
                self.reset_nodes()
            return len(plan)

    def refine_most_valuable(self, views: Sequence["SharedDTree"]) -> int:
        """Expand the shared node with the largest summed frontier value.

        The width-1 refinement round: the single most valuable node across
        the gating views is expanded once, which tightens every contributing
        tuple (and any non-gating tuple that shares it) in the same logical
        step.  Ties break towards the oldest nid (creation order), keeping
        the choice deterministic.  Returns the number of expansions
        performed (0 when no view has an open frontier left).
        """
        return self.refine_round(views, 1)

    # -- delta updates (streaming) ------------------------------------------

    def update_probability(self, variable: int, probability: float) -> DeltaReport:
        """Move one marginal and delta-propagate: re-seed every row carrying
        ``variable`` (closed products, open-leaf bounds, ⊙ edge weights) and
        repair their joint ancestor closure in one multi-source per-level
        pass (:func:`repro.prob.delta.apply_probability_update`).  After the
        call every closed row holds the bit-identical value a from-scratch
        compilation under the new space would hold.  The returned
        :class:`~repro.prob.delta.DeltaReport` lists the touched nids —
        views whose root is outside it are provably unaffected."""
        with self._lock:
            return apply_probability_update(self, variable, probability)

    def retire_view(self, view: "SharedDTree") -> int:
        """Retire a deleted tuple's view: count its reachable rows as
        potential garbage and reset the intern generation once the retired
        total passes ``max_nodes`` (:func:`repro.prob.delta.retire_view`)."""
        with self._lock:
            return _retire_view(self, view)

    def reset_nodes(self) -> None:
        """Drop the intern table and the clause interner (pure accelerators —
        live views keep their nids and stay fully functional; new builds and
        extractions start fresh).  Resetting both is what keeps the intern
        structures bounded by the node budget: the interner grows with every
        distinct clause ever extracted, so it must not outlive the nodes
        built from it.  The columnar rows themselves are reclaimed when the
        owning cache's ``clear()`` swaps in a fresh store.

        While any decision is pinned (:meth:`pinned`) the reset is deferred
        to the last unpin: advancing ``reset_epoch`` mid-decision would let
        the owning cache evict views a request is still refining.
        """
        with self._lock:
            if self._pins > 0:
                self._reset_pending = True
                return
            self._nodes = {}
            self.node_count = 0
            self.retired_nodes = 0
            self.reset_epoch += 1
            self.interner = ClauseInterner()

    # -- store shipping -----------------------------------------------------

    def export_segment(self) -> dict:
        """The store's full state as a picklable segment.

        Ships the columnar table as-is (flat arrays pickle cheaply — this is
        the payload the parallel scheduler sends instead of per-tuple
        trees), plus the open-leaf DNFs and the intern map in canonical
        clause form (``frozenset`` iteration order is salted per process, so
        raw frozensets must not cross the process boundary).
        """
        return {
            "table": self.table,
            "leaves": [
                (nid, canonical_clauses(dnf)) for nid, dnf in self._leaf_dnf.items()
            ],
            "interned": [
                (tuple(sorted(tuple(sorted(clause)) for clause in key)), nid)
                for key, nid in self._nodes.items()
            ],
            "probabilities": dict(self.probabilities),
            "steps": self.steps,
            "node_count": self.node_count,
            "max_nodes": self.max_nodes,
            # Delta-update registries: product members in build fold order
            # (ints, so the tuples ship safely), ⊙ branch variables, and the
            # variable→dependent-rows index verbatim.  The index *could* be
            # replayed from the other registries, but a replay loses the
            # original registration order and the stale leaf-era entries of
            # expanded rows — shipping it keeps every registry byte-for-byte
            # across the round trip, so a lane-shipped segment's delta
            # behaviour is the exporting store's by construction.
            "const_vars": [(nid, members) for nid, members in self._const_vars.items()],
            "branch_vars": list(self._branch_var.items()),
            "var_index": [
                (variable, list(nids)) for variable, nids in self._var_index.items()
            ],
            "retired_nodes": self.retired_nodes,
        }

    @classmethod
    def from_segment(cls, segment: dict) -> "SharedLineageStore":
        """Rebuild a store around a shipped segment (the worker-side inverse
        of :meth:`export_segment`): same table, same nids, same intern map —
        refinement continues exactly where the exporting process stood."""
        store = cls(max_nodes=segment["max_nodes"])
        store.table = segment["table"]
        store.probabilities = dict(segment["probabilities"])
        store.steps = segment["steps"]
        store.node_count = segment["node_count"]
        store._nodes = {
            frozenset(frozenset(clause) for clause in clauses): nid
            for clauses, nid in segment["interned"]
        }
        store._leaf_dnf = {
            nid: dnf_from_canonical(clauses) for nid, clauses in segment["leaves"]
        }
        store._const_vars = {
            nid: tuple(members) for nid, members in segment.get("const_vars", [])
        }
        store._branch_var = dict(segment.get("branch_vars", []))
        store.retired_nodes = segment.get("retired_nodes", 0)
        var_index = segment.get("var_index")
        if var_index is not None:
            store._var_index = {
                variable: list(nids) for variable, nids in var_index
            }
        else:
            # Pre-PR-9 segment: replay registration from the other
            # registries.  Equivalent for delta updates (stale entries are
            # skipped and reseed order never shows in results), but not
            # byte-for-byte — the verbatim index above is.
            for nid, members in store._const_vars.items():
                store._register_dependents(nid, members)
            for nid, branch in store._branch_var.items():
                store._register_dependents(nid, (branch,))
            for nid, dnf in store._leaf_dnf.items():
                store._register_dependents(nid, dnf.variables())
        return store


class SharedDTree:
    """A per-tuple view over a :class:`SharedLineageStore`.

    Call-compatible with :class:`repro.prob.dtree.DTree` where the engine
    and schedulers touch it: ``lower``/``upper``, ``bounds()``, ``gap``,
    ``is_exact``, ``steps``, ``refine()``, ``refine_to_target()`` and
    ``result()``.  The view owns nothing but a frontier: a lazy max-heap of
    (influence, leaf nid) entries where influence is the midpoint-linearised
    derivative of *this view's root* with respect to the leaf, summed over
    all DAG paths.  Refinement performed through any other view of the same
    store is observed for free — entries whose leaf was expanded elsewhere
    are skipped on pop, and the geometric frontier rebuild (same schedule as
    ``DTree``) re-measures influence against the shared table state.
    """

    __slots__ = ("store", "root", "steps", "_heap", "_weights", "_counter", "_next_rebuild")

    def __init__(self, store: SharedLineageStore, dnf: DNF):
        # Same upfront validation (and error type) as DTree.__init__: the
        # view promises call-compatibility, so a missing marginal must be a
        # structured ProbabilityError, not a KeyError from deep in build().
        for variable in dnf.variables():
            if variable not in store.probabilities:
                raise ProbabilityError(f"no probability for variable {variable}")
        self.store = store
        self.root = store.build_root(dnf)
        self._init_frontier()

    @classmethod
    def from_root(cls, store: SharedLineageStore, root: int) -> "SharedDTree":
        """A view over an already-built root nid (no compilation performed).

        The worker-side constructor for shipped store segments: the driver
        compiled the roots, the segment carried the table, and the frontier
        is rebuilt here from the current column state — which is exactly
        what a fresh in-process view over the same store would compute.
        """
        view = object.__new__(cls)
        view.store = store
        view.root = root
        view._init_frontier()
        return view

    def _init_frontier(self) -> None:
        self.steps = 0
        self._heap: List[Tuple[float, int, float, int]] = []
        self._weights: Dict[int, float] = {}
        self._counter = 0
        self._next_rebuild = int(self.store.steps * _REFRESH_FACTOR) + _REFRESH_BASE
        self._rebuild_frontier()

    # -- frontier maintenance ----------------------------------------------

    def resync(self) -> None:
        """Re-measure the frontier against the current table state.

        Standing queries call this after a delta batch touched this view's
        root: a probability update moves leaf gaps and path influences
        without expanding anything, so heap priorities recorded before the
        delta no longer rank the open leaves correctly.  A full rebuild
        (the same pass the geometric refresh runs) restores the invariant
        that the frontier is a pure function of the table state — which is
        what keeps post-delta step counts independent of the delta history.
        """
        self._rebuild_frontier()
        self._next_rebuild = int(self.store.steps * _REFRESH_FACTOR) + _REFRESH_BASE

    def _rebuild_frontier(self) -> None:
        """Recompute every open leaf's influence on this root from scratch."""
        self._heap = []
        self._weights = {}
        self._counter = 0
        table = self.store.table
        if table.upper[self.root] == table.lower[self.root]:
            return
        for leaf, weight in table.open_leaf_influences(self.root, 1.0):
            self._push(leaf, weight)

    def _push(self, leaf: int, weight: float) -> None:
        """Add ``weight`` to the leaf's total influence and (re-)enqueue it.

        The entry records the new total; any earlier entry for the same
        leaf now mismatches :attr:`_weights` and is skipped as stale, so
        the frontier ranks each leaf by its summed influence instead of
        splitting it across duplicate entries.
        """
        total = self._weights.get(leaf, 0.0) + weight
        self._weights[leaf] = total
        self._counter += 1
        table = self.store.table
        priority = -(total * (table.upper[leaf] - table.lower[leaf]))
        heappush(self._heap, (priority, self._counter, total, leaf))

    def _entry_stale(self, weight: float, leaf: int) -> bool:
        table = self.store.table
        return (
            table.kind[leaf] != KIND_LEAF
            or table.upper[leaf] == table.lower[leaf]
            or self._weights.get(leaf) != weight
        )

    def _absorb_expansion(self, expanded: int, weight: float) -> None:
        """After ``expanded`` (this view's frontier top) became a ⊙ row,
        enqueue the open leaves now below it, at path weights relative to
        this root (deduplicated across diamond paths)."""
        if self._heap and self._heap[0][3] == expanded:
            heappop(self._heap)
        self._weights.pop(expanded, None)
        self.steps += 1
        for leaf, acc in self.store.table.open_leaf_influences(expanded, weight):
            self._push(leaf, acc)

    def _peek(self) -> Optional[Tuple[float, float, int]]:
        """The view's current best (influence, weight, leaf nid), or None.

        Pops entries whose leaf was expanded (possibly by another view) or
        closed in the meantime; rebuilds the frontier once if the heap runs
        dry while the root is still open.  The geometric re-measurement is
        scheduled here — against the *store's* global step count, since
        refinement performed through any view staleness-drifts every other
        view's influence weights — so both ``expand_once`` and the shared
        scheduler's :meth:`SharedLineageStore.refine_most_valuable` (which
        bypasses ``expand_once``) rank on freshly measured frontiers.
        """
        if self.store.steps >= self._next_rebuild:
            self._rebuild_frontier()
            self._next_rebuild = int(self.store.steps * _REFRESH_FACTOR) + _REFRESH_BASE
        for attempt in range(2):
            while self._heap:
                priority, _, weight, leaf = self._heap[0]
                if self._entry_stale(weight, leaf):
                    heappop(self._heap)
                    continue
                return (-priority, weight, leaf)
            if attempt == 0:
                if self.upper == self.lower:
                    return None
                self._rebuild_frontier()
        return None

    # -- DTree-compatible surface -------------------------------------------

    @property
    def lower(self) -> float:
        return self.store.table.lower[self.root]

    @property
    def upper(self) -> float:
        return self.store.table.upper[self.root]

    def bounds(self) -> Tuple[float, float]:
        table = self.store.table
        return table.lower[self.root], table.upper[self.root]

    @property
    def is_exact(self) -> bool:
        table = self.store.table
        return (
            table.kind[self.root] == KIND_CLOSED
            or table.upper[self.root] == table.lower[self.root]
        )

    @property
    def gap(self) -> float:
        table = self.store.table
        return table.upper[self.root] - table.lower[self.root]

    def expand_once(self) -> bool:
        """Expand this view's most influential open leaf; False when closed.

        The geometric influence re-measurement happens inside :meth:`_peek`.
        """
        entry = self._peek()
        if entry is None:
            return False
        _, weight, leaf = entry
        self.store.expand_leaf(leaf)
        self._absorb_expansion(leaf, weight)
        return True

    def refine(
        self,
        steps: Optional[int] = None,
        *,
        epsilon: float = 0.0,
        relative: bool = False,
    ) -> int:
        """Up to ``steps`` expansions through this view; count performed.

        Same contract as :meth:`repro.prob.dtree.DTree.refine` — except that
        bounds may already be tighter than any local expansion explains,
        because other views refined shared nodes in between.
        """
        performed = 0
        while steps is None or performed < steps:
            if self.is_exact or _budget_met(self.lower, self.upper, epsilon, relative):
                break
            if not self.expand_once():
                break
            performed += 1
        return performed

    def refine_to_target(self, target_steps: int) -> int:
        """Refine until this view's cumulative step count reaches the target."""
        return self.refine(max(0, target_steps - self.steps))

    def result(self) -> ApproxResult:
        lower, upper = self.bounds()
        return ApproxResult(
            probability=0.5 * (lower + upper),
            lower=lower,
            upper=upper,
            steps=self.steps,
            exact=self.is_exact or upper == lower,
        )


class SharedDTreeCache:
    """Engine-side lineage → :class:`SharedDTree` cache over one shared store.

    The drop-in replacement for :class:`repro.prob.dtree.DTreeCache` when
    the engine runs with ``shared_lineage=True``: the same
    ``get(dnf, probabilities)`` / ``hits`` / ``misses`` / ``evictions`` /
    ``clear()`` surface (so :func:`repro.prob.lineage.dtrees_from_dnfs` and
    the engine's cache-statistics consumers work unchanged), but entries are
    views over one hash-consed columnar DAG, so refinement performed for one
    tuple tightens every other tuple sharing subformulas — across calls, too.

    Memory is bounded by **node count**, not entry count: when the store's
    intern table exceeds ``max_nodes`` interned nodes it is reset and the
    view table cleared.  Eviction never invalidates a live view — views
    hold nids into the append-only table and keep refining correctly; only
    the *sharing* with future builds is lost (the intern table is a pure
    accelerator).  ``max_entries`` additionally bounds the view table, LRU,
    for parity with the legacy cache.  ``evictions`` counts views dropped
    for either reason (cheap int, surfaced by the engine and benchmarks).
    """

    def __init__(
        self,
        max_entries: Optional[int] = 4096,
        max_nodes: Optional[int] = DEFAULT_MAX_NODES,
        vectorize: Optional[bool] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ProbabilityError(f"max_entries must be positive, got {max_entries}")
        if max_nodes is not None and max_nodes < 1:
            raise ProbabilityError(f"max_nodes must be positive, got {max_nodes}")
        self.max_entries = max_entries
        self.max_nodes = max_nodes
        self.vectorize = vectorize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store = SharedLineageStore(max_nodes=max_nodes, vectorize=vectorize)
        self._views: Dict[FrozenSet[Clause], SharedDTree] = {}
        self._epoch = self.store.reset_epoch

    def __len__(self) -> int:
        return len(self._views)

    @property
    def interner(self) -> ClauseInterner:
        return self.store.interner

    def get(self, dnf: DNF, probabilities: Mapping[int, float]) -> SharedDTree:
        """The (possibly already refined) view for ``dnf``, building on a miss.

        Runs under the store lock: lookup, budget-triggered epoch reset, and
        LRU eviction are one atomic step, so a concurrent reader never
        observes the view table mid-eviction and two threads can never build
        the same lineage twice (the query service's refinement lane and its
        stats readers share this cache).
        """
        with self.store.lock:
            self.store.add_probabilities(dnf, probabilities)
            # Enforce the node budget on *every* access, not just misses:
            # refinement between calls grows the store, and the store's own
            # in-refinement check only fires while expansions are running.
            if self.max_nodes is not None and self.store.node_count > self.max_nodes:
                self.store.reset_nodes()
            # Drop views from earlier store epochs (in-refinement resets
            # happen without the cache on the stack): a cached view pins its
            # whole epoch's intern structures, so retaining stale epochs
            # would bound memory by views x budget instead of the documented
            # budget.
            if self._epoch != self.store.reset_epoch:
                self.evictions += len(self._views)
                self._views.clear()
                self._epoch = self.store.reset_epoch
            key = dnf.clauses
            view = self._views.get(key)
            if view is not None:
                self.hits += 1
                self._views[key] = self._views.pop(key)  # mark most recently used
                return view
            self.misses += 1
            view = SharedDTree(self.store, dnf)
            self._views[key] = view
            if self.max_entries is not None and len(self._views) > self.max_entries:
                self._views.pop(next(iter(self._views)))
                self.evictions += 1
            return view

    def clear(self) -> None:
        with self.store.lock:
            self.store = SharedLineageStore(
                max_nodes=self.max_nodes, vectorize=self.vectorize
            )
            self._views.clear()
            self._epoch = self.store.reset_epoch
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    # -- crash-recoverable snapshots ----------------------------------------

    def export_state(self) -> dict:
        """The cache's full warm state as a picklable dict.

        The snapshot payload of the query service: the store segment (the
        same :meth:`SharedLineageStore.export_segment` the parallel
        scheduler ships) plus every cached view as ``(canonical clauses,
        root nid)`` — frozensets never cross the process boundary, their
        iteration order is salted per process.  Taken under the store lock,
        so the segment and the view table are one consistent cut.
        """
        with self.store.lock:
            return {
                "segment": self.store.export_segment(),
                "views": [
                    (
                        tuple(sorted(tuple(sorted(clause)) for clause in key)),
                        view.root,
                    )
                    for key, view in self._views.items()
                ],
                "counters": (self.hits, self.misses, self.evictions),
                "max_entries": self.max_entries,
                "max_nodes": self.max_nodes,
                "vectorize": self.vectorize,
            }

    @classmethod
    def from_state(cls, state: dict) -> "SharedDTreeCache":
        """Rebuild a warm cache from :meth:`export_state`.

        The restored store continues exactly where the exporting process
        stood (same table, same nids, same intern map), and every view is
        rebuilt over its original root via :meth:`SharedDTree.from_root` —
        so the first repeat of a previously decided query is a cache hit on
        already-closed bounds: the ≤1-step warm re-decide the service's
        crash recovery promises.
        """
        cache = cls(
            max_entries=state["max_entries"],
            max_nodes=state["max_nodes"],
            vectorize=state["vectorize"],
        )
        cache.store = SharedLineageStore.from_segment(state["segment"])
        for clauses, root in state["views"]:
            key = dnf_from_canonical(clauses).clauses
            cache._views[key] = SharedDTree.from_root(cache.store, root)
        cache.hits, cache.misses, cache.evictions = state["counters"]
        cache._epoch = cache.store.reset_epoch
        return cache

"""Shared-lineage DAG compilation: compile common subformulas once, score per tuple.

The per-tuple decomposition trees of :mod:`repro.prob.dtree` treat every
answer tuple's lineage as an island: identical subformulas that occur under
several tuples (the same supplier/partsupp clauses recurring under many
brands in the TPC-H workloads) are Shannon-expanded and bounded once *per
tuple*.  This module replaces the islands with one **hash-consed AND/OR DAG**
per probability space:

* every subformula (a subsumption-free positive DNF) is interned in a
  :class:`SharedLineageStore` keyed by its clause set, so structurally equal
  subformulas are represented by a single :class:`SharedNode` no matter how
  many tuples' lineages contain them;
* each node memoises its current lower/upper probability bounds (degenerate
  once the subformula is fully compiled, i.e. its exact probability);
* a refinement step — an independent-partition ⊗/⊕ split, a
  deterministic-OR, or a Shannon cobranch on a shared variable — mutates one
  node *in place* and propagates the tightened bounds to **all** parents,
  and therefore to every tuple whose lineage contains the refined node;
* a :class:`SharedDTree` is a per-tuple *view* over the store: a root node
  plus a private influence-ordered frontier.  It is call-compatible with
  :class:`repro.prob.dtree.DTree` (``bounds``/``gap``/``is_exact``/
  ``refine``/``refine_to_target``/``result`` and a ``root`` with
  ``lower``/``upper``), so the top-k/threshold scheduler and the exact
  finishing driver :func:`repro.prob.dtree.refine_to_budget` run on views
  unchanged.

The decomposition rules, branch-variable choice, and bound arithmetic are
copied operation-for-operation from :mod:`repro.prob.dtree`, so the exact
probability the DAG computes for a clause set is **bit-identical** to what a
per-tuple d-tree computes for the same clause set — sharing changes how much
work is performed, never a single float of the answer.

:class:`ClauseInterner` deduplicates the clause frozensets themselves (the
batch pipeline's :func:`repro.sprout.onescan.columnar_lineage` emits interned
clauses directly), and :class:`SharedDTreeCache` is the engine-side drop-in
for :class:`repro.prob.dtree.DTreeCache` when shared-lineage mode is on:
same ``get``/``hits``/``misses``/``clear`` surface, node-count-bounded.

See ``docs/shared_lineage.md`` for the user-facing guide.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ProbabilityError
from repro.prob.dtree import (
    _DET_OR,
    _IND_AND,
    _IND_OR,
    _REFRESH_BASE,
    _REFRESH_FACTOR,
    ApproxResult,
    _budget_met,
    _cofactor_true,
    branch_variable,
    combine_bounds,
    influence_weight,
    leaf_bounds,
)
from repro.prob.formulas import DNF, _connected_components

__all__ = [
    "ClauseInterner",
    "SharedNode",
    "SharedLineageStore",
    "SharedDTree",
    "SharedDTreeCache",
]

Clause = FrozenSet[int]

#: Node-count budget after which :class:`SharedDTreeCache` resets its store's
#: intern table (live views keep working; see the cache docstring).
DEFAULT_MAX_NODES = 2_000_000

# The inner-node kinds (⊗/⊕/⊙) are imported from :mod:`repro.prob.dtree`,
# whose module-level ``combine_bounds``/``influence_weight``/``leaf_bounds``/
# ``branch_variable`` implement the *one* copy of the bound arithmetic both
# engines run — the bit-identity contract is structural, not by convention.
_CLOSED = "closed"
_LEAF = "leaf"


class ClauseInterner:
    """Interns clause frozensets: one shared object and a dense id per clause.

    Candidate lineages in top-k/threshold workloads repeat the same clauses
    across many answer tuples; interning makes every occurrence share a
    single ``frozenset`` object (hashing and equality then hit the same
    cached hash).  A dense integer id per clause is also available as a
    compact handle — assigned lazily by :meth:`id_of`, so the hot
    :meth:`intern` path carries no id bookkeeping.
    """

    __slots__ = ("_canonical", "_ids")

    def __init__(self) -> None:
        self._canonical: Dict[Clause, Clause] = {}
        self._ids: Dict[Clause, int] = {}

    def __len__(self) -> int:
        return len(self._canonical)

    def intern(self, clause: Iterable[int]) -> Clause:
        """The canonical shared frozenset for ``clause`` (registering it)."""
        key = frozenset(clause)
        found = self._canonical.get(key)
        if found is None:
            self._canonical[key] = key
            return key
        return found

    def id_of(self, clause: Iterable[int]) -> int:
        """The dense id of an interned clause (assigned lazily on first ask,
        so callers that only ever :meth:`intern` pay nothing for ids)."""
        key = self.intern(clause)
        index = self._ids.get(key)
        if index is None:
            index = len(self._ids)
            self._ids[key] = index
        return index


class SharedNode:
    """One interned subformula of the shared DAG.

    ``kind`` is ``closed`` (bounds degenerate at the exact probability),
    ``leaf`` (an open DNF with the cheap construction bounds of
    :class:`repro.prob.dtree._Leaf`), or one of the compiled inner kinds
    (``ind_and`` ⊗, ``ind_or`` ⊕, ``det_or`` ⊙).  A Shannon expansion
    mutates a ``leaf`` into a ``det_or`` *in place*, so every parent —
    across all tuples — observes the refinement without any re-linking.
    ``parents`` holds ``(parent, slot)`` backlinks for bound propagation;
    ``seq`` is the deterministic creation ticket used as a scheduler
    tiebreak.
    """

    __slots__ = ("kind", "key", "dnf", "children", "weights", "parents", "lower", "upper", "seq")

    def __init__(self, kind: str, seq: int, key: Optional[FrozenSet[Clause]] = None):
        self.kind = kind
        self.key = key
        self.dnf: Optional[DNF] = None
        self.children: Optional[List["SharedNode"]] = None
        self.weights: Optional[List[float]] = None
        self.parents: List[Tuple["SharedNode", int]] = []
        self.lower = 0.0
        self.upper = 1.0
        self.seq = seq

    @property
    def gap(self) -> float:
        return self.upper - self.lower

    def child_weight(self, slot: int) -> float:
        """Midpoint-linearised derivative w.r.t. child ``slot`` (as in d-trees)."""
        return influence_weight(self.kind, self.children, self.weights, slot)

    def refresh_bounds(self) -> None:
        """Recompute bounds from the children (the d-tree arithmetic, shared)."""
        self.lower, self.upper = combine_bounds(self.kind, self.children, self.weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedNode({self.kind}, [{self.lower:.4f}, {self.upper:.4f}])"


class SharedLineageStore:
    """The hash-consed AND/OR DAG shared by every tuple of one probability space.

    ``build`` interns subformulas with structural deduplication (two DNFs
    with the same clause set map to the same node object), ``expand_leaf``
    performs one Shannon cobranch and propagates the tightened bounds to all
    ancestors across all containing tuples, and ``refine_most_valuable``
    implements the scheduler primitive: among the frontiers of a set of
    gating views, expand the single node with the largest bound-width mass
    summed over the tuples it gates.

    ``steps`` counts the store-global **logical refinement steps** — each
    Shannon expansion once, no matter how many tuples it serves.  All
    lookups must use probabilities from one probabilistic database
    (:meth:`add_probabilities` guards this, like
    :class:`repro.prob.dtree.DTreeCache` does).
    """

    def __init__(
        self,
        interner: Optional[ClauseInterner] = None,
        max_nodes: Optional[int] = None,
    ):
        self.probabilities: Dict[int, float] = {}
        self.interner = interner if interner is not None else ClauseInterner()
        self.steps = 0
        self.node_count = 0
        #: Intern-table budget enforced *during refinement* too: every leaf
        #: expansion builds new nodes, so a budget checked only at view
        #: construction would let a single huge compilation grow the table
        #: arbitrarily far past it.  ``None`` disables the in-refinement check.
        self.max_nodes = max_nodes
        #: Incremented by every :meth:`reset_nodes` — holders of node
        #: references (the view cache) watch this to drop structures from
        #: earlier epochs, so budget resets actually release memory instead
        #: of leaving every epoch pinned by a cached view.
        self.reset_epoch = 0
        self._seq = 0
        self._nodes: Dict[FrozenSet[Clause], SharedNode] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    # -- probability space -------------------------------------------------

    def add_probabilities(self, dnf: DNF, probabilities: Mapping[int, float]) -> None:
        """Record the marginals ``dnf`` needs, guarding the shared space."""
        recorded = self.probabilities
        for variable in dnf.variables():
            value = probabilities.get(variable)
            if value is None:
                raise ProbabilityError(f"no probability for variable {variable}")
            existing = recorded.get(variable)
            if existing is None:
                recorded[variable] = value
            elif existing != value:
                raise ProbabilityError(
                    f"SharedLineageStore is bound to one probability space: "
                    f"variable {variable} was interned with probability "
                    f"{existing}, now given {value}"
                )

    # -- hash-consed construction ------------------------------------------

    def _new_node(self, kind: str, key: Optional[FrozenSet[Clause]] = None) -> SharedNode:
        self._seq += 1
        self.node_count += 1
        return SharedNode(kind, self._seq, key)

    def _constant(self, value: float) -> SharedNode:
        node = self._new_node(_CLOSED)
        node.lower = node.upper = value
        return node

    def build(self, dnf: DNF) -> SharedNode:
        """The interned node for a subsumption-free ``dnf`` (built on a miss).

        Mirrors ``DTree._build`` rule for rule: constants, single clause,
        independent-and factoring of the common variable prefix,
        independent-or splitting into connected components, open leaf
        otherwise — except that every non-constant result is interned by its
        clause set, so a subformula reached from several tuples (or several
        cofactor paths of one tuple) is compiled and refined exactly once.
        """
        if dnf.is_true():
            return self._constant(1.0)
        if dnf.is_false():
            return self._constant(0.0)
        node = self._nodes.get(dnf.clauses)
        if node is not None:
            return node
        clauses = list(dnf.clauses)
        if len(clauses) == 1:
            weight = 1.0
            for variable in clauses[0]:
                weight *= self.probabilities[variable]
            node = self._new_node(_CLOSED, key=dnf.clauses)
            node.lower = node.upper = weight
            self._nodes[dnf.clauses] = node
            return node
        common = frozenset.intersection(*clauses)
        if common:
            weight = 1.0
            for variable in common:
                weight *= self.probabilities[variable]
            rest = DNF(clause - common for clause in clauses)
            node = self._inner(_IND_AND, [self._constant(weight), self.build(rest)], dnf.clauses)
            return node
        components = _connected_components(dnf)
        if len(components) > 1:
            children = [self.build(component) for component in components]
            return self._inner(_IND_OR, children, dnf.clauses)
        node = self._leaf(dnf)
        self._nodes[dnf.clauses] = node
        return node

    def _inner(
        self,
        kind: str,
        children: List[SharedNode],
        key: FrozenSet[Clause],
        weights: Optional[Sequence[float]] = None,
    ) -> SharedNode:
        node = self._new_node(kind, key=key)
        node.children = list(children)
        node.weights = list(weights) if weights is not None else None
        for slot, child in enumerate(node.children):
            child.parents.append((node, slot))
        node.refresh_bounds()
        self._nodes[key] = node
        return node

    def _leaf(self, dnf: DNF) -> SharedNode:
        """An open leaf with the construction bounds of ``dtree._Leaf``."""
        node = self._new_node(_LEAF, key=dnf.clauses)
        node.dnf = dnf
        node.lower, node.upper = leaf_bounds(dnf, self.probabilities)
        return node

    def build_root(self, dnf: DNF) -> SharedNode:
        """The interned root for a raw lineage DNF (minimised, like ``DTree``)."""
        return self.build(dnf.minimised())

    # -- shared refinement --------------------------------------------------

    def expand_leaf(self, leaf: SharedNode) -> None:
        """One Shannon cobranch: mutate ``leaf`` into a ⊙ node, propagate bounds.

        The branch variable is the most frequent one (smallest id on ties) —
        the deterministic rule of ``DTree._expand_leaf`` — so the compiled
        shape, and with it the exact probability, of a clause set is the
        same as the per-tuple engine's.  The in-place mutation is what makes
        the refinement *shared*: every parent, under every tuple, sees the
        tightened bounds via :meth:`_propagate`.
        """
        if leaf.kind != _LEAF:
            raise ProbabilityError("expand_leaf() called on a non-leaf shared node")
        dnf = leaf.dnf
        branch = branch_variable(dnf)
        p = self.probabilities[branch]
        positive = _cofactor_true(dnf, branch)
        negative = dnf.condition(branch, False)
        children = [self.build(positive), self.build(negative)]
        leaf.kind = _DET_OR
        leaf.dnf = None
        leaf.children = children
        leaf.weights = [p, 1.0 - p]
        for slot, child in enumerate(children):
            child.parents.append((leaf, slot))
        self.steps += 1
        self._propagate(leaf)
        if self.max_nodes is not None and self.node_count > self.max_nodes:
            # Keep the documented bound even for one giant compilation: the
            # table is a pure accelerator, so dropping it mid-refinement
            # costs only future sharing — live nodes stay referenced by
            # their parents and views.
            self.reset_nodes()

    def _propagate(self, start: SharedNode) -> None:
        """Refresh ``start`` and every ancestor, children before parents.

        Collects the ancestor closure over the ``parents`` backlinks, then
        refreshes each node exactly once in topological order (a node waits
        for its in-closure children), so diamonds in the DAG cost one
        recomputation instead of one per path.
        """
        ancestors: Dict[int, SharedNode] = {}
        stack = [start]
        while stack:
            node = stack.pop()
            if id(node) in ancestors:
                continue
            ancestors[id(node)] = node
            for parent, _slot in node.parents:
                stack.append(parent)
        waiting = {nid: 0 for nid in ancestors}
        for node in ancestors.values():
            for child in node.children or ():
                if id(child) in ancestors:
                    waiting[id(node)] += 1
        ready = [node for node in ancestors.values() if waiting[id(node)] == 0]
        changed = {id(start)}
        while ready:
            node = ready.pop()
            if node is start or any(
                id(child) in changed for child in node.children or ()
            ):
                before = (node.lower, node.upper)
                node.refresh_bounds()
                if (node.lower, node.upper) != before:
                    changed.add(id(node))
            for parent, _slot in node.parents:
                if id(parent) in ancestors:
                    waiting[id(parent)] -= 1
                    if waiting[id(parent)] == 0:
                        ready.append(parent)

    def refine_most_valuable(self, views: Sequence["SharedDTree"]) -> int:
        """Expand the shared node with the largest summed frontier value.

        The scheduler primitive: each gating view contributes its current
        most influential open leaf (influence × bound gap, measured against
        *that view's* root); contributions to the same shared node add up —
        the "bound-width mass summed over the tuples it gates".  The winning
        node is expanded once, which tightens every contributing tuple (and
        any non-gating tuple that shares it) in the same logical step.
        Returns the number of expansions performed (0 when no view has an
        open frontier left).
        """
        contributions: Dict[int, List[Tuple["SharedDTree", float]]] = {}
        scores: Dict[int, float] = {}
        leaves: Dict[int, SharedNode] = {}
        # Candidates with identical lineage share one view object; process
        # it once or its influence would double-count (and its heap would
        # absorb the expansion twice).
        seen_views: set = set()
        for view in views:
            if id(view) in seen_views:
                continue
            seen_views.add(id(view))
            entry = view._peek()
            if entry is None:
                continue
            influence, weight, leaf = entry
            leaves[id(leaf)] = leaf
            scores[id(leaf)] = scores.get(id(leaf), 0.0) + influence
            contributions.setdefault(id(leaf), []).append((view, weight))
        if not leaves:
            return 0
        best = max(leaves, key=lambda nid: (scores[nid], -leaves[nid].seq))
        leaf = leaves[best]
        self.expand_leaf(leaf)
        for view, weight in contributions[best]:
            view._absorb_expansion(leaf, weight)
        return 1

    def reset_nodes(self) -> None:
        """Drop the intern table and the clause interner (pure accelerators —
        live views keep their node references and stay fully functional; new
        builds and extractions start fresh).  Resetting both is what keeps
        the engine's memory bounded by the node budget: the interner grows
        with every distinct clause ever extracted, so it must not outlive
        the nodes built from it."""
        self._nodes = {}
        self.node_count = 0
        self.reset_epoch += 1
        self.interner = ClauseInterner()


class SharedDTree:
    """A per-tuple view over a :class:`SharedLineageStore`.

    Call-compatible with :class:`repro.prob.dtree.DTree` where the engine
    and schedulers touch it: ``root.lower``/``root.upper``, ``bounds()``,
    ``gap``, ``is_exact``, ``steps``, ``refine()``, ``refine_to_target()``
    and ``result()``.  The view owns nothing but a frontier: a lazy
    max-heap of (influence, leaf) entries where influence is the
    midpoint-linearised derivative of *this view's root* with respect to
    the leaf, summed over all DAG paths.  Refinement performed through any
    other view of the same store is observed for free — entries whose leaf
    was expanded elsewhere are skipped on pop, and the geometric frontier
    rebuild (same schedule as ``DTree``) re-measures influence against the
    shared state.
    """

    __slots__ = ("store", "root", "steps", "_heap", "_weights", "_counter", "_next_rebuild")

    def __init__(self, store: SharedLineageStore, dnf: DNF):
        # Same upfront validation (and error type) as DTree.__init__: the
        # view promises call-compatibility, so a missing marginal must be a
        # structured ProbabilityError, not a KeyError from deep in build().
        for variable in dnf.variables():
            if variable not in store.probabilities:
                raise ProbabilityError(f"no probability for variable {variable}")
        self.store = store
        self.root = store.build_root(dnf)
        self.steps = 0
        self._heap: List[Tuple[float, int, float, SharedNode]] = []
        #: Current total enqueued influence weight per open leaf (by id).
        #: A leaf can be (re-)exposed by several expansions; entries whose
        #: recorded weight no longer matches this total are stale and are
        #: skipped on pop, so each leaf is ranked by its *summed* influence
        #: rather than split across duplicate entries.
        self._weights: Dict[int, float] = {}
        self._counter = 0
        self._next_rebuild = int(store.steps * _REFRESH_FACTOR) + _REFRESH_BASE
        self._rebuild_frontier()

    # -- frontier maintenance ----------------------------------------------

    def _open_leaf_weights(
        self, start: SharedNode, start_weight: float
    ) -> List[Tuple[SharedNode, float]]:
        """Open leaves under ``start`` with their total downward influence.

        Downward weights are accumulated in topological order over the
        reachable sub-DAG, so a leaf shared by several paths gets the *sum*
        of its path derivatives in one entry (a per-path walk would be
        exponential on diamond-heavy DAGs).
        """
        nodes: Dict[int, SharedNode] = {id(start): start}
        indegree: Dict[int, int] = {id(start): 0}
        stack = [start]
        while stack:
            node = stack.pop()
            for child in node.children or ():
                if id(child) not in nodes:
                    nodes[id(child)] = child
                    indegree[id(child)] = 0
                    stack.append(child)
        for node in nodes.values():
            for child in node.children or ():
                indegree[id(child)] += 1
        accumulated: Dict[int, float] = {nid: 0.0 for nid in nodes}
        accumulated[id(start)] = start_weight
        ready = [start]
        found: List[Tuple[SharedNode, float]] = []
        while ready:
            node = ready.pop()
            weight = accumulated[id(node)]
            if node.kind == _LEAF:
                if node.upper > node.lower:
                    found.append((node, weight))
                continue
            for slot, child in enumerate(node.children or ()):
                accumulated[id(child)] += weight * node.child_weight(slot)
                indegree[id(child)] -= 1
                if indegree[id(child)] == 0:
                    ready.append(child)
        return found

    def _rebuild_frontier(self) -> None:
        """Recompute every open leaf's influence on this root from scratch."""
        self._heap = []
        self._weights = {}
        self._counter = 0
        root = self.root
        if root.upper == root.lower:
            return
        for leaf, weight in self._open_leaf_weights(root, 1.0):
            self._push(leaf, weight)

    def _push(self, leaf: SharedNode, weight: float) -> None:
        """Add ``weight`` to the leaf's total influence and (re-)enqueue it.

        The entry records the new total; any earlier entry for the same
        leaf now mismatches :attr:`_weights` and is skipped as stale, so
        the frontier ranks each leaf by its summed influence instead of
        splitting it across duplicate entries.
        """
        total = self._weights.get(id(leaf), 0.0) + weight
        self._weights[id(leaf)] = total
        self._counter += 1
        priority = -(total * (leaf.upper - leaf.lower))
        heappush(self._heap, (priority, self._counter, total, leaf))

    def _entry_stale(self, weight: float, leaf: SharedNode) -> bool:
        return (
            leaf.kind != _LEAF
            or leaf.upper == leaf.lower
            or self._weights.get(id(leaf)) != weight
        )

    def _absorb_expansion(self, expanded: SharedNode, weight: float) -> None:
        """After ``expanded`` (this view's frontier top) became a ⊙ node,
        enqueue the open leaves now below it, at path weights relative to
        this root (deduplicated across diamond paths)."""
        if self._heap and self._heap[0][3] is expanded:
            heappop(self._heap)
        self._weights.pop(id(expanded), None)
        self.steps += 1
        for leaf, acc in self._open_leaf_weights(expanded, weight):
            self._push(leaf, acc)

    def _peek(self) -> Optional[Tuple[float, float, SharedNode]]:
        """The view's current best (influence, weight, leaf), or None.

        Pops entries whose leaf was expanded (possibly by another view) or
        closed in the meantime; rebuilds the frontier once if the heap runs
        dry while the root is still open.  The geometric re-measurement is
        scheduled here — against the *store's* global step count, since
        refinement performed through any view staleness-drifts every other
        view's influence weights — so both ``expand_once`` and the shared
        scheduler's :meth:`SharedLineageStore.refine_most_valuable` (which
        bypasses ``expand_once``) rank on freshly measured frontiers.
        """
        if self.store.steps >= self._next_rebuild:
            self._rebuild_frontier()
            self._next_rebuild = int(self.store.steps * _REFRESH_FACTOR) + _REFRESH_BASE
        for attempt in range(2):
            while self._heap:
                priority, _, weight, leaf = self._heap[0]
                if self._entry_stale(weight, leaf):
                    heappop(self._heap)
                    continue
                return (-priority, weight, leaf)
            if attempt == 0:
                if self.root.upper == self.root.lower:
                    return None
                self._rebuild_frontier()
        return None

    # -- DTree-compatible surface -------------------------------------------

    def bounds(self) -> Tuple[float, float]:
        return self.root.lower, self.root.upper

    @property
    def is_exact(self) -> bool:
        return self.root.kind == _CLOSED or self.root.upper == self.root.lower

    @property
    def gap(self) -> float:
        return self.root.upper - self.root.lower

    def expand_once(self) -> bool:
        """Expand this view's most influential open leaf; False when closed.

        The geometric influence re-measurement happens inside :meth:`_peek`.
        """
        entry = self._peek()
        if entry is None:
            return False
        _, weight, leaf = entry
        self.store.expand_leaf(leaf)
        self._absorb_expansion(leaf, weight)
        return True

    def refine(
        self,
        steps: Optional[int] = None,
        *,
        epsilon: float = 0.0,
        relative: bool = False,
    ) -> int:
        """Up to ``steps`` expansions through this view; count performed.

        Same contract as :meth:`repro.prob.dtree.DTree.refine` — except that
        bounds may already be tighter than any local expansion explains,
        because other views refined shared nodes in between.
        """
        performed = 0
        while steps is None or performed < steps:
            if self.is_exact or _budget_met(
                self.root.lower, self.root.upper, epsilon, relative
            ):
                break
            if not self.expand_once():
                break
            performed += 1
        return performed

    def refine_to_target(self, target_steps: int) -> int:
        """Refine until this view's cumulative step count reaches the target."""
        return self.refine(max(0, target_steps - self.steps))

    def result(self) -> ApproxResult:
        lower, upper = self.bounds()
        return ApproxResult(
            probability=0.5 * (lower + upper),
            lower=lower,
            upper=upper,
            steps=self.steps,
            exact=self.is_exact or upper == lower,
        )


class SharedDTreeCache:
    """Engine-side lineage → :class:`SharedDTree` cache over one shared store.

    The drop-in replacement for :class:`repro.prob.dtree.DTreeCache` when
    the engine runs with ``shared_lineage=True``: the same
    ``get(dnf, probabilities)`` / ``hits`` / ``misses`` / ``clear()``
    surface (so :func:`repro.prob.lineage.dtrees_from_dnfs` and the
    engine's cache-statistics consumers work unchanged), but entries are
    views over one hash-consed DAG, so refinement performed for one tuple
    tightens every other tuple sharing subformulas — across calls, too.

    Memory is bounded by **node count**, not entry count: when the store's
    intern table exceeds ``max_nodes`` interned nodes it is reset and the
    view table cleared.  Eviction never invalidates a live view — views
    hold direct node references and keep refining correctly; only the
    *sharing* with future builds is lost (the table is a pure accelerator).
    ``max_entries`` additionally bounds the view table, LRU, for parity
    with the legacy cache.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 4096,
        max_nodes: Optional[int] = DEFAULT_MAX_NODES,
    ):
        if max_entries is not None and max_entries < 1:
            raise ProbabilityError(f"max_entries must be positive, got {max_entries}")
        if max_nodes is not None and max_nodes < 1:
            raise ProbabilityError(f"max_nodes must be positive, got {max_nodes}")
        self.max_entries = max_entries
        self.max_nodes = max_nodes
        self.hits = 0
        self.misses = 0
        self.store = SharedLineageStore(max_nodes=max_nodes)
        self._views: Dict[FrozenSet[Clause], SharedDTree] = {}
        self._epoch = self.store.reset_epoch

    def __len__(self) -> int:
        return len(self._views)

    @property
    def interner(self) -> ClauseInterner:
        return self.store.interner

    def get(self, dnf: DNF, probabilities: Mapping[int, float]) -> SharedDTree:
        """The (possibly already refined) view for ``dnf``, building on a miss."""
        self.store.add_probabilities(dnf, probabilities)
        # Enforce the node budget on *every* access, not just misses:
        # refinement between calls grows the store, and the store's own
        # in-refinement check only fires while expansions are running.
        if self.max_nodes is not None and self.store.node_count > self.max_nodes:
            self.store.reset_nodes()
        # Drop views from earlier store epochs (in-refinement resets happen
        # without the cache on the stack): a cached view pins its whole
        # epoch's sub-DAG, so retaining stale epochs would bound memory by
        # views x budget instead of the documented budget.
        if self._epoch != self.store.reset_epoch:
            self._views.clear()
            self._epoch = self.store.reset_epoch
        key = dnf.clauses
        view = self._views.get(key)
        if view is not None:
            self.hits += 1
            self._views[key] = self._views.pop(key)  # mark most recently used
            return view
        self.misses += 1
        view = SharedDTree(self.store, dnf)
        self._views[key] = view
        if self.max_entries is not None and len(self._views) > self.max_entries:
            self._views.pop(next(iter(self._views)))
        return view

    def clear(self) -> None:
        self.store = SharedLineageStore(max_nodes=self.max_nodes)
        self._views.clear()
        self._epoch = self.store.reset_epoch
        self.hits = 0
        self.misses = 0

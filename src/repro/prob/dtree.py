"""Decomposition trees: anytime confidence computation for arbitrary DNF lineage.

Exact confidence computation is #P-hard for non-hierarchical (unsafe) queries,
so SPROUT's follow-on line of work compiles the lineage of each answer tuple
into a *decomposition tree* (d-tree) whose node types all admit trivial
probability computation:

* **independent-and** (⊗) — the children use disjoint variable sets and are
  conjoined: ``P = prod P_i`` (created when every clause shares a common
  variable prefix that can be factored out);
* **independent-or** (⊕) — the children use disjoint variable sets and are
  disjoined: ``P = 1 - prod (1 - P_i)`` (created by splitting a DNF into its
  connected components);
* **deterministic-or** (⊙) — the children are mutually exclusive, so
  ``P = sum w_i * P_i``; created by *Shannon variable cobranching*: picking a
  variable ``x`` and rewriting ``F`` as the exclusive disjunction of
  ``x ∧ F|x=1`` and ``¬x ∧ F|x=0`` with weights ``p(x)`` and ``1 - p(x)``.

Compilation interleaves the cheap decomposition steps (factoring, component
splitting) with Shannon cobranching until every leaf is a literal or constant,
at which point the evaluation is **exact**.  Because full compilation is
worst-case exponential, the engine also runs in an **anytime** mode: every
open (not yet compiled) leaf carries cheap lower/upper bounds on its
probability, the bounds propagate through the d-tree node types to bracket the
root probability, and compilation repeatedly expands the open leaf with the
largest influence on the root gap until the caller's absolute or relative
error budget ``epsilon`` is met.  The bounds are monotone: every expansion
step tightens (never widens) the root interval, so stopping early always
yields a sound bracket.

Open-leaf bounds for a positive DNF with clause probabilities ``c_i``:

* lower — greedily pick a subset of pairwise variable-disjoint clauses and
  combine them as independent events (``1 - prod (1 - c_i)`` over the subset);
  the sub-DNF implies the full DNF, so this is a valid lower bound that is at
  least ``max c_i``;
* upper — ``1 - prod (1 - c_i)`` over *all* clauses: positive clauses are
  positively correlated (FKG), so treating them as independent overestimates
  the probability of the disjunction.

A Karp–Luby-style Monte Carlo estimator (:func:`karp_luby_probability`) is
provided as a cross-check and as a last-resort fallback for adversarial
lineage on which the d-tree frontier converges too slowly.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ApproximationBudgetError, ProbabilityError
from repro.prob.formulas import DNF, _connected_components

__all__ = [
    "ApproxResult",
    "MonteCarloResult",
    "DTree",
    "DTreeCache",
    "CanonicalClauses",
    "canonical_clauses",
    "dnf_from_canonical",
    "dtree_probability",
    "karp_luby_probability",
    "refine_to_budget",
]

Clause = FrozenSet[int]

#: The picklable, order-canonical form of a DNF's clause set: clauses as
#: sorted tuples of variable ids, sorted among each other.  This is the wire
#: format of the parallel executor's work units (:mod:`repro.sprout.parallel`)
#: — ``frozenset`` iteration order is salted per process, so anything derived
#: from it (seeds, partition assignment) must go through this form instead.
CanonicalClauses = Tuple[Tuple[int, ...], ...]

#: Default cap on the number of leaf expansions before an anytime run gives up
#: (raising :class:`ApproximationBudgetError`).  ``None`` disables the cap.
DEFAULT_MAX_STEPS: Optional[int] = 200_000


def canonical_clauses(dnf: DNF) -> CanonicalClauses:
    """The order-canonical, picklable form of ``dnf``'s clause set.

    Two DNFs over the same clauses map to the same value in every process,
    which makes it usable as a cross-process cache key and as seed material
    for per-tuple Monte Carlo derivation (see
    :func:`repro.sprout.parallel.derive_task_seed`).  The serialisation is
    cached on the DNF object: the parallel executor re-canonicalises the
    same lineage on every task build, so repeated calls are O(1).
    """
    cached = dnf._canonical
    if cached is None:
        cached = tuple(sorted(tuple(sorted(clause)) for clause in dnf.clauses))
        dnf._canonical = cached
    return cached


def dnf_from_canonical(clauses: CanonicalClauses) -> DNF:
    """Rebuild a :class:`DNF` from its canonical clause form (the inverse of
    :func:`canonical_clauses` up to clause order, which a DNF does not keep).
    ``clauses`` must actually be canonical (it is pre-seeded as the cache)."""
    dnf = DNF(clauses)
    dnf._canonical = tuple(clauses)
    return dnf

#: The frontier's influence weights are recomputed from scratch on a geometric
#: schedule (next rebuild at ``steps * _REFRESH_FACTOR + _REFRESH_BASE``) so
#: heap staleness stays bounded while total rebuild cost stays near-linear.
_REFRESH_BASE = 128
_REFRESH_FACTOR = 1.5


@dataclass(frozen=True)
class ApproxResult:
    """Outcome of a d-tree confidence computation.

    ``probability`` is the interval midpoint; when ``exact`` is true the
    interval is degenerate (``lower == upper``) and the value is the exact
    probability of the lineage.
    """

    probability: float
    lower: float
    upper: float
    steps: int
    exact: bool

    @property
    def gap(self) -> float:
        return self.upper - self.lower

    def __str__(self) -> str:
        kind = "exact" if self.exact else "approx"
        return (
            f"{kind} p={self.probability:.6f} in [{self.lower:.6f}, {self.upper:.6f}] "
            f"after {self.steps} step(s)"
        )


@dataclass(frozen=True)
class MonteCarloResult:
    """A Karp–Luby estimate with a 95% normal-approximation confidence interval."""

    estimate: float
    half_width: float
    samples: int

    @property
    def lower(self) -> float:
        return max(0.0, self.estimate - self.half_width)

    @property
    def upper(self) -> float:
        return min(1.0, self.estimate + self.half_width)


# ---------------------------------------------------------------------------
# d-tree nodes
# ---------------------------------------------------------------------------

_IND_AND = "ind_and"
_IND_OR = "ind_or"
_DET_OR = "det_or"


# The bound arithmetic and the branch-variable rule are shared, as module
# functions, with the shared-lineage DAG (:mod:`repro.prob.sharedag`): both
# engines promise *bit-identical* exact probabilities for the same clause
# set, and one implementation is the only way that contract cannot drift.


def combine_bounds(kind, children, weights) -> Tuple[float, float]:
    """Interval combination for an ⊗ / ⊕ / ⊙ node over child bounds."""
    if kind == _IND_AND:
        lower = upper = 1.0
        for child in children:
            lower *= child.lower
            upper *= child.upper
    elif kind == _IND_OR:
        lower = upper = 1.0
        for child in children:
            lower *= 1.0 - child.lower
            upper *= 1.0 - child.upper
        lower, upper = 1.0 - lower, 1.0 - upper
    else:  # deterministic-or
        lower = upper = 0.0
        for weight, child in zip(weights, children):
            lower += weight * child.lower
            upper += weight * child.upper
    return lower, min(1.0, upper)


def influence_weight(kind, children, weights, slot: int) -> float:
    """Midpoint-linearised derivative of a node w.r.t. child ``slot``."""
    if kind == _DET_OR:
        return weights[slot]
    factor = 1.0
    for index, child in enumerate(children):
        if index == slot:
            continue
        mid = 0.5 * (child.lower + child.upper)
        factor *= mid if kind == _IND_AND else 1.0 - mid
    return factor


def leaf_bounds(dnf: DNF, probabilities: Mapping[int, float]) -> Tuple[float, float]:
    """Construction bounds of an open leaf (FKG upper, greedy-disjoint lower)."""
    ordered = []
    for clause in dnf.clauses:
        weight = 1.0
        for variable in clause:
            weight *= probabilities[variable]
        ordered.append((weight, sorted(clause), clause))
    ordered.sort(key=lambda item: (-item[0], item[1]))
    # Upper: independent-or over all clauses (FKG upper bound).
    none_true = 1.0
    for weight, _, _ in ordered:
        none_true *= 1.0 - weight
    # Lower: independent-or over a greedy variable-disjoint clause subset
    # (the sub-DNF implies the full DNF and its clauses are independent).
    used: set = set()
    none_picked = 1.0
    for weight, _, clause in ordered:
        if used.isdisjoint(clause):
            used.update(clause)
            none_picked *= 1.0 - weight
    return 1.0 - none_picked, 1.0 - none_true


def branch_variable(dnf: DNF) -> int:
    """Shannon cobranch choice: most frequent variable, smallest id on ties
    — deterministic, and aiming at maximal simplification of both cofactors."""
    counts: Dict[int, int] = {}
    for clause in dnf.clauses:
        for variable in clause:
            counts[variable] = counts.get(variable, 0) + 1
    return min(counts, key=lambda v: (-counts[v], v))


class _Node:
    """Shared fields: bounds plus the link to the parent slot holding us."""

    __slots__ = ("lower", "upper", "parent", "slot")

    def __init__(self) -> None:
        self.lower = 0.0
        self.upper = 1.0
        self.parent: Optional["_Inner"] = None
        self.slot = 0


class _Closed(_Node):
    """A fully compiled subtree, reduced to its exact probability."""

    __slots__ = ()

    def __init__(self, value: float):
        super().__init__()
        self.lower = self.upper = value


class _Leaf(_Node):
    """An open leaf: a DNF not yet decomposed, with cheap probability bounds."""

    __slots__ = ("dnf", "expanded", "heap_gen")

    def __init__(self, dnf: DNF, probabilities: Mapping[int, float]):
        super().__init__()
        self.dnf = dnf
        self.expanded = False
        self.heap_gen = -1
        self.lower, self.upper = leaf_bounds(dnf, probabilities)


class _Inner(_Node):
    """An ⊗ / ⊕ / ⊙ node over already constructed children."""

    __slots__ = ("kind", "children", "weights", "origin")

    def __init__(
        self,
        kind: str,
        children: List[_Node],
        weights: Optional[Sequence[float]] = None,
        origin: Optional[FrozenSet[Clause]] = None,
    ):
        super().__init__()
        self.kind = kind
        self.children = children
        self.weights = list(weights) if weights is not None else None
        self.origin = origin  # clause set this subtree computes, for memoisation
        for slot, child in enumerate(children):
            child.parent = self
            child.slot = slot
        self.refresh_bounds()

    def refresh_bounds(self) -> None:
        self.lower, self.upper = combine_bounds(self.kind, self.children, self.weights)

    def child_weight(self, slot: int) -> float:
        """Midpoint-linearised derivative of this node w.r.t. child ``slot``."""
        return influence_weight(self.kind, self.children, self.weights, slot)


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


def _cofactor_true(dnf: DNF, variable: int) -> DNF:
    """Shannon cofactor ``dnf | variable=true``, minimised incrementally.

    Assumes ``dnf`` is already subsumption-free.  Then only the clauses that
    lose ``variable`` can newly subsume others, and only the untouched clauses
    can be subsumed — so one shrunk-vs-untouched sweep suffices instead of the
    full quadratic :meth:`DNF.minimised`.
    """
    shrunk: List[Clause] = []
    untouched: List[Clause] = []
    for clause in dnf.clauses:
        if variable in clause:
            shrunk.append(clause - {variable})
        else:
            untouched.append(clause)
    kept = [u for u in untouched if not any(s <= u for s in shrunk)]
    return DNF(shrunk + kept)


class DTree:
    """An incrementally compiled decomposition tree for one DNF.

    Construction applies the cheap decomposition steps eagerly;
    :meth:`expand_once` performs one Shannon cobranching step on the open leaf
    with the largest estimated influence on the root bounds; :meth:`bounds`
    returns the current root interval.  :func:`dtree_probability` drives the
    loop — use it unless you need step-by-step control.

    Bounds are maintained incrementally: an expansion splices the replacement
    subtree into the leaf's parent slot and recomputes bounds along the path
    to the root only (stopping early when nothing changes).  The frontier is a
    lazy max-heap of (influence, leaf) entries whose influence weights are
    recomputed globally every :data:`_REFRESH_EVERY` expansions, so a single
    step costs O(path length) rather than O(tree size).

    The tree is *resumable*: :meth:`refine` performs a bounded number of
    expansions and may be called again later to tighten the bounds further —
    the multi-tuple top-k/threshold scheduler relies on this to interleave
    refinement across candidate tuples.  Expansion order is deterministic,
    which :meth:`refine_to_target` turns into a cross-process protocol: the
    bounds after ``T`` cumulative expansions are a pure function of the
    lineage, so the parallel executor can hand the same tuple to different
    workers across rounds and still merge identical brackets.  ``memo`` may
    be a dictionary shared between several trees over the same variable
    space (see :class:`DTreeCache`) so that closed subformulas compiled for
    one tuple's lineage are reused verbatim by every other tuple that
    contains them.
    """

    def __init__(
        self,
        dnf: DNF,
        probabilities: Mapping[int, float],
        memo: Optional[Dict[FrozenSet[Clause], float]] = None,
    ):
        self.probabilities = probabilities
        self.memo: Dict[FrozenSet[Clause], float] = {} if memo is None else memo
        for variable in dnf.variables():
            if variable not in probabilities:
                raise ProbabilityError(f"no probability for variable {variable}")
        self.steps = 0
        #: Number of tree nodes ever constructed — the memory-proportional
        #: size measure :class:`DTreeCache` evicts by (splice replacements
        #: are not discounted, so this slightly over-approximates the live
        #: tree, which is the safe direction for an eviction bound).
        self.node_count = 0
        self._heap: List[Tuple[float, int, _Leaf]] = []
        self._heap_gen = 0
        self._counter = 0
        self._next_rebuild = _REFRESH_BASE
        self.root = self._build(dnf.minimised())
        self._rebuild_frontier()

    # -- structural decomposition (independent partition steps) ---------------

    def _build(self, dnf: DNF) -> object:
        self.node_count += 1
        if dnf.is_true():
            return _Closed(1.0)
        if dnf.is_false():
            return _Closed(0.0)
        cached = self.memo.get(dnf.clauses)
        if cached is not None:
            return _Closed(cached)
        clauses = list(dnf.clauses)
        if len(clauses) == 1:
            weight = 1.0
            for variable in clauses[0]:
                weight *= self.probabilities[variable]
            return _Closed(weight)
        # Independent-and: factor out variables common to every clause.
        common = frozenset.intersection(*clauses)
        if common:
            weight = 1.0
            for variable in common:
                weight *= self.probabilities[variable]
            rest = DNF(clause - common for clause in clauses)
            self.node_count += 1  # the factored-out constant child
            return _Inner(
                _IND_AND, [_Closed(weight), self._build(rest)], origin=dnf.clauses
            )
        # Independent-or: split into connected components.
        components = _connected_components(dnf)
        if len(components) > 1:
            children = [self._build(component) for component in components]
            return _Inner(_IND_OR, children, origin=dnf.clauses)
        return _Leaf(dnf, self.probabilities)

    # -- Shannon variable cobranching -----------------------------------------

    def _expand_leaf(self, leaf: _Leaf) -> None:
        branch = branch_variable(leaf.dnf)
        p = self.probabilities[branch]
        positive = _cofactor_true(leaf.dnf, branch)
        negative = leaf.dnf.condition(branch, False)
        self.node_count += 1  # the ⊙ node itself; children count via _build
        replacement = _Inner(
            _DET_OR,
            [self._build(positive), self._build(negative)],
            weights=[p, 1.0 - p],
            origin=leaf.dnf.clauses,
        )
        leaf.expanded = True
        self.steps += 1
        self._splice(leaf, replacement)
        self._enqueue_subtree(replacement, self._path_weight(replacement))

    # -- bound propagation and frontier management ----------------------------

    def _splice(self, old: _Node, new: _Node) -> None:
        """Replace ``old`` with ``new`` and propagate bounds up to the root."""
        parent = old.parent
        if parent is None:
            self.root = new
            new.parent = None
            return
        new.parent = parent
        new.slot = old.slot
        parent.children[old.slot] = new
        node: Optional[_Inner] = parent
        while node is not None:
            before = (node.lower, node.upper)
            node.refresh_bounds()
            if all(isinstance(child, _Closed) for child in node.children):
                if node.origin is not None:
                    self.memo[node.origin] = node.lower
                closed = _Closed(node.lower)
                grand = node.parent
                if grand is None:
                    self.root = closed
                    return
                closed.parent = grand
                closed.slot = node.slot
                grand.children[node.slot] = closed
                node = grand
                continue
            if (node.lower, node.upper) == before:
                return
            node = node.parent

    def _path_weight(self, node: _Node) -> float:
        weight = 1.0
        while node.parent is not None:
            weight *= node.parent.child_weight(node.slot)
            node = node.parent
        return weight

    def _enqueue_subtree(self, node: _Node, weight: float) -> None:
        """Push every open leaf under ``node`` with its influence estimate."""
        if isinstance(node, _Closed):
            return
        if isinstance(node, _Leaf):
            if not node.expanded:
                node.heap_gen = self._heap_gen
                self._counter += 1
                heappush(
                    self._heap,
                    (-(weight * (node.upper - node.lower)), self._counter, node),
                )
            return
        assert isinstance(node, _Inner)
        for slot, child in enumerate(node.children):
            self._enqueue_subtree(child, weight * node.child_weight(slot))

    def _rebuild_frontier(self) -> None:
        """Recompute all influence weights from scratch (heals heap staleness)."""
        self._heap = []
        self._heap_gen += 1
        self._counter = 0
        self._enqueue_subtree(self.root, 1.0)

    def bounds(self) -> Tuple[float, float]:
        return self.root.lower, self.root.upper

    @property
    def lower(self) -> float:
        """Current root lower bound (the tree-level surface schedulers use,
        shared with :class:`repro.prob.sharedag.SharedDTree`, whose root is
        a table nid rather than a node object)."""
        return self.root.lower

    @property
    def upper(self) -> float:
        return self.root.upper

    @property
    def is_exact(self) -> bool:
        return isinstance(self.root, _Closed)

    @property
    def gap(self) -> float:
        return self.root.upper - self.root.lower

    def expand_once(self) -> bool:
        """Expand the most influential open leaf; False if the tree is closed."""
        if self.steps >= self._next_rebuild:
            self._rebuild_frontier()
            self._next_rebuild = int(self.steps * _REFRESH_FACTOR) + _REFRESH_BASE
        while self._heap:
            _, _, leaf = heappop(self._heap)
            if leaf.expanded or leaf.heap_gen != self._heap_gen:
                continue
            cached = self.memo.get(leaf.dnf.clauses)
            if cached is not None:
                leaf.expanded = True
                self._splice(leaf, _Closed(cached))
                continue
            self._expand_leaf(leaf)
            return True
        return False

    def refine(
        self,
        steps: Optional[int] = None,
        *,
        epsilon: float = 0.0,
        relative: bool = False,
    ) -> int:
        """Perform up to ``steps`` leaf expansions; return how many were done.

        Stops early as soon as the tree closes (exact value reached) or the
        root interval meets the ``epsilon`` budget.  ``steps=None`` removes
        the per-call cap, so ``refine(epsilon=0.0)`` compiles to exactness.
        The method is resumable: successive calls continue tightening the
        same monotone bracket, which is what lets a multi-tuple scheduler
        hand out refinement quanta to whichever tuple needs them most.
        """
        performed = 0
        while steps is None or performed < steps:
            if self.is_exact or _budget_met(
                self.root.lower, self.root.upper, epsilon, relative
            ):
                break
            if not self.expand_once():
                break
            performed += 1
        return performed

    def refine_to_target(self, target_steps: int) -> int:
        """Refine until the tree's *cumulative* step count reaches ``target_steps``.

        The unit of work of the round-based parallel top-k/threshold
        scheduler: because leaf expansion order is deterministic, a tree
        refined to a given cumulative step count has the same bounds no
        matter which process performed which portion of the expansions — a
        worker holding a warm tree pays only the difference, a worker
        rebuilding from scratch pays the full count, and both report
        identical brackets.  A tree already at or past the target performs
        nothing.  Returns the number of expansions performed by this call.
        """
        return self.refine(max(0, target_steps - self.steps))

    def result(self) -> ApproxResult:
        """The current bracket packaged as an :class:`ApproxResult`."""
        lower, upper = self.bounds()
        return ApproxResult(
            probability=0.5 * (lower + upper),
            lower=lower,
            upper=upper,
            steps=self.steps,
            exact=self.is_exact or upper == lower,
        )


def _budget_met(
    lower: float, upper: float, epsilon: float, relative: bool
) -> bool:
    gap = upper - lower
    if gap <= 0.0:
        return True
    if relative:
        return gap <= 2.0 * epsilon * lower
    return gap <= 2.0 * epsilon


def refine_to_budget(
    tree: DTree,
    *,
    epsilon: float = 0.0,
    relative: bool = False,
    max_steps: Optional[int] = DEFAULT_MAX_STEPS,
) -> ApproxResult:
    """Drive ``tree`` until the ``epsilon`` budget is met or it closes.

    ``max_steps`` caps the expansions performed *by this call*, and the
    returned :class:`ApproxResult`'s ``steps`` counts this call's expansions
    only (a cached tree may already carry refinement from earlier
    evaluations; that work is neither charged against the cap nor reported
    again).  Exceeding the cap raises a structured
    :class:`repro.errors.ApproximationBudgetError` carrying the best bounds
    so far; pass ``max_steps=None`` to disable the cap.
    """
    if epsilon < 0.0:
        raise ProbabilityError(f"epsilon must be non-negative, got {epsilon}")
    # tree.refine re-checks exactness and the epsilon budget before every
    # single expansion, so one call with the whole cap is all it takes.
    spent = tree.refine(max_steps, epsilon=epsilon, relative=relative)
    lower, upper = tree.bounds()
    if not (tree.is_exact or _budget_met(lower, upper, epsilon, relative)):
        raise ApproximationBudgetError(
            lower=lower,
            upper=upper,
            epsilon=epsilon,
            relative=relative,
            steps=spent,
        )
    return ApproxResult(
        probability=0.5 * (lower + upper),
        lower=lower,
        upper=upper,
        steps=spent,
        exact=tree.is_exact or upper == lower,
    )


def dtree_probability(
    dnf: DNF,
    probabilities: Mapping[int, float],
    *,
    epsilon: float = 0.0,
    relative: bool = False,
    max_steps: Optional[int] = DEFAULT_MAX_STEPS,
    cache: Optional["DTreeCache"] = None,
) -> ApproxResult:
    """Probability of a positive DNF via anytime d-tree compilation.

    With ``epsilon == 0`` the compilation runs to completion and the result is
    exact.  With ``epsilon > 0`` the loop stops as soon as the midpoint of the
    root interval is guaranteed within ``epsilon`` of the true probability
    (absolutely, or relatively to it when ``relative`` is true).  If
    ``max_steps`` leaf expansions do not reach the budget, a structured
    :class:`repro.errors.ApproximationBudgetError` carrying the best bounds so
    far is raised; pass ``max_steps=None`` to disable the cap.  ``cache``
    reuses (and keeps refining) the tree compiled for the same lineage by an
    earlier call.
    """
    tree = cache.get(dnf, probabilities) if cache is not None else DTree(dnf, probabilities)
    return refine_to_budget(tree, epsilon=epsilon, relative=relative, max_steps=max_steps)


class DTreeCache:
    """A shared lineage → :class:`DTree` cache.

    Repeated evaluations over overlapping candidate sets (successive top-k
    calls, threshold sweeps with different τ, an exact re-check after an
    anytime run) keep hitting the same per-tuple lineage.  The cache hands
    back the *same* incrementally compiled tree, so refinement accumulates
    across calls instead of restarting from scratch, and all trees share one
    closed-subformula memo, so a subformula compiled under one tuple closes
    instantly under every other tuple.

    All lookups must use probabilities from the same variable space (one
    probabilistic database): entries are keyed by the clause set alone.
    ``max_entries`` bounds the tree cache with LRU eviction; ``max_nodes``
    additionally bounds the *summed node count* of the cached trees — entry
    counts are blind to lineage size, so one workload of huge d-trees could
    otherwise blow memory long before 4096 entries.  The shared memo (whose
    entries are not attributable to a single tree) is capped at
    ``memo_limit`` and simply reset when it overflows — it is a pure
    accelerator, so dropping it never affects correctness.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 4096,
        memo_limit: Optional[int] = 1_000_000,
        max_nodes: Optional[int] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ProbabilityError(f"max_entries must be positive, got {max_entries}")
        if memo_limit is not None and memo_limit < 1:
            raise ProbabilityError(f"memo_limit must be positive, got {memo_limit}")
        if max_nodes is not None and max_nodes < 1:
            raise ProbabilityError(f"max_nodes must be positive, got {max_nodes}")
        self.max_entries = max_entries
        self.memo_limit = memo_limit
        self.max_nodes = max_nodes
        self.hits = 0
        self.misses = 0
        #: Entries dropped (LRU or node-budget) — cheap int, surfaced by the
        #: engine's cache statistics so benchmarks can attribute warm-vs-cold
        #: step counts instead of inferring them.
        self.evictions = 0
        self._trees: Dict[FrozenSet[Clause], DTree] = {}
        #: Last-seen node count per entry plus the running total — node
        #: budget enforcement must be O(1) per access (cache hits are on
        #: the per-tuple hot path), so totals are adjusted by delta when an
        #: entry is touched rather than re-summed over all entries.
        self._node_counts: Dict[FrozenSet[Clause], int] = {}
        self._total_nodes = 0
        self._memo: Dict[FrozenSet[Clause], float] = {}
        #: Every (variable, probability) pair the cache has ever seen: both the
        #: cached trees *and* the shared memo are only valid under these values,
        #: so a lookup that contradicts them is a misuse and raises.
        self._probabilities: Dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._trees)

    def _check_space(self, dnf: DNF, probabilities: Mapping[int, float]) -> None:
        recorded = self._probabilities
        for variable in dnf.variables():
            value = probabilities.get(variable)
            existing = recorded.get(variable)
            if existing is None:
                if value is not None:
                    recorded[variable] = value
            elif existing != value:
                raise ProbabilityError(
                    f"DTreeCache is bound to one probability space: variable "
                    f"{variable} was cached with probability {existing}, "
                    f"now given {value}"
                )

    def get(self, dnf: DNF, probabilities: Mapping[int, float]) -> DTree:
        """The (possibly already refined) tree for ``dnf``, building on a miss."""
        self._check_space(dnf, probabilities)
        key = dnf.clauses
        tree = self._trees.get(key)
        if tree is not None:
            self.hits += 1
            self._trees[key] = self._trees.pop(key)  # mark most recently used
            self._account(key, tree)
            self._enforce_node_budget()
            return tree
        self.misses += 1
        if self.memo_limit is not None and len(self._memo) > self.memo_limit:
            # Live trees keep their reference to the dict; rebinding gives new
            # trees a fresh one instead of mutating it out from under them.
            self._memo = {}
        tree = DTree(dnf, probabilities, memo=self._memo)
        self._trees[key] = tree
        self._account(key, tree)
        if self.max_entries is not None and len(self._trees) > self.max_entries:
            self._evict(next(iter(self._trees)))
        self._enforce_node_budget()
        return tree

    def _account(self, key, tree: DTree) -> None:
        """Fold the entry's current node count into the running total."""
        before = self._node_counts.get(key, 0)
        self._total_nodes += tree.node_count - before
        self._node_counts[key] = tree.node_count

    def _evict(self, key) -> None:
        self._trees.pop(key)
        self._total_nodes -= self._node_counts.pop(key, 0)
        self.evictions += 1

    def _enforce_node_budget(self) -> None:
        """Evict (LRU) until the tracked node total fits ``max_nodes``.

        Trees grow after insertion — callers refine them in place — so each
        entry's count is refreshed whenever it is accessed (the O(1) delta
        in :meth:`_account`; counts of untouched entries may lag until
        their next access).  The most recently accessed tree may be evicted
        too: the caller holds it, the cache just forgets it.
        """
        if self.max_nodes is None:
            return
        while self._total_nodes > self.max_nodes and self._trees:
            self._evict(next(iter(self._trees)))

    def clear(self) -> None:
        self._trees.clear()
        self._node_counts.clear()
        self._total_nodes = 0
        self._memo.clear()
        self._probabilities.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


# ---------------------------------------------------------------------------
# Karp–Luby Monte Carlo estimation
# ---------------------------------------------------------------------------


def karp_luby_probability(
    dnf: DNF,
    probabilities: Mapping[int, float],
    *,
    samples: int = 10_000,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> MonteCarloResult:
    """Karp–Luby importance-sampling estimate of a positive DNF's probability.

    Draws a clause ``C_i`` with probability proportional to ``P(C_i)``, then a
    possible world conditioned on ``C_i`` being true, and counts the draw when
    ``C_i`` is the *first* (in a fixed clause order) satisfied clause of that
    world.  The hit frequency times ``sum_i P(C_i)`` is an unbiased estimator
    of ``P(DNF)`` whose relative variance is bounded by the number of clauses
    — unlike naive possible-world sampling, which fails for small
    probabilities.  Used as a cross-check of the d-tree bounds and as the
    last-resort fallback for lineage on which compilation exhausts its budget.
    """
    if samples < 1:
        raise ProbabilityError(f"samples must be positive, got {samples}")
    if dnf.is_true():
        return MonteCarloResult(1.0, 0.0, samples)
    if dnf.is_false():
        return MonteCarloResult(0.0, 0.0, samples)
    generator = rng if rng is not None else random.Random(seed)
    clauses = sorted(dnf.clauses, key=lambda clause: sorted(clause))
    clause_probs: List[float] = []
    for clause in clauses:
        weight = 1.0
        for variable in clause:
            weight *= probabilities[variable]
        clause_probs.append(weight)
    total = sum(clause_probs)
    if total <= 0.0:
        return MonteCarloResult(0.0, 0.0, samples)
    cumulative: List[float] = []
    running = 0.0
    for weight in clause_probs:
        running += weight
        cumulative.append(running)
    variables = sorted(dnf.variables())
    hits = 0
    for _ in range(samples):
        pick = generator.random() * total
        index = min(bisect_left(cumulative, pick), len(cumulative) - 1)
        forced = clauses[index]
        world = {
            variable: True
            if variable in forced
            else generator.random() < probabilities[variable]
            for variable in variables
        }
        first_satisfied = -1
        for j, clause in enumerate(clauses):
            if j > index:
                break
            if all(world[variable] for variable in clause):
                first_satisfied = j
                break
        if first_satisfied == index:
            hits += 1
    fraction = hits / samples
    estimate = min(1.0, total * fraction)
    spread = total * math.sqrt(max(fraction * (1.0 - fraction), 1.0 / samples) / samples)
    return MonteCarloResult(estimate, 1.96 * spread, samples)

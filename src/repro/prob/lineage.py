"""Lineage extraction from answer relations.

After evaluating a conjunctive query plan that copies the ``V``/``P`` columns
along (the standard semantics of Section II-C), the answer relation encodes,
for each distinct data tuple, a DNF formula: one clause per answer row, one
positive literal per contributing base-table variable.  This module turns that
relational encoding back into :class:`repro.prob.formulas.DNF` objects and
computes confidences from them — the reference path every optimised evaluator
is checked against.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ApproximationBudgetError, ProbabilityError
from repro.prob.dtree import (
    DEFAULT_MAX_STEPS,
    ApproxResult,
    DTree,
    DTreeCache,
    dtree_probability,
    karp_luby_probability,
)
from repro.prob.formulas import DNF, dnf_probability
from repro.storage.relation import Relation
from repro.storage.schema import ColumnRole, Schema

__all__ = [
    "split_answer_columns",
    "lineage_by_tuple",
    "interned_dnf",
    "probabilities_from_answer",
    "confidences_from_lineage",
    "approximate_confidences_from_lineage",
    "dtrees_from_dnfs",
    "dtrees_from_lineage",
]

DataTuple = Tuple[object, ...]


def interned_dnf(clauses, interner=None) -> DNF:
    """A :class:`DNF` whose clause frozensets are shared via ``interner``.

    The lineage entry point of streaming inserts
    (:meth:`repro.sprout.streaming.StandingQuery.insert_tuple`): routing a
    new tuple's clauses through the standing store's
    :class:`repro.prob.sharedag.ClauseInterner` means every clause the store
    has seen before comes back as the *same* frozenset object — hashing and
    intern-table lookups on the warm store then hit cached hashes, and a
    tuple built from already-refined subformulas decides in 0–few steps.
    ``interner`` is anything with an ``intern(iterable) -> frozenset``
    method; ``None`` just freezes the clauses.
    """
    if interner is None:
        return DNF(frozenset(clause) for clause in clauses)
    return DNF(interner.intern(clause) for clause in clauses)


def split_answer_columns(schema: Schema) -> Tuple[List[int], List[int], List[int]]:
    """Return (data column indices, variable column indices, probability column indices)."""
    data_indices: List[int] = []
    var_indices: List[int] = []
    prob_indices: List[int] = []
    for index, attribute in enumerate(schema):
        if attribute.role is ColumnRole.DATA:
            data_indices.append(index)
        elif attribute.role is ColumnRole.VAR:
            var_indices.append(index)
        else:
            prob_indices.append(index)
    return data_indices, var_indices, prob_indices


def lineage_by_tuple(answer: Relation) -> Dict[DataTuple, DNF]:
    """Group answer rows by data tuple and collect their DNF lineage.

    Each answer row contributes one clause consisting of the variables in its
    VAR columns.  Rows whose variable columns contain ``None`` (possible after
    outer operations, not produced by the supported query class) are rejected.
    """
    data_indices, var_indices, _ = split_answer_columns(answer.schema)
    clauses: Dict[DataTuple, set] = {}
    for row in answer:
        data = tuple(row[i] for i in data_indices)
        clause = []
        for index in var_indices:
            variable = row[index]
            if variable is None:
                raise ProbabilityError("answer row has a NULL variable column")
            clause.append(int(variable))
        clauses.setdefault(data, set()).add(frozenset(clause))
    return {data: DNF(clause_set) for data, clause_set in clauses.items()}


def probabilities_from_answer(answer: Relation) -> Dict[int, float]:
    """Collect the variable -> probability mapping encoded in the answer rows."""
    _, var_indices, prob_indices = split_answer_columns(answer.schema)
    if len(var_indices) != len(prob_indices):
        raise ProbabilityError("answer relation has unpaired variable/probability columns")
    probabilities: Dict[int, float] = {}
    for row in answer:
        for var_index, prob_index in zip(var_indices, prob_indices):
            variable = row[var_index]
            probability = row[prob_index]
            if variable is None:
                continue
            variable = int(variable)
            existing = probabilities.get(variable)
            if existing is not None and abs(existing - probability) > 1e-12:
                raise ProbabilityError(
                    f"variable {variable} carries two different probabilities "
                    f"({existing} vs {probability})"
                )
            probabilities[variable] = float(probability)
    return probabilities


def confidences_from_lineage(
    answer: Relation,
    probabilities: Optional[Mapping[int, float]] = None,
) -> Dict[DataTuple, float]:
    """Exact confidence of every distinct data tuple in ``answer``.

    Probabilities default to the ones carried in the answer's ``P`` columns.
    This evaluator handles arbitrary DNFs (it does not need a hierarchical
    query); it is the reference implementation used to validate the SPROUT
    operator and the safe-plan baseline.
    """
    if probabilities is None:
        probabilities = probabilities_from_answer(answer)
    return {
        data: dnf_probability(dnf, probabilities)
        for data, dnf in lineage_by_tuple(answer).items()
    }


def approximate_confidences_from_lineage(
    answer: Relation,
    probabilities: Optional[Mapping[int, float]] = None,
    *,
    epsilon: float = 0.0,
    relative: bool = False,
    max_steps: Optional[int] = DEFAULT_MAX_STEPS,
    monte_carlo_samples: Optional[int] = 10_000,
    rng: Optional[random.Random] = None,
    cache: Optional[DTreeCache] = None,
) -> Dict[DataTuple, ApproxResult]:
    """Anytime d-tree confidence of every distinct data tuple in ``answer``.

    Each tuple's DNF lineage is compiled into a decomposition tree until the
    ``epsilon`` budget is met (``epsilon == 0`` compiles to exactness); the
    result maps each tuple to an :class:`repro.prob.dtree.ApproxResult` with
    guaranteed lower/upper bounds.  When compilation exhausts ``max_steps``
    and ``monte_carlo_samples`` is set, the Karp–Luby estimator (drawing from
    ``rng``, for reproducibility across runs) supplies the point estimate
    (clamped into the d-tree's sound bracket) instead of propagating
    :class:`repro.errors.ApproximationBudgetError`.  ``cache`` reuses the
    incrementally compiled trees across evaluations of overlapping candidate
    sets.
    """
    if probabilities is None:
        probabilities = probabilities_from_answer(answer)
    results: Dict[DataTuple, ApproxResult] = {}
    for data, dnf in lineage_by_tuple(answer).items():
        try:
            results[data] = dtree_probability(
                dnf,
                probabilities,
                epsilon=epsilon,
                relative=relative,
                max_steps=max_steps,
                cache=cache,
            )
        except ApproximationBudgetError as error:
            if monte_carlo_samples is None:
                raise
            estimate = karp_luby_probability(
                dnf, probabilities, samples=monte_carlo_samples, rng=rng
            ).estimate
            results[data] = ApproxResult(
                probability=min(max(estimate, error.lower), error.upper),
                lower=error.lower,
                upper=error.upper,
                steps=error.steps,
                exact=False,
            )
    return results


def dtrees_from_dnfs(
    lineage: Mapping[DataTuple, DNF],
    probabilities: Mapping[int, float],
    *,
    cache: Optional[DTreeCache] = None,
) -> Dict[DataTuple, DTree]:
    """One (resumable) decomposition tree per entry of an extracted lineage map.

    The entry point of the top-k/threshold scheduler: it needs live
    :class:`repro.prob.dtree.DTree` handles it can refine selectively, rather
    than results refined to a uniform budget.  With ``cache`` set, tuples seen
    in earlier evaluations come back with their refinement intact; a
    :class:`repro.prob.sharedag.SharedDTreeCache` additionally hash-conses the
    trees into one columnar node table
    (:class:`repro.prob.nodetable.NodeTable`), which is how the shared-lineage
    parallel path compiles lineage before exporting the store segment to its
    worker.  (The per-tuple parallel executor does *not* go through here — it
    ships the DNFs themselves to its workers as picklable work units.)
    """
    return {
        data: (
            cache.get(dnf, probabilities)
            if cache is not None
            else DTree(dnf, probabilities)
        )
        for data, dnf in lineage.items()
    }


def dtrees_from_lineage(
    answer: Relation,
    probabilities: Optional[Mapping[int, float]] = None,
    *,
    cache: Optional[DTreeCache] = None,
) -> Dict[DataTuple, DTree]:
    """:func:`dtrees_from_dnfs` over the lineage extracted from ``answer``."""
    if probabilities is None:
        probabilities = probabilities_from_answer(answer)
    return dtrees_from_dnfs(lineage_by_tuple(answer), probabilities, cache=cache)

"""Synthetic lineage generators for unsafe-query workloads.

The canonical non-hierarchical query ``q() :- R(x), S(x, y), T(y)`` produces,
on a bipartite edge relation ``S``, a DNF with one three-literal clause per
edge.  These generators build such lineage directly (without running a query)
so tests and benchmarks can exercise the d-tree engine on instances of
controlled shape:

* :func:`bipartite_lineage` — a uniformly random bipartite graph.  Dense
  instances (many edges over few nodes) are adversarial for decomposition:
  both Shannon cofactors stay large, so anytime bounds converge slowly and
  exact compilation is infeasible.
* :func:`hub_lineage` — the TPC-H ``part ⋈ partsupp ⋈ supplier`` shape: many
  parts, each linked to a few of a small set of supplier hubs.  Conditioning
  the hub variables decomposes the residual lineage per part, so anytime
  bounds converge after a handful of expansions even at hundreds of clauses.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.prob.formulas import DNF

__all__ = ["bipartite_lineage", "hub_lineage"]


def bipartite_lineage(
    num_left: int,
    num_right: int,
    num_edges: int,
    seed: int,
    p_low: float = 0.05,
    p_high: float = 0.5,
) -> Tuple[DNF, Dict[int, float]]:
    """Lineage of R ⋈ S ⋈ T on a random bipartite graph, with probabilities."""
    rng = random.Random(seed)
    edges = set()
    while len(edges) < num_edges:
        edges.add((rng.randint(0, num_left - 1), rng.randint(0, num_right - 1)))
    ids: Dict[object, int] = {}

    def var(key: object) -> int:
        return ids.setdefault(key, len(ids))

    clauses = [
        frozenset({var(("r", x)), var(("s", x, y)), var(("t", y))})
        for x, y in sorted(edges)
    ]
    probabilities = {v: rng.uniform(p_low, p_high) for v in ids.values()}
    return DNF(clauses), probabilities


def hub_lineage(
    num_parts: int = 200,
    num_suppliers: int = 25,
    per_part: int = 4,
    seed: int = 3,
    p_low: float = 0.05,
    p_high: float = 0.5,
) -> Tuple[DNF, Dict[int, float]]:
    """Part ⋈ PartSupp ⋈ Supplier lineage: many parts over few supplier hubs.

    The defaults give 800 clauses over 25 hubs — large enough that the
    memoised Shannon fallback does not terminate in reasonable time, while the
    anytime d-tree bounds converge at ``epsilon=0.01`` in milliseconds.
    """
    rng = random.Random(seed)
    ids: Dict[object, int] = {}

    def var(key: object) -> int:
        return ids.setdefault(key, len(ids))

    clauses = []
    for part in range(num_parts):
        for supplier in rng.sample(range(num_suppliers), per_part):
            clauses.append(
                frozenset(
                    {var(("p", part)), var(("ps", part, supplier)), var(("s", supplier))}
                )
            )
    probabilities = {v: rng.uniform(p_low, p_high) for v in ids.values()}
    return DNF(clauses), probabilities

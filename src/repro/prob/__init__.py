"""Probabilistic data model: variables, formulas, tables, worlds, lineage."""

from repro.prob.dtree import (
    ApproxResult,
    DTree,
    DTreeCache,
    MonteCarloResult,
    dtree_probability,
    karp_luby_probability,
    refine_to_budget,
)
from repro.prob.formulas import (
    DNF,
    And,
    Bottom,
    Formula,
    Or,
    Top,
    Var,
    dnf_probability,
    dnf_probability_enumeration,
    is_read_once,
)
from repro.prob.lineage import (
    approximate_confidences_from_lineage,
    confidences_from_lineage,
    dtrees_from_lineage,
    lineage_by_tuple,
    probabilities_from_answer,
    split_answer_columns,
)
from repro.prob.pdb import PossibleWorld, ProbabilisticDatabase
from repro.prob.ptable import ProbabilisticTable, make_tuple_independent
from repro.prob.synthetic import bipartite_lineage, hub_lineage
from repro.prob.variables import VariableInfo, VariableRegistry
from repro.prob.worlds import confidences_by_enumeration

__all__ = [
    "And",
    "ApproxResult",
    "Bottom",
    "DNF",
    "DTree",
    "DTreeCache",
    "Formula",
    "MonteCarloResult",
    "Or",
    "PossibleWorld",
    "ProbabilisticDatabase",
    "ProbabilisticTable",
    "Top",
    "Var",
    "VariableInfo",
    "VariableRegistry",
    "approximate_confidences_from_lineage",
    "bipartite_lineage",
    "confidences_by_enumeration",
    "confidences_from_lineage",
    "dnf_probability",
    "dnf_probability_enumeration",
    "dtree_probability",
    "dtrees_from_lineage",
    "hub_lineage",
    "is_read_once",
    "karp_luby_probability",
    "lineage_by_tuple",
    "make_tuple_independent",
    "probabilities_from_answer",
    "refine_to_budget",
    "split_answer_columns",
]

"""Probabilistic data model: variables, formulas, tables, worlds, lineage.

Everything about *probability*, independent of query processing:

* :mod:`repro.prob.variables` / :mod:`repro.prob.ptable` /
  :mod:`repro.prob.pdb` — Boolean variables with marginals, probabilistic
  tables, and the tuple-independent :class:`ProbabilisticDatabase`.
* :mod:`repro.prob.formulas` — DNF lineage, one-occurrence-form formulas,
  and exact weighted model counting by memoised Shannon expansion.
* :mod:`repro.prob.lineage` — extraction of per-tuple DNF lineage from
  answer relations that carry ``V``/``P`` columns.
* :mod:`repro.prob.dtree` — the anytime decomposition-tree engine: exact
  when compilation closes, guaranteed lower/upper bounds when stopped
  early, plus the Karp–Luby Monte Carlo fallback.  Its deterministic,
  resumable refinement is what the parallel executor
  (:mod:`repro.sprout.parallel`) distributes across worker processes.
* :mod:`repro.prob.sharedag` — the shared-lineage DAG: hash-consed
  subformula nodes shared *across* answer tuples, with per-tuple
  :class:`SharedDTree` views whose bounds tighten whenever any tuple
  refines a shared node.  What the serial top-k/threshold scheduler runs
  on by default (``shared_lineage=True``).
* :mod:`repro.prob.delta` — delta updates over the shared DAG: a
  probability update re-seeds exactly the rows carrying the variable and
  repairs their ancestor closure in one multi-source pass; deleted views
  are retired with epoch-based garbage accounting.  The substrate of the
  streaming layer (:mod:`repro.sprout.streaming`).
* :mod:`repro.prob.backend` / :mod:`repro.prob.nodetable` — the columnar
  refinement core: node kinds, child ranges, and bound columns in parallel
  flat arrays, propagated in batched per-level passes (NumPy kernels when
  available, a bit-identical ``array``-module sweep otherwise;
  :func:`backend_info` reports which backend is active).
* :mod:`repro.prob.worlds` — brute-force possible-worlds enumeration, the
  ground truth every other evaluator is differentially tested against.
* :mod:`repro.prob.synthetic` — synthetic lineage generators for stress
  tests and benchmarks.

``docs/confidence.md`` explains how the engine routes between these
evaluators and what the epsilon/bounds semantics guarantee.
"""

from repro.prob.backend import HAS_NUMPY, backend_info
from repro.prob.delta import DeltaReport, apply_probability_update, retire_view
from repro.prob.dtree import (
    ApproxResult,
    DTree,
    DTreeCache,
    MonteCarloResult,
    dtree_probability,
    karp_luby_probability,
    refine_to_budget,
)
from repro.prob.formulas import (
    DNF,
    And,
    Bottom,
    Formula,
    Or,
    Top,
    Var,
    dnf_probability,
    dnf_probability_enumeration,
    is_read_once,
)
from repro.prob.lineage import (
    approximate_confidences_from_lineage,
    confidences_from_lineage,
    dtrees_from_lineage,
    interned_dnf,
    lineage_by_tuple,
    probabilities_from_answer,
    split_answer_columns,
)
from repro.prob.pdb import PossibleWorld, ProbabilisticDatabase
from repro.prob.sharedag import (
    ClauseInterner,
    SharedDTree,
    SharedDTreeCache,
    SharedLineageStore,
)
from repro.prob.ptable import ProbabilisticTable, make_tuple_independent
from repro.prob.synthetic import bipartite_lineage, hub_lineage
from repro.prob.variables import VariableInfo, VariableRegistry
from repro.prob.worlds import confidences_by_enumeration

__all__ = [
    "And",
    "ApproxResult",
    "Bottom",
    "ClauseInterner",
    "DNF",
    "DTree",
    "DTreeCache",
    "DeltaReport",
    "Formula",
    "HAS_NUMPY",
    "MonteCarloResult",
    "Or",
    "PossibleWorld",
    "ProbabilisticDatabase",
    "ProbabilisticTable",
    "SharedDTree",
    "SharedDTreeCache",
    "SharedLineageStore",
    "Top",
    "Var",
    "VariableInfo",
    "VariableRegistry",
    "apply_probability_update",
    "approximate_confidences_from_lineage",
    "backend_info",
    "bipartite_lineage",
    "confidences_by_enumeration",
    "confidences_from_lineage",
    "dnf_probability",
    "dnf_probability_enumeration",
    "dtree_probability",
    "dtrees_from_lineage",
    "hub_lineage",
    "interned_dnf",
    "is_read_once",
    "karp_luby_probability",
    "lineage_by_tuple",
    "make_tuple_independent",
    "probabilities_from_answer",
    "refine_to_budget",
    "retire_view",
    "split_answer_columns",
]

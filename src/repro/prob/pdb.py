"""Tuple-independent probabilistic databases and their possible worlds.

A probabilistic database is a set of tuple-independent probabilistic tables
plus the schema-level knowledge (keys, functional dependencies) the planner
uses.  Conceptually it represents exponentially many possible worlds — one per
truth assignment of the Boolean variables; :meth:`ProbabilisticDatabase.worlds`
enumerates them (for small databases) and is the semantic ground truth every
query evaluator in this repository is tested against.
"""

from __future__ import annotations

import random
from itertools import product as cartesian_product
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.errors import CatalogError, ProbabilityError
from repro.prob.ptable import ProbabilisticTable, ProbabilitySpec, make_tuple_independent
from repro.prob.variables import VariableRegistry
from repro.storage.catalog import Catalog, FunctionalDependency
from repro.storage.relation import Relation
from repro.storage.schema import Schema

__all__ = ["ProbabilisticDatabase", "PossibleWorld"]


class PossibleWorld:
    """One possible world: a truth assignment and its deterministic instance."""

    def __init__(
        self,
        assignment: Dict[int, bool],
        probability: float,
        instance: Dict[str, Relation],
    ):
        self.assignment = assignment
        self.probability = probability
        self.instance = instance

    def __repr__(self) -> str:
        true_count = sum(1 for value in self.assignment.values() if value)
        return f"PossibleWorld(p={self.probability:.6g}, {true_count} true variables)"


class ProbabilisticDatabase:
    """A collection of tuple-independent tables with keys and FDs."""

    def __init__(self, name: str = "pdb", seed: int = 0):
        self.name = name
        self.catalog = Catalog()
        self.registry = VariableRegistry()
        self._tables: Dict[str, ProbabilisticTable] = {}
        self._rng = random.Random(seed)

    # -- construction ------------------------------------------------------------

    def add_table(
        self,
        relation: Relation,
        probabilities: ProbabilitySpec = None,
        primary_key: Optional[Sequence[str]] = None,
        candidate_keys: Optional[Iterable[Sequence[str]]] = None,
        name: Optional[str] = None,
    ) -> ProbabilisticTable:
        """Convert ``relation`` into a tuple-independent table and register it."""
        source = name or relation.name
        if source in self._tables:
            raise CatalogError(f"probabilistic table {source!r} already exists")
        table = make_tuple_independent(
            relation, self.registry, probabilities, rng=self._rng, source=source
        )
        self._tables[source] = table
        self.catalog.register_table(
            source,
            table.schema,
            relation=table.relation,
            primary_key=primary_key,
            candidate_keys=candidate_keys,
        )
        return table

    def add_fd(self, fd: FunctionalDependency) -> None:
        """Declare a functional dependency (holds in every possible world)."""
        self.catalog.add_fd(fd)

    def add_alias(
        self,
        base_table: str,
        alias: str,
        primary_key: Optional[Sequence[str]] = None,
        rename: Optional[Mapping[str, str]] = None,
    ) -> ProbabilisticTable:
        """Register a renamed copy of an existing table that *shares* its variables.

        Used for self-joins whose branches select mutually exclusive tuples
        (Section IV): the two copies of e.g. ``Nation`` in TPC-H query 7 are
        treated as different relations.  Sharing variable ids is sound exactly
        because the branches never contribute the same tuple to one answer row.
        ``rename`` optionally maps data-column names of the base table to the
        names the alias should expose (e.g. ``nationkey -> s_nationkey`` so the
        copy naturally joins with ``supplier``).
        """
        if alias in self._tables:
            raise CatalogError(f"probabilistic table {alias!r} already exists")
        base = self.table(base_table)
        renaming = dict(rename or {})
        renaming[base.var_column] = f"{alias}.V"
        renaming[base.prob_column] = f"{alias}.P"
        if primary_key is None and self.catalog.has_table(base_table):
            base_key = self.catalog.table(base_table).primary_key
            if base_key is not None:
                primary_key = tuple(renaming.get(a, a) for a in base_key)
        schema = Schema(
            tuple(
                a.renamed(renaming.get(a.name, a.name)).with_source(alias)
                for a in base.schema
            )
        )
        relation = Relation(alias, schema, list(base.relation))
        data_schema = Schema(
            a.renamed(renaming.get(a.name, a.name)).with_source(alias)
            for a in base.data_schema
        )
        table = ProbabilisticTable(alias, relation, data_schema)
        self._tables[alias] = table
        self.catalog.register_table(
            alias,
            schema,
            relation=relation,
            primary_key=primary_key,
        )
        return table

    # -- lookups -------------------------------------------------------------------

    def table(self, name: str) -> ProbabilisticTable:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown probabilistic table {name!r}; known: {sorted(self._tables)}"
            ) from None

    def relation(self, name: str) -> Relation:
        """The stored relation (data + V/P columns) of a probabilistic table."""
        return self.table(name).relation

    def table_names(self) -> List[str]:
        return list(self._tables)

    def tables(self) -> List[ProbabilisticTable]:
        return list(self._tables.values())

    def probabilities(self) -> Dict[int, float]:
        """Mapping from every registered variable to its marginal probability."""
        return self.registry.probabilities()

    def variable_count(self) -> int:
        return len(self.registry)

    def functional_dependencies(self) -> List[FunctionalDependency]:
        return self.catalog.functional_dependencies()

    # -- possible-worlds semantics ----------------------------------------------------

    def world(self, assignment: Mapping[int, bool]) -> Dict[str, Relation]:
        """The deterministic instance selected by a (total) truth assignment.

        Each table keeps only the tuples whose variable is true, projected onto
        its data columns.
        """
        instance: Dict[str, Relation] = {}
        for table in self._tables.values():
            data_names = list(table.data_schema.names)
            var_index = table.schema.index_of(table.var_column)
            data_indices = table.schema.indices_of(data_names)
            world_relation = Relation(table.source, table.data_schema)
            for row in table.relation:
                if assignment.get(row[var_index], False):
                    world_relation.append(tuple(row[i] for i in data_indices))
            instance[table.source] = world_relation
        return instance

    def world_probability(self, assignment: Mapping[int, bool]) -> float:
        """Probability of the world selected by a total assignment."""
        probability = 1.0
        for variable, p in self.probabilities().items():
            if variable not in assignment:
                raise ProbabilityError(f"assignment does not cover variable {variable}")
            probability *= p if assignment[variable] else 1.0 - p
        return probability

    def worlds(self, max_variables: int = 22) -> Iterator[PossibleWorld]:
        """Enumerate all possible worlds (guarded against exponential blow-up)."""
        variables = sorted(self.registry)
        if len(variables) > max_variables:
            raise ProbabilityError(
                f"refusing to enumerate 2^{len(variables)} possible worlds "
                f"(limit is 2^{max_variables}); use the exact lineage evaluators instead"
            )
        probabilities = self.probabilities()
        for values in cartesian_product((False, True), repeat=len(variables)):
            assignment = dict(zip(variables, values))
            probability = 1.0
            for variable, value in assignment.items():
                p = probabilities[variable]
                probability *= p if value else 1.0 - p
            if probability == 0.0:
                continue
            yield PossibleWorld(assignment, probability, self.world(assignment))

    def __repr__(self) -> str:
        return (
            f"ProbabilisticDatabase({self.name!r}, tables={self.table_names()}, "
            f"variables={self.variable_count()})"
        )

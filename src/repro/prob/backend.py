"""Numeric backend selection for the refinement core: NumPy or pure Python.

The columnar node table (:mod:`repro.prob.nodetable`) stores bounds in flat
``array``-module columns either way; what the backend decides is whether the
batched per-level bound-propagation passes run as NumPy kernels over zero-copy
``np.frombuffer`` views or as plain Python loops.  NumPy is an *optional*
extra (``pip install .[fast]``): the import is attempted once at module load
and everything falls back to the pure-Python path when it is absent.

Both paths are bit-identical by construction — the kernels replicate the
elementwise float64 arithmetic of :func:`repro.prob.dtree.combine_bounds`
operation for operation, preserving accumulation order — so the backend is a
pure throughput choice, never a semantic one.  ``REPRO_VECTORIZE=0`` forces
the scalar path even when NumPy is installed (the CI hook for the pure-Python
leg); ``REPRO_VECTORIZE=1`` without NumPy still runs scalar (there is nothing
to vectorize with).  A malformed ``REPRO_VECTORIZE`` raises
:class:`repro.errors.ConfigurationError` like every other knob
(:mod:`repro.config` is the one shared parser) — it used to be silently
ignored, so a typo for ``false`` ran vectorized without a word.
"""

from __future__ import annotations

from typing import Optional

from repro.config import env_flag

try:  # pragma: no cover - which branch runs depends on the installed extras
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

__all__ = ["HAS_NUMPY", "backend_info", "backend_name", "default_vectorize", "numpy_or_none"]

#: Whether the optional ``numpy`` extra is importable in this interpreter.
HAS_NUMPY = _numpy is not None


def numpy_or_none():
    """The ``numpy`` module when the ``fast`` extra is installed, else None."""
    return _numpy


def default_vectorize() -> bool:
    """Whether bound propagation should run vectorized by default.

    True exactly when NumPy is importable and ``REPRO_VECTORIZE`` does not
    say otherwise.  Read per call (not cached) so tests and CI legs can flip
    the environment variable without re-importing the package.  A malformed
    value raises :class:`repro.errors.ConfigurationError`.
    """
    flag = env_flag("REPRO_VECTORIZE")
    if flag is None:
        return HAS_NUMPY
    return flag and HAS_NUMPY


def backend_name(vectorize: Optional[bool] = None) -> str:
    """``"numpy"`` or ``"python"`` for a given (or the default) setting."""
    use = default_vectorize() if vectorize is None else (bool(vectorize) and HAS_NUMPY)
    return "numpy" if use else "python"


def backend_info() -> dict:
    """Which numeric backend the refinement core is running on.

    Returns a plain dict (stable keys, JSON-serialisable) so callers —
    benchmarks, the bench report, ``EvaluationResult`` — can record it:

    * ``backend`` — ``"numpy"`` or ``"python"``, the effective default;
    * ``numpy_available`` / ``numpy_version`` — what the import found;
    * ``vectorize_default`` — the resolved default for new engines
      (``REPRO_VECTORIZE`` folded in).
    """
    return {
        "backend": backend_name(),
        "numpy_available": HAS_NUMPY,
        "numpy_version": getattr(_numpy, "__version__", None),
        "vectorize_default": default_vectorize(),
    }

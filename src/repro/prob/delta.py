"""Delta updates over the shared-lineage DAG: re-seed, propagate, account.

The whole refinement state of a :class:`repro.prob.sharedag.SharedLineageStore`
is a deterministic function of (a) the interned clause sets and (b) the
per-variable marginals — the DAG's *shape* depends only on (a): common-prefix
factoring and connected-component splits are structural, and the Shannon
branch variable is chosen by clause frequency, never by probability.  That
separation is what makes incremental maintenance sound: changing a marginal
invalidates only the *numbers* stored in rows that mention the variable, and
repairing those rows plus their ancestor closure leaves the store in exactly
the state a from-scratch compilation of the new probability space (refined to
the same structure) would produce.

A marginal ``p(v)`` is baked into three kinds of rows, each with its own
re-seed recipe:

* **closed products** — a single-clause subformula, or the common-prefix
  constant factored out by ⊗: recompute the product over the recorded
  member variables (in the recorded order, so the float folding sequence of
  the original build is replayed bit for bit);
* **open leaves** — the FKG upper / greedy lower construction bounds
  mention every variable of the leaf DNF: recompute
  :func:`repro.prob.dtree.leaf_bounds` against the updated space;
* **⊙ cobranch rows** — the two out-edge weights are ``[p, 1 - p]`` of the
  branch variable: rewrite the weights in place.

Inner ⊗/⊕/⊙ bounds are pure functions of their children, so after the
re-seeds one multi-source per-level pass
(:meth:`repro.prob.nodetable.NodeTable.propagate_from_many`) repairs every
ancestor — and therefore every tuple view — in one sweep, under either
numeric backend, bit-identically.

Deletion is *accounting*, not compaction: the columnar table is append-only
(nids must stay valid for live views), so retiring a view counts its
reachable rows as potential garbage and, once the count passes the store's
node budget, triggers the epoch-based :meth:`~repro.prob.sharedag.
SharedLineageStore.reset_nodes` — future builds start a fresh intern
generation and the owning cache drops its stale-epoch views; the rows
themselves are reclaimed when the cache's ``clear()`` swaps in a fresh
store.  The count is an upper bound: hash-consed rows shared with surviving
views are still referenced (and keep working) after being counted.

The functions here are deliberately store-shaped but import-light (node
kinds and ``leaf_bounds`` only), so :mod:`repro.prob.sharedag` can expose
them as methods without an import cycle.  See ``docs/streaming.md`` for the
user-facing update model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Union

from repro.errors import ProbabilityError
from repro.prob.dtree import leaf_bounds
from repro.prob.nodetable import KIND_CLOSED, KIND_DET_OR, KIND_LEAF

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prob.sharedag import SharedDTree, SharedLineageStore

__all__ = [
    "DeltaReport",
    "apply_probability_update",
    "retire_view",
]


@dataclass(frozen=True)
class DeltaReport:
    """What one probability update touched (the delta-propagation evidence)."""

    #: The updated variable and its new marginal.
    variable: int
    probability: float
    #: Rows whose stored value, bounds, or edge weights were re-seeded
    #: directly (0 when the update was a no-op or the variable is unknown
    #: to the store).
    reseeded: int
    #: The re-seeded rows plus their full ancestor closure — every nid whose
    #: bounds *may* have moved.  A view whose root is not in here is provably
    #: unaffected; standing queries use exactly that test to decide which
    #: decided tuples re-enter the refinement frontier.
    touched: FrozenSet[int]

    @property
    def is_noop(self) -> bool:
        return not self.touched


def apply_probability_update(
    store: "SharedLineageStore", variable: int, probability: float
) -> DeltaReport:
    """Re-seed every row carrying ``variable`` and repair all ancestors.

    The incremental twin of rebuilding the store against an updated
    probability space: after this returns, every *closed* row holds the
    bit-identical value a from-scratch compilation (of the same structure)
    under the new marginals would hold, and every open leaf carries its
    construction bounds against the new space.  Returns a
    :class:`DeltaReport`; updating a variable to its current value, or one
    the store has never interned, is a cheap no-op.
    """
    probability = float(probability)
    if not 0.0 <= probability <= 1.0:
        raise ProbabilityError(
            f"probability must be within [0, 1], got {probability}"
        )
    previous = store.probabilities.get(variable)
    store.probabilities[variable] = probability
    if previous == probability:
        return DeltaReport(variable, probability, 0, frozenset())
    dependents = store._var_index.get(variable)
    if not dependents:
        return DeltaReport(variable, probability, 0, frozenset())
    table = store.table
    kind_col = table.kind
    reseeded = []
    done = set()
    for nid in dependents:
        if nid in done:
            continue
        done.add(nid)
        kind = kind_col[nid]
        if kind == KIND_LEAF:
            dnf = store._leaf_dnf.get(nid)
            if dnf is None:
                continue  # stale index entry: the leaf was expanded since
            lower, upper = leaf_bounds(dnf, store.probabilities)
            table.lower[nid] = lower
            table.upper[nid] = upper
            reseeded.append(nid)
        elif kind == KIND_DET_OR:
            if store._branch_var.get(nid) != variable:
                continue  # registered for its leaf-era variables, not this one
            start = table.child_start[nid]
            table.edge_weight[start] = probability
            table.edge_weight[start + 1] = 1.0 - probability
            reseeded.append(nid)
        elif kind == KIND_CLOSED:
            members = store._const_vars.get(nid)
            if members is None:
                continue
            weight = 1.0
            for member in members:
                weight *= store.probabilities[member]
            table.lower[nid] = weight
            table.upper[nid] = weight
            reseeded.append(nid)
    if not reseeded:
        return DeltaReport(variable, probability, 0, frozenset())
    touched = table.propagate_from_many(reseeded)
    return DeltaReport(variable, probability, len(reseeded), frozenset(touched))


def retire_view(store: "SharedLineageStore", view: Union["SharedDTree", int]) -> int:
    """Retire one tuple view: epoch-based garbage accounting for deletes.

    Counts the rows reachable from the view's root as potential garbage
    (an upper bound — hash-consed rows shared with live views stay
    referenced and functional) and bumps ``store.retired_nodes``.  When the
    retired count passes the store's node budget the intern generation is
    reset (:meth:`~repro.prob.sharedag.SharedLineageStore.reset_nodes`):
    epoch watchers drop their stale views and future builds intern afresh,
    which is what keeps a long-lived streaming store's *live* structures
    bounded even though the columnar table itself is append-only.  Returns
    the number of rows counted.
    """
    root = view if isinstance(view, int) else view.root
    table = store.table
    child_start = table.child_start
    child_count = table.child_count
    edge_child = table.edge_child
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        begin = child_start[node]
        for slot in range(child_count[node]):
            child = edge_child[begin + slot]
            if child not in seen:
                seen.add(child)
                stack.append(child)
    store.retired_nodes += len(seen)
    if store.max_nodes is not None and store.retired_nodes > store.max_nodes:
        store.reset_nodes()
    return len(seen)

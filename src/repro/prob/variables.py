"""Boolean random variables of a tuple-independent probabilistic database.

Every tuple of a probabilistic table is annotated with a distinct Boolean
random variable (Section II-A).  Variables are represented by integer
identifiers — the paper notes that "variables ... can be represented as
integers", and the one-scan operator exploits this by picking the minimal id
as the representative of an aggregated partition.

A :class:`VariableRegistry` allocates identifiers and records, for each
variable, the table it annotates and its marginal probability.  The registry
is the ground truth used by the brute-force baselines (possible-worlds
enumeration, Shannon expansion); the query engine itself only ever touches the
``V``/``P`` columns copied through query plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import ProbabilityError

__all__ = ["VariableInfo", "VariableRegistry"]


@dataclass(frozen=True)
class VariableInfo:
    """Metadata of one Boolean random variable."""

    variable: int
    table: str
    probability: float
    label: Optional[str] = None

    def __str__(self) -> str:
        label = self.label or f"x{self.variable}"
        return f"{label}[{self.table}, p={self.probability:g}]"


def validate_probability(probability: float) -> float:
    """Check that ``probability`` lies in (0, 1] as required by the data model."""
    if not isinstance(probability, (int, float)) or isinstance(probability, bool):
        raise ProbabilityError(f"probability must be a number, got {probability!r}")
    if not 0.0 < probability <= 1.0:
        raise ProbabilityError(f"probability must be in (0, 1], got {probability!r}")
    return float(probability)


class VariableRegistry:
    """Allocator and lookup table for Boolean random variables."""

    def __init__(self) -> None:
        self._info: Dict[int, VariableInfo] = {}
        self._next_id = 1

    def fresh(self, table: str, probability: float, label: Optional[str] = None) -> int:
        """Allocate a new variable annotating a tuple of ``table``."""
        probability = validate_probability(probability)
        variable = self._next_id
        self._next_id += 1
        self._info[variable] = VariableInfo(variable, table, probability, label)
        return variable

    def __len__(self) -> int:
        return len(self._info)

    def __contains__(self, variable: int) -> bool:
        return variable in self._info

    def __iter__(self) -> Iterator[int]:
        return iter(self._info)

    def info(self, variable: int) -> VariableInfo:
        try:
            return self._info[variable]
        except KeyError:
            raise ProbabilityError(f"unknown variable {variable!r}") from None

    def probability(self, variable: int) -> float:
        """Marginal probability of ``variable`` being true."""
        return self.info(variable).probability

    def table(self, variable: int) -> str:
        """Name of the table whose tuple ``variable`` annotates."""
        return self.info(variable).table

    def probabilities(self) -> Dict[int, float]:
        """Mapping variable -> probability for all registered variables."""
        return {v: info.probability for v, info in self._info.items()}

    def variables_of(self, table: str) -> List[int]:
        """All variables annotating tuples of ``table``."""
        return [v for v, info in self._info.items() if info.table == table]

    def set_probability(self, variable: int, probability: float) -> None:
        """Update the marginal probability of an existing variable."""
        info = self.info(variable)
        self._info[variable] = VariableInfo(
            info.variable, info.table, validate_probability(probability), info.label
        )

"""The query service core: one engine, one shared store, one refinement lane.

:class:`QueryService` multiplexes concurrent ``evaluate`` / ``topk`` /
``threshold`` requests and standing-query subscriptions over **one** shared
:class:`repro.sprout.engine.SproutEngine` — and therefore one
:class:`repro.prob.sharedag.ClauseInterner` and one
:class:`repro.prob.sharedag.SharedLineageStore`.  That sharing is the whole
point: PR 5/7 showed warm-store repeats deciding in 0–1 logical steps, and
the service is what makes the warm state reachable from many clients at once
instead of being locked inside a single-threaded library.

Concurrency model — **admission is concurrent, refinement is serial**:

* any number of transport threads/coroutines call :meth:`submit`
  concurrently; each successful submit assigns the request the next
  *admission sequence number* (``seq``) and enqueues it on a **bounded**
  FIFO queue (admission control: a full queue rejects the request with
  :class:`repro.errors.ServiceOverloadedError`, HTTP 429, instead of
  letting refinement work pile up without bound);
* one dedicated refinement lane (a worker thread) drains the queue in
  admission order and runs each request to completion against the shared
  engine.  The store's lock/epoch discipline
  (:meth:`repro.prob.sharedag.SharedLineageStore.pinned`) additionally
  keeps every mutation serialised and defers node-budget epoch resets to
  request boundaries.  With :attr:`ServiceConfig.refine_lanes` the single
  lane becomes a lane *pool*: requests still execute one at a time in
  admission order, but each request's shared refinement rounds fan their
  pure compute phase across N data-parallel lanes
  (:class:`repro.sprout.parallel.RefinementLanePool`) — the round schedule
  is planned before any lane runs, so responses stay bit-identical.

This is what makes the **determinism contract** hold: the decided sets,
confidences, bounds, and step counts of an interleaved request sequence are
bit-identical to executing the same requests serially in admission order —
concurrency changes *when* a request runs, never what it computes.  (A
response's ``seq`` field is the replay order; ``tests/test_service.py``
proves the contract with N interleaved asyncio clients.)

Per-request budgets ride each request: ``epsilon`` for approximate
evaluation, ``max_steps`` for top-k/threshold/subscription refinement,
optionally clamped by the server-wide
:attr:`ServiceConfig.max_steps_ceiling`.  Requests are plain dicts (the
HTTP layer in :mod:`repro.service.http` decodes JSON bodies into them) and
queries arrive as SQL text parsed by :func:`repro.query.parser.parse_query`.
"""

from __future__ import annotations

import os
import queue
import threading
import warnings
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.deadline import Deadline
from repro.errors import (
    PlanningError,
    ServiceError,
    ServiceOverloadedError,
    SnapshotError,
)
from repro.prob.pdb import ProbabilisticDatabase
from repro.prob.sharedag import SharedDTreeCache
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.service.snapshot import read_snapshot, write_snapshot
from repro.sprout.engine import EvaluationResult, SproutEngine
from repro.sprout.streaming import StandingQuery

__all__ = ["QueryService", "ServiceConfig", "result_payload"]


@dataclass
class ServiceConfig:
    """Server-wide knobs of one :class:`QueryService`.

    ``max_pending`` bounds the admission queue — the refinement work a
    client can park on the server — and is the admission-control knob: a
    submit against a full queue raises
    :class:`repro.errors.ServiceOverloadedError` (HTTP 429) immediately.
    ``max_steps_ceiling`` clamps the per-request ``max_steps`` budget (a
    request asking for more is rejected with a 400); ``default_max_steps``
    applies when a request names no budget at all (``None`` keeps the
    engine's own budget arithmetic: per-tuple default cap, exhaustion
    raised).  ``refine_lanes`` turns the single refinement lane into a lane
    *pool*: requests still execute one at a time in admission order, but
    each request's shared refinement rounds fan their compute phase across
    N data-parallel lanes — responses stay bit-identical to ``0`` (``None``
    defers to the engine default, i.e. the ``REPRO_LANES`` env var).

    ``default_timeout_ms`` is the wall-clock deadline applied to every
    decision request (top-k, threshold, subscribe, subscription update)
    that names no ``timeout_ms`` of its own: an expired request stops
    refining at the next round boundary and returns HTTP 200 with
    ``decided: false``, ``degraded: "deadline"``, and the current sound
    bounds — anytime degradation instead of hogging the lane (``None``
    disables the default; a request-level ``timeout_ms`` always wins).

    ``snapshot_path``/``snapshot_every`` enable crash recovery: the warm
    engine cache and every standing subscription are written atomically to
    ``snapshot_path`` every ``snapshot_every`` completed requests (counted,
    not timed — deterministic) and once more at :meth:`QueryService.close`;
    a snapshot found at boot is restored, so a killed-and-restarted server
    re-decides warm queries in ≤1 step.  A truncated or corrupt snapshot
    logs a structured warning and boots cold — never crashes.
    """

    max_pending: int = 32
    max_steps_ceiling: Optional[int] = None
    default_max_steps: Optional[int] = None
    refine_lanes: Optional[int] = None
    default_timeout_ms: Optional[float] = None
    snapshot_path: Optional[str] = None
    snapshot_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise PlanningError(
                f"max_pending must be positive, got {self.max_pending}"
            )
        if self.max_steps_ceiling is not None and self.max_steps_ceiling < 0:
            raise PlanningError(
                f"max_steps_ceiling must be non-negative, got {self.max_steps_ceiling}"
            )
        if self.refine_lanes is not None and self.refine_lanes < 0:
            raise PlanningError(
                f"refine_lanes must be non-negative, got {self.refine_lanes}"
            )
        if self.default_timeout_ms is not None and self.default_timeout_ms < 0:
            raise PlanningError(
                f"default_timeout_ms must be non-negative, got {self.default_timeout_ms}"
            )
        if self.snapshot_every is not None and self.snapshot_every < 1:
            raise PlanningError(
                f"snapshot_every must be positive, got {self.snapshot_every}"
            )
        if self.snapshot_every is not None and self.snapshot_path is None:
            raise PlanningError("snapshot_every needs a snapshot_path")


def result_payload(result: EvaluationResult) -> Dict[str, Any]:
    """An :class:`~repro.sprout.engine.EvaluationResult` as a JSON-safe dict.

    Deliberately excludes wall-clock timings: every field is a
    deterministic function of the request sequence, so two payloads from
    the same logical state compare bit-identical (floats survive the JSON
    round trip exactly — ``json`` serialises with ``repr`` precision).
    ``bounds`` are sorted by the data tuple's ``repr``, the same value-based
    order the schedulers use for ties.
    """
    payload: Dict[str, Any] = {
        "query": result.query_name,
        "plan": result.plan_style,
        "execution": result.execution,
        "confidence": result.confidence,
        "rows": [list(row) for row in result.relation],
        "decided": result.decided,
        "refine_steps": result.refine_steps,
        "delta_steps": result.delta_steps,
        "k": result.k,
        "tau": result.tau,
        "backend": result.backend,
        "answer_rows": result.answer_rows,
        # None for full-fidelity answers; "deadline" when a wall-clock budget
        # stopped refinement early (bounds stay sound — anytime degradation).
        "degraded": result.degraded,
    }
    if result.bounds:
        payload["bounds"] = sorted(
            ([list(data), lower, upper] for data, (lower, upper) in result.bounds.items()),
            key=lambda item: repr(item[0]),
        )
    return payload


class _Job:
    """One admitted request: kind, params, and the future its client awaits."""

    __slots__ = ("seq", "kind", "params", "future")

    def __init__(self, seq: int, kind: str, params: Dict[str, Any]):
        self.seq = seq
        self.kind = kind
        self.params = params
        self.future: "Future[Dict[str, Any]]" = Future()


class QueryService:
    """Multiplex evaluate/topk/threshold/subscription requests over one engine.

    Parameters
    ----------
    database
        The tuple-independent probabilistic database the service answers
        queries against.
    config
        The :class:`ServiceConfig` (admission depth, budget ceiling).
    engine
        Optionally a pre-built :class:`~repro.sprout.engine.SproutEngine`.
        By default the service builds one with ``workers=0`` — serial
        in-process refinement is what reuses the shared store across
        requests (a shipped worker segment deliberately does not) — the
        config's ``refine_lanes`` (turning the single refinement lane into
        a lane pool inside each request), and the engine's own
        ``shared_lineage``/``vectorize`` env-knob defaults.

    Lifecycle: :meth:`start` spawns the refinement lane, :meth:`close`
    drains it and closes the engine (both idempotent; the class is a
    context manager).  Transport layers call :meth:`submit` and await the
    returned future; :meth:`execute` is the synchronous path tests and the
    serial-replay oracle use.
    """

    #: Request kinds the refinement lane executes, in one dispatch table.
    KINDS = ("evaluate", "topk", "threshold", "subscribe",
             "subscription_get", "subscription_update", "subscription_delete")

    def __init__(
        self,
        database: ProbabilisticDatabase,
        config: Optional[ServiceConfig] = None,
        engine: Optional[SproutEngine] = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.engine = (
            engine
            if engine is not None
            else SproutEngine(
                database, workers=0, refine_lanes=self.config.refine_lanes
            )
        )
        self.database = self.engine.database
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue(
            maxsize=self.config.max_pending
        )
        self._admission_lock = threading.Lock()
        self._seq = 0
        self._lane: Optional[threading.Thread] = None
        self._closed = False
        self._executing = False
        self._subscriptions: Dict[str, StandingQuery] = {}
        self._subscription_seq = 0
        # Monotonic counters, surfaced by stats(); admitted/rejected move
        # under the admission lock, completed/failed only on the lane.
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        # Crash-recovery bookkeeping: restored flips once at boot; writes and
        # write failures count every periodic/shutdown snapshot attempt.
        self.snapshot_restored = False
        self.snapshot_failed = 0
        self.snapshots_written = 0
        self.snapshot_errors = 0
        self._restore_snapshot()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "QueryService":
        """Spawn the refinement lane (idempotent)."""
        if self._lane is None or not self._lane.is_alive():
            self._closed = False
            self._lane = threading.Thread(
                target=self._drain, name="repro-service-lane", daemon=True
            )
            self._lane.start()
        return self

    def close(self) -> None:
        """Stop the lane (after the queued work drains) and close the engine.

        Idempotent.  The closed flag flips under the admission lock, so every
        job admitted before close precedes the shutdown sentinel in the FIFO
        queue — in-flight futures all resolve before the lane exits.
        """
        with self._admission_lock:
            was_closed = self._closed
            self._closed = True
        lane = self._lane
        if lane is not None and lane.is_alive():
            if not was_closed:
                self._queue.put(None)  # FIFO: lands behind all admitted jobs
            lane.join(timeout=60)
        self._lane = None
        if not was_closed:
            # The lane has drained, so the warm state is quiescent — the
            # shutdown snapshot captures every completed request's refinement.
            self._write_snapshot()
        subscriptions, self._subscriptions = dict(self._subscriptions), {}
        for watch in subscriptions.values():
            watch.close()
        self.engine.close()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission ----------------------------------------------------------

    def submit(
        self, kind: str, params: Optional[Dict[str, Any]] = None
    ) -> "Future[Dict[str, Any]]":
        """Admit one request; returns the future the refinement lane resolves.

        Assigns the admission sequence number under the admission lock and
        enqueues without blocking: a full queue raises
        :class:`repro.errors.ServiceOverloadedError` *immediately* — the
        caller gets back-pressure, not an unbounded backlog.
        """
        if kind not in self.KINDS:
            raise ServiceError(f"unknown request kind {kind!r}; choose from {self.KINDS}")
        with self._admission_lock:
            if self._closed:
                raise ServiceError("the service is closed")
            job = _Job(self._seq, kind, dict(params or {}))
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self.rejected += 1
                raise ServiceOverloadedError(
                    f"admission queue full ({self.config.max_pending} pending "
                    f"request(s)); retry after in-flight refinement drains"
                ) from None
            self._seq += 1
            self.admitted += 1
        return job.future

    def execute(self, kind: str, params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Submit and wait — the synchronous client path, and the serial-replay
        oracle the stress test compares interleaved runs against."""
        return self.submit(kind, params).result()

    def in_flight(self) -> int:
        """Queued plus currently-executing requests (approximate by nature)."""
        return self._queue.qsize() + (1 if self._executing else 0)

    # -- the refinement lane ------------------------------------------------

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                # The shutdown sentinel is enqueued after the closed flag
                # flips, so FIFO order guarantees every admitted job has
                # already been executed by the time it surfaces here.
                return
            self._executing = True
            try:
                job.future.set_result(self._execute(job))
                self.completed += 1
            except BaseException as error:  # noqa: BLE001 - forwarded to the client
                self.failed += 1
                job.future.set_exception(error)
            finally:
                self._executing = False
            every = self.config.snapshot_every
            if every is not None and self.completed and self.completed % every == 0:
                # Periodic checkpoint, counted in completed requests (never
                # wall time) so when snapshots happen is deterministic too.
                self._write_snapshot()

    def _execute(self, job: _Job) -> Dict[str, Any]:
        handler = getattr(self, "_do_" + job.kind)
        payload = handler(job.params)
        payload["seq"] = job.seq
        return payload

    # -- crash recovery -----------------------------------------------------

    def _snapshot_state(self) -> Dict[str, Any]:
        """The warm state worth surviving a restart, as one picklable dict."""
        state: Dict[str, Any] = {
            "version": 1,
            "engine_cache": (
                self.engine.dtree_cache.export_state()
                if self.engine.shared_lineage
                else None
            ),
            "subscriptions": [
                (subscription, self._subscriptions[subscription].export_state())
                for subscription in sorted(self._subscriptions)
            ],
            # Preserved so restored ids never collide with post-restart ones.
            "subscription_seq": self._subscription_seq,
        }
        return state

    def _write_snapshot(self) -> None:
        """Write a snapshot if configured; failures count, never propagate.

        Runs on the refinement lane (periodic) or after the lane has joined
        (shutdown), so the engine cache and subscriptions are quiescent.
        """
        path = self.config.snapshot_path
        if path is None:
            return
        try:
            write_snapshot(path, self._snapshot_state())
            self.snapshots_written += 1
        except SnapshotError as error:
            # Snapshotting is best-effort durability: a failed write must
            # never take down a serving lane.  The previous snapshot (if
            # any) is still intact on disk.
            self.snapshot_errors += 1
            warnings.warn(f"service snapshot failed: {error}", RuntimeWarning)

    def _restore_snapshot(self) -> None:
        """Restore warm state from ``snapshot_path`` at boot, or boot cold.

        Any defect — unreadable file, truncation, checksum mismatch, or a
        payload this build cannot rehydrate — warns and leaves the service
        in its cold-boot state; it never crashes the boot.
        """
        path = self.config.snapshot_path
        if path is None or not os.path.exists(path):
            return
        try:
            state = read_snapshot(path)
        except SnapshotError as error:
            self.snapshot_failed += 1
            warnings.warn(
                f"snapshot ignored, booting cold: {error}", RuntimeWarning
            )
            return
        restored: Dict[str, StandingQuery] = {}
        try:
            # Rehydrate everything before committing anything, so a failure
            # part-way leaves the service exactly in its cold-boot state.
            cache_state = state.get("engine_cache")
            new_cache = (
                SharedDTreeCache.from_state(cache_state)
                if cache_state is not None and self.engine.shared_lineage
                else None
            )
            for subscription, watch_state in state.get("subscriptions", ()):
                restored[subscription] = StandingQuery.from_state(watch_state)
            if new_cache is not None:
                self.engine.dtree_cache = new_cache
            self._subscriptions.update(restored)
            self._subscription_seq = int(state.get("subscription_seq", 0))
            self.snapshot_restored = True
        except Exception as error:  # noqa: BLE001 - any defect means boot cold
            for watch in restored.values():
                watch.close()
            self._subscriptions.clear()
            self._subscription_seq = 0
            self.snapshot_failed += 1
            warnings.warn(
                f"snapshot {path!r} verified but could not be rehydrated, "
                f"booting cold: {error!r}",
                RuntimeWarning,
            )

    # -- request plumbing ---------------------------------------------------

    def _parse_sql(self, params: Dict[str, Any]) -> ConjunctiveQuery:
        sql = params.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ServiceError("request needs a non-empty 'sql' string")
        name = params.get("name", "query")
        if not isinstance(name, str):
            raise ServiceError(f"'name' must be a string, got {name!r}")
        return parse_query(sql, self.database.catalog, name=name).query

    def _checked_max_steps(self, params: Dict[str, Any]) -> Optional[int]:
        """The request's step budget, clamped by the server-wide ceiling."""
        max_steps = params.get("max_steps", self.config.default_max_steps)
        if max_steps is None:
            return None
        if not isinstance(max_steps, int) or isinstance(max_steps, bool) or max_steps < 0:
            raise ServiceError(
                f"'max_steps' must be a non-negative integer, got {max_steps!r}"
            )
        ceiling = self.config.max_steps_ceiling
        if ceiling is not None and max_steps > ceiling:
            raise ServiceError(
                f"'max_steps' {max_steps} exceeds this server's ceiling {ceiling}"
            )
        return max_steps

    def _checked_deadline(self, params: Dict[str, Any]) -> Optional[Deadline]:
        """The request's wall-clock deadline, started *now* — on the lane.

        The clock starts when execution starts, not at admission: queueing
        time is the server's problem, the budget covers refinement.  A
        request-level ``timeout_ms`` overrides the config default;
        ``timeout_ms: null``/absent falls back to the default (or none).
        """
        timeout_ms = params.get("timeout_ms", self.config.default_timeout_ms)
        if timeout_ms is None:
            return None
        if (
            not isinstance(timeout_ms, (int, float))
            or isinstance(timeout_ms, bool)
            or timeout_ms < 0
        ):
            raise ServiceError(
                f"'timeout_ms' must be a non-negative number, got {timeout_ms!r}"
            )
        return Deadline.after_ms(float(timeout_ms))

    def _checked_confidence(self, params: Dict[str, Any]) -> Optional[str]:
        confidence = params.get("confidence")
        if confidence is not None and confidence not in ("exact", "approx"):
            raise ServiceError(
                f"'confidence' must be 'exact' or 'approx', got {confidence!r}"
            )
        return confidence

    def _checked_epsilon(self, params: Dict[str, Any]) -> Optional[float]:
        epsilon = params.get("epsilon")
        if epsilon is None:
            return None
        if not isinstance(epsilon, (int, float)) or isinstance(epsilon, bool) or epsilon < 0:
            raise ServiceError(
                f"'epsilon' must be a non-negative number, got {epsilon!r}"
            )
        return float(epsilon)

    # -- request handlers (refinement-lane only) ----------------------------

    def _do_evaluate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        query = self._parse_sql(params)
        if params.get("timeout_ms") is not None:
            # evaluate is epsilon-budgeted, not decision-scheduled: it has no
            # round boundaries to stop at, so a deadline cannot apply cleanly.
            raise ServiceError(
                "'timeout_ms' applies to decision requests "
                "(topk/threshold/subscribe), not 'evaluate'"
            )
        result = self.engine.evaluate(
            query,
            plan=params.get("plan", "lazy"),
            execution=params.get("execution"),
            confidence=self._checked_confidence(params),
            epsilon=self._checked_epsilon(params),
            workers=0,  # the lane IS the serialisation point; never fan out
        )
        payload = result_payload(result)
        payload["kind"] = "evaluate"
        return payload

    def _do_topk(self, params: Dict[str, Any]) -> Dict[str, Any]:
        query = self._parse_sql(params)
        k = params.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ServiceError(f"'k' must be a positive integer, got {k!r}")
        result = self.engine.evaluate_topk(
            query,
            k=k,
            execution=params.get("execution"),
            confidence=self._checked_confidence(params),
            max_steps=self._checked_max_steps(params),
            workers=0,
            deadline=self._checked_deadline(params),
        )
        payload = result_payload(result)
        payload["kind"] = "topk"
        return payload

    def _do_threshold(self, params: Dict[str, Any]) -> Dict[str, Any]:
        query = self._parse_sql(params)
        tau = params.get("tau")
        if not isinstance(tau, (int, float)) or isinstance(tau, bool) or not 0.0 <= tau <= 1.0:
            raise ServiceError(f"'tau' must be a number within [0, 1], got {tau!r}")
        result = self.engine.evaluate_threshold(
            query,
            tau=float(tau),
            execution=params.get("execution"),
            confidence=self._checked_confidence(params),
            max_steps=self._checked_max_steps(params),
            workers=0,
            deadline=self._checked_deadline(params),
        )
        payload = result_payload(result)
        payload["kind"] = "threshold"
        return payload

    def _do_subscribe(self, params: Dict[str, Any]) -> Dict[str, Any]:
        query = self._parse_sql(params)
        k = params.get("k")
        tau = params.get("tau")
        if (k is None) == (tau is None):
            raise ServiceError("a subscription needs exactly one of 'k' or 'tau'")
        kwargs: Dict[str, Any] = {
            "confidence": self._checked_confidence(params),
            "max_steps": self._checked_max_steps(params),
            # Bounds only the subscription's *initial* decision; later
            # refreshes budget per-request (subscription_update).
            "deadline": self._checked_deadline(params),
        }
        if k is not None:
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise ServiceError(f"'k' must be a positive integer, got {k!r}")
            watch = self.engine.watch_topk(query, k=k, **kwargs)
        else:
            if not isinstance(tau, (int, float)) or isinstance(tau, bool) or not 0.0 <= tau <= 1.0:
                raise ServiceError(f"'tau' must be a number within [0, 1], got {tau!r}")
            watch = self.engine.watch_threshold(query, tau=float(tau), **kwargs)
        # Ids are assigned on the lane, in admission order, so a serial
        # replay of the same request sequence reproduces them exactly.
        subscription = f"sub-{self._subscription_seq}"
        self._subscription_seq += 1
        self._subscriptions[subscription] = watch
        return self._subscription_payload(subscription, watch, kind="subscribe")

    def _subscription_for(self, params: Dict[str, Any]) -> "tuple[str, StandingQuery]":
        subscription = params.get("subscription")
        watch = self._subscriptions.get(subscription)
        if watch is None:
            raise ServiceError(f"unknown subscription {subscription!r}")
        return subscription, watch

    def _subscription_payload(
        self, subscription: str, watch: StandingQuery, kind: str
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": kind,
            "subscription": subscription,
            "k": watch.k,
            "tau": watch.tau,
            "decided": watch.decided,
            "candidates": len(watch),
            "selected": [list(data) for data in watch.selected],
            "entered": [list(data) for data in watch.last_entered],
            "left": [list(data) for data in watch.last_left],
            "total_steps": watch.total_steps,
            "delta_steps": watch.delta_steps,
        }
        if kind in ("subscribe", "subscription"):
            # The ids a client may pass to /update — omitted from update
            # responses, which would otherwise repeat the whole space.
            payload["variables"] = sorted(watch.probabilities)
        if watch.result is not None:
            payload["result"] = result_payload(watch.result)
        return payload

    def _do_subscription_get(self, params: Dict[str, Any]) -> Dict[str, Any]:
        subscription, watch = self._subscription_for(params)
        return self._subscription_payload(subscription, watch, kind="subscription")

    def _do_subscription_update(self, params: Dict[str, Any]) -> Dict[str, Any]:
        subscription, watch = self._subscription_for(params)
        variable = params.get("variable")
        probability = params.get("probability")
        if not isinstance(variable, int) or isinstance(variable, bool):
            raise ServiceError(f"'variable' must be an integer, got {variable!r}")
        if not isinstance(probability, (int, float)) or isinstance(probability, bool):
            raise ServiceError(f"'probability' must be a number, got {probability!r}")
        report = watch.update_probability(variable, float(probability))
        if params.get("refresh", True):
            watch.refresh(self._checked_deadline(params))
        payload = self._subscription_payload(subscription, watch, kind="update")
        payload["report"] = (
            None
            if report is None
            else {
                "reseeded": report.reseeded,
                "touched": len(report.touched),
                "noop": report.is_noop,
            }
        )
        return payload

    def _do_subscription_delete(self, params: Dict[str, Any]) -> Dict[str, Any]:
        subscription, watch = self._subscription_for(params)
        del self._subscriptions[subscription]
        watch.close()  # releases the standing query's lane pool, if any
        return {"kind": "unsubscribe", "subscription": subscription}

    # -- observability (any thread) -----------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Service counters plus the shared store's state, lock-consistently.

        Safe to call from any thread while the lane refines: the store
        counters are read under the store lock, and the node table's
        ``mutations`` counter lets callers detect that refinement moved
        between two reads.
        """
        payload: Dict[str, Any] = {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "in_flight": self.in_flight(),
            "max_pending": self.config.max_pending,
            "subscriptions": len(self._subscriptions),
            "refine_lanes": self.engine.refine_lanes,
            "cache": self.engine.cache_stats(),
            "snapshot": {
                "path": self.config.snapshot_path,
                "restored": self.snapshot_restored,
                "failed": self.snapshot_failed,
                "written": self.snapshots_written,
                "errors": self.snapshot_errors,
            },
        }
        if self.engine.shared_lineage and not getattr(self.engine, "_closed", False):
            store = self.engine.dtree_cache.store
            with store.lock:
                payload["store"] = {
                    "steps": store.steps,
                    "node_count": store.node_count,
                    "table_nodes": len(store.table),
                    "mutations": store.table.mutations,
                    "reset_epoch": store.reset_epoch,
                    "retired_nodes": store.retired_nodes,
                }
        return payload

    def subscriptions(self) -> List[str]:
        return sorted(self._subscriptions)

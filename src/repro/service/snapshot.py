"""Atomic, checksummed service snapshots (crash recovery).

PR 7 showed what the warm shared store is worth: a repeated top-k decision
costs ~0 logical steps against 52 cold ones.  A service restart used to throw
that away.  This module persists the warm state — the engine's shared-lineage
cache (store segment + view roots) and every standing subscription — so a
killed-and-restarted server re-decides warm queries with the same ≤1-step
repeat as before the crash.

File format (version 1)::

    b"REPROSNAP1\\n"            magic, 11 bytes
    8-byte big-endian length    of the payload that follows
    32-byte SHA-256 digest      of the payload
    payload                     pickle of the snapshot dict

Writes are atomic: the payload goes to a temp file in the destination
directory, is flushed and fsynced, and only then renamed over the target
(``os.replace``) — a crash mid-write leaves the previous snapshot intact, and
a crash mid-rename is resolved by the filesystem to one version or the other.
Reads verify magic, length, and digest; any mismatch (truncation, bit rot, a
foreign file) raises :class:`repro.errors.SnapshotError` — the service
catches it at boot, warns, and starts cold rather than crashing.

Snapshots use :mod:`pickle` because the store segment already crosses process
boundaries pickled (the PR 8 parallel scheduler); the checksum guards
integrity, not authenticity — load snapshots only from paths the operator
controls, like any pickle.  The ``snapshot.write`` fault seam fires before
the temp file is renamed, so an injected write failure never clobbers the
previous snapshot.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Optional

from repro.errors import SnapshotError
from repro.faults import fault_point

__all__ = ["MAGIC", "write_snapshot", "read_snapshot"]

MAGIC = b"REPROSNAP1\n"
_DIGEST_BYTES = 32
_LENGTH_BYTES = 8


def write_snapshot(path: str, payload: dict) -> int:
    """Atomically write ``payload`` to ``path``; returns the payload size.

    Raises :class:`repro.errors.SnapshotError` when the payload cannot be
    pickled or the write/rename fails; the previous snapshot (if any) is
    left untouched and the temp file is removed.
    """
    try:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        raise SnapshotError(f"snapshot payload is not picklable: {error!r}") from error
    digest = hashlib.sha256(body).digest()
    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle = None
    temp_path: Optional[str] = None
    try:
        fault_point("snapshot.write")
        fd, temp_path = tempfile.mkstemp(
            prefix=".repro_snapshot_", dir=directory
        )
        handle = os.fdopen(fd, "wb")
        handle.write(MAGIC)
        handle.write(len(body).to_bytes(_LENGTH_BYTES, "big"))
        handle.write(digest)
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        handle = None
        os.replace(temp_path, path)
        temp_path = None
        return len(body)
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(f"snapshot write to {path!r} failed: {error!r}") from error
    finally:
        if handle is not None:
            try:
                handle.close()
            except Exception:
                pass
        if temp_path is not None:
            try:
                os.remove(temp_path)
            except OSError:
                pass


def read_snapshot(path: str) -> dict:
    """Read and verify a snapshot; raises :class:`SnapshotError` on any defect.

    Detects: missing file, short/garbled header, a length prefix that does
    not match the bytes on disk (truncation), and a digest mismatch
    (corruption).  Only a fully verified payload is unpickled.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as error:
        raise SnapshotError(f"snapshot {path!r} unreadable: {error!r}") from error
    header = len(MAGIC) + _LENGTH_BYTES + _DIGEST_BYTES
    if len(blob) < header or not blob.startswith(MAGIC):
        raise SnapshotError(f"snapshot {path!r} has a missing or garbled header")
    length = int.from_bytes(blob[len(MAGIC) : len(MAGIC) + _LENGTH_BYTES], "big")
    digest = blob[len(MAGIC) + _LENGTH_BYTES : header]
    body = blob[header:]
    if len(body) != length:
        raise SnapshotError(
            f"snapshot {path!r} is truncated: header promises {length} payload "
            f"byte(s), file holds {len(body)}"
        )
    if hashlib.sha256(body).digest() != digest:
        raise SnapshotError(f"snapshot {path!r} failed its checksum")
    try:
        return pickle.loads(body)
    except Exception as error:
        raise SnapshotError(
            f"snapshot {path!r} passed its checksum but failed to unpickle: {error!r}"
        ) from error

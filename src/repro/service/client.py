"""Clients for the query service: a blocking one and an asyncio helper.

:class:`ServiceClient` wraps :mod:`http.client` with a fresh connection per
request — boring on purpose, so tests and tools exercise the server's real
socket path without a client-side connection pool hiding transport bugs.
:func:`arequest` is the coroutine flavour the concurrency stress test uses
to keep many requests genuinely in flight on one event loop.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServiceError, ServiceOverloadedError

__all__ = ["ServiceClient", "arequest"]


def _raise_for_status(status: int, payload: Dict[str, Any]) -> None:
    message = payload.get("error", f"HTTP {status}")
    if status == 429:
        raise ServiceOverloadedError(message)
    raise ServiceError(f"HTTP {status}: {message}")


class ServiceClient:
    """A blocking JSON client for one service endpoint.

    :meth:`request` returns the raw ``(status, payload)`` pair;
    :meth:`must` additionally raises on any non-2xx status
    (:class:`repro.errors.ServiceOverloadedError` for 429,
    :class:`repro.errors.ServiceError` otherwise).  The query helpers
    (:meth:`evaluate`, :meth:`topk`, ...) are thin wrappers over
    :meth:`must` mirroring the HTTP routes one to one.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            encoded = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if encoded else {}
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return response.status, json.loads(raw.decode("utf-8")) if raw else {}
        finally:
            connection.close()

    def must(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, payload = self.request(method, path, body)
        if status >= 400:
            _raise_for_status(status, payload)
        return payload

    # -- route helpers -------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self.must("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self.must("GET", "/stats")

    def evaluate(self, sql: str, **params: Any) -> Dict[str, Any]:
        return self.must("POST", "/evaluate", dict(params, sql=sql))

    def topk(self, sql: str, k: int, **params: Any) -> Dict[str, Any]:
        return self.must("POST", "/topk", dict(params, sql=sql, k=k))

    def threshold(self, sql: str, tau: float, **params: Any) -> Dict[str, Any]:
        return self.must("POST", "/threshold", dict(params, sql=sql, tau=tau))

    def subscribe(self, sql: str, **params: Any) -> Dict[str, Any]:
        return self.must("POST", "/subscribe", dict(params, sql=sql))

    def subscription(self, subscription: str) -> Dict[str, Any]:
        return self.must("GET", f"/subscriptions/{subscription}")

    def update(
        self, subscription: str, variable: int, probability: float, refresh: bool = True
    ) -> Dict[str, Any]:
        return self.must(
            "POST",
            f"/subscriptions/{subscription}/update",
            {"variable": variable, "probability": probability, "refresh": refresh},
        )

    def unsubscribe(self, subscription: str) -> Dict[str, Any]:
        return self.must("DELETE", f"/subscriptions/{subscription}")


async def arequest(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
) -> Tuple[int, Dict[str, Any]]:
    """One asyncio HTTP request against the service; ``(status, payload)``.

    Opens its own connection (``Connection: close``) so concurrent callers
    on one loop each hold a genuinely separate socket — the stress test's
    interleaving comes from here.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        encoded = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + encoded)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await reader.readexactly(length) if length else b""
        return status, json.loads(raw.decode("utf-8")) if raw else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, AttributeError):  # pragma: no cover
            pass

"""Clients for the query service: a blocking one and an asyncio helper.

:class:`ServiceClient` wraps :mod:`http.client` with a fresh connection per
request — boring on purpose, so tests and tools exercise the server's real
socket path without a client-side connection pool hiding transport bugs.
Transport failures (refused connection, reset mid-response, truncated body)
surface as :class:`repro.errors.ServiceConnectionError`, never as raw socket
exceptions, and are retried under a :class:`RetryPolicy` together with 429 /
503 responses — jittered exponential backoff, honouring ``Retry-After``.
:func:`arequest` is the coroutine flavour the concurrency stress test uses
to keep many requests genuinely in flight on one event loop.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ServiceConnectionError, ServiceError, ServiceOverloadedError

__all__ = ["RetryPolicy", "ServiceClient", "arequest"]


def _raise_for_status(status: int, payload: Dict[str, Any]) -> None:
    message = payload.get("error", f"HTTP {status}")
    if status == 429:
        raise ServiceOverloadedError(message)
    raise ServiceError(f"HTTP {status}: {message}")


@dataclass
class RetryPolicy:
    """How :class:`ServiceClient` retries transient failures.

    A retry budget of ``retries`` attempts *beyond* the first covers
    transport errors (:class:`repro.errors.ServiceConnectionError`) and the
    retryable ``statuses`` (back-pressure and unavailability — requests
    against this service are deterministic, so replaying one is safe).
    Delays grow exponentially from ``backoff`` up to ``max_backoff``, with a
    uniform jitter of up to ``jitter`` of the delay added so synchronised
    clients do not retry in lockstep; a server ``Retry-After`` hint raises
    the delay to at least that many seconds.  ``RetryPolicy(retries=0)``
    disables retrying entirely.  ``seed`` pins the jitter stream (tests).
    """

    retries: int = 3
    backoff: float = 0.05
    max_backoff: float = 2.0
    jitter: float = 0.25
    statuses: Tuple[int, ...] = (429, 503)
    seed: Optional[int] = None
    _random: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ServiceError(f"retries must be non-negative, got {self.retries}")
        if self.backoff < 0 or self.max_backoff < 0 or self.jitter < 0:
            raise ServiceError("backoff, max_backoff, and jitter must be non-negative")
        self._random = random.Random(self.seed)

    def delay(self, attempt: int, retry_after: Optional[float] = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        base = min(self.backoff * (2 ** attempt), self.max_backoff)
        if retry_after is not None:
            base = max(base, retry_after)
        return base + self._random.uniform(0.0, self.jitter * base)


class ServiceClient:
    """A blocking JSON client for one service endpoint.

    :meth:`request` returns the raw ``(status, payload)`` pair;
    :meth:`must` additionally raises on any non-2xx status
    (:class:`repro.errors.ServiceOverloadedError` for 429,
    :class:`repro.errors.ServiceError` otherwise).  The query helpers
    (:meth:`evaluate`, :meth:`topk`, ...) are thin wrappers over
    :meth:`must` mirroring the HTTP routes one to one.

    ``retry`` defaults to a fresh :class:`RetryPolicy`; pass
    ``RetryPolicy(retries=0)`` for fail-fast behaviour.  ``sleep`` is the
    backoff sleeper, injectable so tests assert on delays without waiting.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep

    def _once(
        self, method: str, path: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """One wire round trip: ``(status, payload, retry_after_seconds)``.

        Every transport defect — refused/reset connection, timeout, a body
        shorter than its Content-Length, non-JSON garbage from a dying
        socket — raises :class:`repro.errors.ServiceConnectionError` so
        callers handle one structured error type, not raw socket internals.
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            encoded = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if encoded else {}
            try:
                connection.request(method, path, body=encoded, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                raise ServiceConnectionError(
                    f"{method} {path} to {self.host}:{self.port} failed in "
                    f"transport: {error!r}",
                    cause=error,
                ) from error
            if response.headers.get("Content-Length") is None:
                # The service always sends Content-Length; a response without
                # one is the torso of a reply whose connection died mid-send —
                # http.client would otherwise hand back a truncated (even
                # empty) body as if it were complete.
                raise ServiceConnectionError(
                    f"{method} {path} response carries no Content-Length — "
                    f"the connection dropped mid-response"
                )
            retry_after: Optional[float] = None
            header = response.headers.get("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None  # HTTP-date form: let backoff decide
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ServiceConnectionError(
                    f"{method} {path} returned a truncated or non-JSON body "
                    f"({len(raw)} byte(s)): {error}",
                    cause=error,
                ) from error
            return response.status, payload, retry_after
        finally:
            connection.close()

    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        policy = self.retry
        attempt = 0
        while True:
            try:
                status, payload, retry_after = self._once(method, path, body)
            except ServiceConnectionError:
                if attempt >= policy.retries:
                    raise
                self._sleep(policy.delay(attempt))
                attempt += 1
                continue
            if status in policy.statuses and attempt < policy.retries:
                self._sleep(policy.delay(attempt, retry_after))
                attempt += 1
                continue
            return status, payload

    def must(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, payload = self.request(method, path, body)
        if status >= 400:
            _raise_for_status(status, payload)
        return payload

    # -- route helpers -------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self.must("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self.must("GET", "/stats")

    def evaluate(self, sql: str, **params: Any) -> Dict[str, Any]:
        return self.must("POST", "/evaluate", dict(params, sql=sql))

    def topk(self, sql: str, k: int, **params: Any) -> Dict[str, Any]:
        return self.must("POST", "/topk", dict(params, sql=sql, k=k))

    def threshold(self, sql: str, tau: float, **params: Any) -> Dict[str, Any]:
        return self.must("POST", "/threshold", dict(params, sql=sql, tau=tau))

    def subscribe(self, sql: str, **params: Any) -> Dict[str, Any]:
        return self.must("POST", "/subscribe", dict(params, sql=sql))

    def subscription(self, subscription: str) -> Dict[str, Any]:
        return self.must("GET", f"/subscriptions/{subscription}")

    def update(
        self, subscription: str, variable: int, probability: float, refresh: bool = True
    ) -> Dict[str, Any]:
        return self.must(
            "POST",
            f"/subscriptions/{subscription}/update",
            {"variable": variable, "probability": probability, "refresh": refresh},
        )

    def unsubscribe(self, subscription: str) -> Dict[str, Any]:
        return self.must("DELETE", f"/subscriptions/{subscription}")


async def arequest(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
) -> Tuple[int, Dict[str, Any]]:
    """One asyncio HTTP request against the service; ``(status, payload)``.

    Opens its own connection (``Connection: close``) so concurrent callers
    on one loop each hold a genuinely separate socket — the stress test's
    interleaving comes from here.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        encoded = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + encoded)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await reader.readexactly(length) if length else b""
        return status, json.loads(raw.decode("utf-8")) if raw else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, AttributeError):  # pragma: no cover
            pass

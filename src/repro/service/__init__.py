"""A concurrent query service over one shared SPROUT engine.

The library so far is single-caller: one thread owns the engine, the shared
:class:`~repro.prob.sharedag.SharedLineageStore`, and the d-tree cache.
This package turns that warm state into a *served* resource — an asyncio
HTTP/JSON front end (:mod:`repro.service.http`) multiplexing concurrent
``evaluate`` / ``topk`` / ``threshold`` requests and standing-query
subscriptions over **one** engine (:mod:`repro.service.core`), so every
client benefits from every other client's refinement work.

The design splits concurrency from computation: transports admit requests
concurrently under bounded admission control (queue full ⇒ HTTP 429), and a
single refinement lane executes them in admission order against the shared
store — which is exactly why the service is deterministic: an interleaved
request sequence produces bit-identical decided sets, bounds, and step
counts to a serial replay in admission order.  See ``docs/service.md``.

Run one with ``python -m repro.service`` (see :mod:`repro.service.__main__`)
or embed :class:`QueryService` / :class:`ServiceServer` directly.
"""

from .client import RetryPolicy, ServiceClient, arequest
from .core import QueryService, ServiceConfig, result_payload
from .http import ServiceServer, serve
from .snapshot import read_snapshot, write_snapshot

__all__ = [
    "QueryService",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceClient",
    "ServiceServer",
    "arequest",
    "read_snapshot",
    "result_payload",
    "serve",
    "write_snapshot",
]

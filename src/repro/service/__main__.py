"""Run a query service from the command line: ``python -m repro.service``.

Boots one :class:`repro.service.core.QueryService` over a chosen dataset and
serves it on an asyncio HTTP/JSON socket until interrupted.  Two datasets
are built in:

* ``--dataset demo`` (default) — the smoke-monitor database from
  ``examples/streaming_monitor.py``: alarm events, sensor uplinks, and zone
  controllers, whose chain join ``alarm ⋈ uplink ⋈ zone_ok`` is *unsafe*, so
  every request exercises the shared d-tree refinement path (the workload
  the service exists for);
* ``--dataset tpch`` — the probabilistic TPC-H generator at ``--scale``.

The process prints ``SERVICE READY <host> <port>`` on stdout once the
socket is bound — tools (``tools/service_smoke.py``, CI's service-smoke
job) wait for that line before connecting.  Try::

    python -m repro.service --port 8080 &
    curl -s localhost:8080/healthz
    curl -s localhost:8080/topk \
        -d '{"sql": "SELECT room, conf() FROM alarm, uplink, zone_ok", "k": 2}'
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.prob.pdb import ProbabilisticDatabase
from repro.storage import Relation, Schema

from .core import QueryService, ServiceConfig
from .http import serve

__all__ = ["demo_database", "main"]


def demo_database() -> ProbabilisticDatabase:
    """The smoke-monitor database: an unsafe chain join to refine against.

    Same data as ``examples/streaming_monitor.py`` — rooms are alarmed when
    any of their alarm events reached a live zone controller, and the chain
    through ``sensor`` and ``zone`` makes the per-room lineage unsafe.
    """
    db = ProbabilisticDatabase("smoke-monitor")
    alarms = Relation(
        "alarm",
        Schema.of("room:str", "sensor:int"),
        [
            ("kitchen", 1), ("kitchen", 2), ("lab", 2), ("lab", 3),
            ("lab", 4), ("archive", 4), ("archive", 5), ("lobby", 5),
            ("lobby", 1), ("server-room", 3), ("server-room", 6),
        ],
    )
    db.add_table(
        alarms,
        probabilities=[0.80, 0.55, 0.70, 0.60, 0.55, 0.45, 0.50, 0.40, 0.35, 0.65, 0.75],
    )
    uplinks = Relation(
        "uplink",
        Schema.of("sensor:int", "zone:str"),
        [
            (1, "east"), (2, "east"), (2, "west"), (3, "west"),
            (4, "east"), (4, "west"), (5, "west"), (6, "east"),
        ],
    )
    db.add_table(uplinks, probabilities=[0.9, 0.8, 0.6, 0.85, 0.7, 0.75, 0.8, 0.95])
    zones = Relation("zone_ok", Schema.of("zone:str"), [("east",), ("west",)])
    db.add_table(zones, probabilities=[0.95, 0.9])
    return db


def _build_database(dataset: str, scale: float) -> ProbabilisticDatabase:
    if dataset == "demo":
        return demo_database()
    from repro.tpch import probabilistic_tpch

    return probabilistic_tpch(scale_factor=scale, seed=7, probability_seed=11)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a SPROUT query service over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port; 0 picks a free one (default)"
    )
    parser.add_argument(
        "--dataset",
        choices=("demo", "tpch"),
        default="demo",
        help="database to serve: the smoke-monitor demo or probabilistic TPC-H",
    )
    parser.add_argument(
        "--scale", type=float, default=0.001, help="TPC-H scale factor (default %(default)s)"
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=32,
        help="admission-queue depth before requests get 429 (default %(default)s)",
    )
    parser.add_argument(
        "--max-steps-ceiling",
        type=int,
        default=None,
        help="reject requests asking for a larger max_steps budget (default: no ceiling)",
    )
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="default wall-clock deadline per decision request; expired requests "
        "return their current sound bounds with degraded=deadline (default: none)",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="crash-recovery snapshot file: restored at boot, written on shutdown "
        "(and periodically with --snapshot-every)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="also write the snapshot after every N completed requests",
    )
    args = parser.parse_args(argv)

    database = _build_database(args.dataset, args.scale)
    service = QueryService(
        database,
        config=ServiceConfig(
            max_pending=args.max_pending,
            max_steps_ceiling=args.max_steps_ceiling,
            default_timeout_ms=args.timeout_ms,
            snapshot_path=args.snapshot,
            snapshot_every=args.snapshot_every,
        ),
    )

    async def run() -> None:
        server = await serve(service, host=args.host, port=args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"SERVICE READY {host} {port}", flush=True)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

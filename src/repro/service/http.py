"""Asyncio HTTP/JSON transport for :class:`repro.service.core.QueryService`.

Standard library only — the loop is ``asyncio.start_server``, the protocol a
deliberately small HTTP/1.1 subset (request line, headers, ``Content-Length``
bodies, keep-alive): enough for the bundled client, ``curl``, and any HTTP
library, without pulling a web framework into the repro.

The transport is intentionally thin: handlers decode the JSON body, call
:meth:`~repro.service.core.QueryService.submit`, and ``await
asyncio.wrap_future`` on the returned future — so the event loop keeps
accepting and admitting requests from any number of sockets while the
service's single refinement lane works through them in admission order.
Back-pressure surfaces as status 429
(:class:`repro.errors.ServiceOverloadedError`); request mistakes (bad SQL,
bad parameters, unknown subscription) as 400; everything else as 500.

Routes::

    GET    /healthz                     -> {"ok": true}
    GET    /stats                       -> service + engine + store counters
    POST   /evaluate                    {"sql": ..., "epsilon"?: ...}
    POST   /topk                        {"sql": ..., "k": ..., "max_steps"?: ...}
    POST   /threshold                   {"sql": ..., "tau": ..., "max_steps"?: ...}
    POST   /subscribe                   {"sql": ..., "k"|"tau": ...}
    GET    /subscriptions               -> {"subscriptions": [...]}
    GET    /subscriptions/<id>          -> current decided set
    POST   /subscriptions/<id>/update   {"variable": ..., "probability": ...}
    DELETE /subscriptions/<id>          -> unsubscribe
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from repro.errors import InjectedFault, ReproError, ServiceError, ServiceOverloadedError
from repro.faults import fault_point

from .core import QueryService

__all__ = ["serve", "ServiceServer"]

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024


class _BadRequest(Exception):
    """A malformed HTTP request (protocol level, before the service sees it)."""


async def _read_request(
    reader: "asyncio.StreamReader",
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One HTTP request as ``(method, path, headers, body)``; None at EOF."""
    # Fault seam: an injected failure here behaves exactly like a client
    # whose socket died mid-request — the connection handler drops it.
    fault_point("http.read")
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line {request_line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    total = len(request_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise _BadRequest("headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise _BadRequest(f"body of {length} bytes exceeds the {_MAX_BODY_BYTES} limit")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _json_body(body: bytes) -> Dict[str, Any]:
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"request body is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ServiceError(f"request body must be a JSON object, got {type(payload).__name__}")
    return payload


def _response(status: int, payload: Dict[str, Any], keep_alive: bool) -> bytes:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed", 429: "Too Many Requests",
              500: "Internal Server Error"}.get(status, "OK")
    body = json.dumps(payload).encode("utf-8")
    # 429 carries Retry-After so well-behaved clients (the bundled
    # ServiceClient honours it) back off instead of hammering admission.
    retry_after = "Retry-After: 1\r\n" if status == 429 else ""
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{retry_after}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


async def _dispatch(
    service: QueryService, method: str, path: str, body: bytes
) -> Tuple[int, Dict[str, Any]]:
    """Route one request; returns ``(status, payload)``."""
    if path == "/healthz" and method == "GET":
        return 200, {"ok": True}
    if path == "/stats" and method == "GET":
        return 200, service.stats()
    if path == "/subscriptions" and method == "GET":
        return 200, {"subscriptions": service.subscriptions()}

    kind: Optional[str] = None
    params = _json_body(body)
    if path in ("/evaluate", "/topk", "/threshold", "/subscribe"):
        if method != "POST":
            return 405, {"error": f"{path} requires POST"}
        kind = path.lstrip("/")
    elif path.startswith("/subscriptions/"):
        remainder = path[len("/subscriptions/"):]
        if remainder.endswith("/update") and method == "POST":
            params["subscription"] = remainder[: -len("/update")]
            kind = "subscription_update"
        elif "/" not in remainder and method == "GET":
            params["subscription"] = remainder
            kind = "subscription_get"
        elif "/" not in remainder and method == "DELETE":
            params["subscription"] = remainder
            kind = "subscription_delete"
    if kind is None:
        return 404, {"error": f"no route for {method} {path}"}

    future = service.submit(kind, params)
    result = await asyncio.wrap_future(future)
    return 200, result


async def _handle_connection(
    service: QueryService,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
) -> None:
    """Serve one client socket: a keep-alive loop of request/response turns."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _BadRequest as error:
                writer.write(_response(400, {"error": str(error)}, keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return
            method, path, headers, body = request
            keep_alive = headers.get("connection", "keep-alive").lower() != "close"
            try:
                status, payload = await _dispatch(service, method, path, body)
            except ServiceOverloadedError as error:
                status, payload = 429, {"error": str(error)}
            except ReproError as error:
                # ServiceError, QueryError, PlanningError, ProbabilityError ...
                # — the request was wrong, not the server.
                status, payload = 400, {"error": str(error), "type": type(error).__name__}
            except Exception as error:  # noqa: BLE001 - report, keep serving
                status, payload = 500, {"error": str(error), "type": type(error).__name__}
            writer.write(_response(status, payload, keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.IncompleteReadError):
        return  # client went away mid-request
    except InjectedFault:
        return  # scripted connection drop (the http.read fault seam)
    finally:
        try:
            writer.close()
        except Exception:  # pragma: no cover - socket already torn down
            pass


async def serve(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> "asyncio.AbstractServer":
    """Bind the service to ``host:port`` (0 picks a free port) and start it.

    Returns the :class:`asyncio.AbstractServer`; the caller owns the loop
    (``async with server: await server.serve_forever()``).  The service's
    refinement lane is started if it is not running yet.
    """
    service.start()

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


class ServiceServer:
    """A :func:`serve` loop hosted on a background thread, for tests and tools.

    ``with ServiceServer(service) as server:`` boots the event loop + HTTP
    server on a daemon thread, blocks until the socket is bound (or raises
    the startup error), and exposes the bound address as ``server.host`` /
    ``server.port``.  Exit stops the loop and closes the service.
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._stop: Optional["asyncio.Event"] = None
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-http", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if not self._ready.is_set():
            raise ServiceError("the HTTP server did not come up within 30s")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        try:
            server = await serve(self.service, self.host, self.port)
        except BaseException as error:  # bind failure, bad host, ...
            self._error = error
            self._ready.set()
            return
        self.host, self.port = server.sockets[0].getsockname()[:2]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()

    def stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self.service.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

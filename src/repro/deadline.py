"""Wall-clock deadlines for anytime degradation.

The paper's central contract — refinement holds sound lower/upper confidence
bounds at every step, so computation can stop *anywhere* and still return a
correct approximation — makes wall-clock deadlines safe: a request that runs
out of time simply stops refining and reports the bounds it holds, with
``decided: false`` and ``degraded: "deadline"``.

The one rule that keeps the determinism contract intact: a deadline is
checked **between** refinement rounds, never inside one.  A round — plan,
compute cofactors (possibly across lanes), commit, propagate — is the atomic
unit of the PR 9 bit-identity contract; interrupting it mid-flight could
leave lane counts observable in the result.  Checking only at round
boundaries means the wall clock chooses a *stopping point* along the exact
same refinement trajectory every configuration walks, so any two runs that
stop at the same point hold bit-identical bounds, and a run with no deadline
(or a generous one) is bit-identical to the unlimited run.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Deadline"]


class Deadline:
    """A monotonic-clock expiry checked cooperatively at round boundaries."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = expires_at

    @classmethod
    def after_ms(cls, timeout_ms: float) -> "Deadline":
        """A deadline ``timeout_ms`` milliseconds from now (monotonic clock)."""
        return cls(time.monotonic() + timeout_ms / 1000.0)

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - time.monotonic())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


def expired(deadline: Optional[Deadline]) -> bool:
    """``True`` iff ``deadline`` is set and has passed (None-safe helper)."""
    return deadline is not None and deadline.expired()

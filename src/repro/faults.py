"""Deterministic fault injection for the chaos battery (tests only).

Robust systems are only as trustworthy as the failures they have actually
survived.  This module gives the test suite a way to *script* failures at the
seams where real ones occur — a refinement-lane thread pool dying mid-round, a
confidence worker process killed by the OOM killer, a propagation pass
interrupted, a client connection dropping mid-request, a snapshot write
failing on a full disk — and to replay the exact same failure schedule on
every run.  Determinism matters twice over: the chaos tests must not flake,
and the PR 9 bit-identity contract means a retried round after a fault must
land the same answer as the no-fault run, which is only checkable when the
fault itself is reproducible.

The mechanism is deliberately tiny.  Production call sites invoke
:func:`fault_point` with a seam name; when no plan is installed (the default,
always, outside tests) that is one global read and a ``None`` check.  A test
installs a :class:`FaultPlan` — either programmatically via :func:`injected`
or through the ``REPRO_FAULTS`` environment variable, which the service
subprocess smoke uses — and the plan raises :class:`repro.errors.InjectedFault`
on the scripted 1-based call numbers of each scripted seam.

Seams (the only valid names, typo-guarded):

``lane_pool.submit``
    Entry of :meth:`RefinementLanePool.map` — before any cofactor work runs,
    so the store is never left mid-round.  Supervision retries/respawns.
``worker_pool.run``
    Entry of :meth:`ProcessExecutor.run`.  Supervision respawns the pool and
    ultimately falls back to the serial executor (bit-identical by contract).
``store.propagate``
    Entry of :meth:`SharedLineageStore.refine_round` — before the round is
    planned or committed, so bounds stay exactly where the previous round
    left them (sound by monotonicity).
``http.read``
    Inside the service's request reader: simulates a client connection that
    dies mid-request.  The connection is dropped; the service keeps serving.
``snapshot.write``
    Inside the atomic snapshot writer, before the rename: the temp file is
    discarded and the previous snapshot survives.

``REPRO_FAULTS`` grammar (parsed per call, like every other knob)::

    seam:calls[;seam:calls...]   e.g.  "lane_pool.submit:1,3;http.read:2"
    seed:<int>                   a seeded pseudo-random plan over all seams

A malformed spec raises :class:`repro.errors.ConfigurationError` with the
offending text, mirroring :mod:`repro.config`.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, Optional, Sequence

from .errors import ConfigurationError, InjectedFault

__all__ = [
    "SEAMS",
    "FaultPlan",
    "fault_point",
    "install",
    "uninstall",
    "injected",
]

SEAMS = (
    "lane_pool.submit",
    "worker_pool.run",
    "store.propagate",
    "http.read",
    "snapshot.write",
)

_ENV_VAR = "REPRO_FAULTS"


class FaultPlan:
    """A deterministic schedule of injected failures, keyed by seam.

    ``schedule`` maps a seam name to the *1-based* call numbers that must
    raise.  Call counting is per-plan and thread-safe: the service handles
    requests on one lane thread but reads connections on the asyncio thread,
    and both may consult the same plan.
    """

    def __init__(self, schedule: Dict[str, FrozenSet[int]]):
        for seam in schedule:
            if seam not in SEAMS:
                raise ConfigurationError(
                    f"unknown fault seam {seam!r}; valid seams: {', '.join(SEAMS)}"
                )
        self.schedule = {seam: frozenset(calls) for seam, calls in schedule.items()}
        self._calls = {seam: 0 for seam in self.schedule}
        self._fired = {seam: 0 for seam in self.schedule}
        self._lock = threading.Lock()

    def check(self, seam: str) -> None:
        """Count one call at ``seam``; raise if this call number is scripted."""
        if seam not in self.schedule:
            return
        with self._lock:
            self._calls[seam] += 1
            call = self._calls[seam]
            if call in self.schedule[seam]:
                self._fired[seam] += 1
            else:
                return
        raise InjectedFault(seam, call)

    def fired(self, seam: Optional[str] = None) -> int:
        """How many scripted faults have actually raised (for test asserts)."""
        with self._lock:
            if seam is not None:
                return self._fired.get(seam, 0)
            return sum(self._fired.values())

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar; raise ConfigurationError if bad."""
        text = spec.strip()
        if not text:
            raise ConfigurationError(f"{_ENV_VAR} must not be empty when set")
        if text.startswith("seed:"):
            try:
                seed = int(text[len("seed:") :], 10)
            except ValueError:
                raise ConfigurationError(
                    f"{_ENV_VAR} seed must be an integer, got {spec!r}"
                ) from None
            return cls.seeded(seed)
        schedule: Dict[str, FrozenSet[int]] = {}
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            seam, sep, calls_text = part.partition(":")
            seam = seam.strip()
            if not sep or not calls_text.strip():
                raise ConfigurationError(
                    f"{_ENV_VAR} entries must look like 'seam:1,3', got {part!r}"
                )
            try:
                calls = frozenset(int(c.strip(), 10) for c in calls_text.split(","))
            except ValueError:
                raise ConfigurationError(
                    f"{_ENV_VAR} call numbers must be integers, got {part!r}"
                ) from None
            if any(c < 1 for c in calls):
                raise ConfigurationError(
                    f"{_ENV_VAR} call numbers are 1-based, got {part!r}"
                )
            if seam in schedule:
                calls = schedule[seam] | calls
            schedule[seam] = calls
        if not schedule:
            raise ConfigurationError(f"{_ENV_VAR} contained no seam entries: {spec!r}")
        return cls(schedule)

    @classmethod
    def seeded(
        cls,
        seed: int,
        seams: Sequence[str] = SEAMS,
        faults_per_seam: int = 1,
        window: int = 8,
    ) -> "FaultPlan":
        """A pseudo-random but fully reproducible plan: ``faults_per_seam``
        scripted calls per seam, drawn from the first ``window`` calls."""
        rng = random.Random(seed)
        schedule = {
            seam: frozenset(rng.sample(range(1, window + 1), faults_per_seam))
            for seam in seams
        }
        return cls(schedule)


# The currently installed plan.  ``None`` means fault injection is off, which
# is the permanent production state; the env variable is consulted only when
# no plan is installed programmatically, and its parse is cached per spec
# string so per-call counters survive across fault_point() calls.
_active: Optional[FaultPlan] = None
_env_cache: Optional[tuple] = None  # (raw spec, FaultPlan)


def install(plan: FaultPlan) -> None:
    """Install ``plan`` globally (tests only).  Pair with :func:`uninstall`."""
    global _active
    _active = plan


def uninstall() -> None:
    global _active
    _active = None


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: install ``plan`` for the block, then restore."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def _current_plan() -> Optional[FaultPlan]:
    global _env_cache
    if _active is not None:
        return _active
    spec = os.environ.get(_ENV_VAR)
    if spec is None:
        return None
    if _env_cache is not None and _env_cache[0] == spec:
        return _env_cache[1]
    plan = FaultPlan.parse(spec)
    _env_cache = (spec, plan)
    return plan


def fault_point(seam: str) -> None:
    """Consult the installed plan at ``seam``; no-op when none is installed.

    Call sites pass literal seam names; an unknown name is a programming
    error and raises immediately even with no plan installed, so a typo'd
    seam cannot silently disable its battery coverage.
    """
    if seam not in SEAMS:
        raise ConfigurationError(
            f"unknown fault seam {seam!r}; valid seams: {', '.join(SEAMS)}"
        )
    plan = _current_plan()
    if plan is not None:
        plan.check(seam)

"""Scalar predicate expressions used by selections and joins.

The query class considered in the paper restricts selection conditions to
conjunctions of atomic comparisons between attributes and constants, and join
conditions to attribute equalities.  The expression classes here cover exactly
that (plus disjunction/negation, used by the self-join partition rewrite of
Section IV and by TPC-H query 19's mutually exclusive branches).

Expressions evaluate either on a row dictionary (``evaluate``) or, bound
against a schema, as a fast positional callable (``bind``).
"""

from __future__ import annotations

import abc
import operator
from typing import Callable, FrozenSet, Iterable, List, Sequence

from repro.errors import QueryError
from repro.storage.schema import Schema

__all__ = [
    "Predicate",
    "TruePredicate",
    "Comparison",
    "AttributeComparison",
    "Conjunction",
    "Disjunction",
    "Negation",
    "conjunction_of",
]

_OPERATORS = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_CANONICAL_OP = {"==": "=", "<>": "!="}


def _op_function(op: str):
    try:
        return _OPERATORS[op]
    except KeyError:
        raise QueryError(f"unknown comparison operator {op!r}") from None


class Predicate(abc.ABC):
    """Boolean expression over one row."""

    @abc.abstractmethod
    def evaluate(self, row: dict) -> bool:
        """Evaluate against a row given as an attribute-name dictionary."""

    @abc.abstractmethod
    def bind(self, schema: Schema) -> Callable[[Sequence[object]], bool]:
        """Compile to a callable over positional rows of ``schema``."""

    @abc.abstractmethod
    def attributes(self) -> FrozenSet[str]:
        """Attribute names referenced by this predicate."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return conjunction_of([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Disjunction([self, other])

    def __invert__(self) -> "Predicate":
        return Negation(self)


class TruePredicate(Predicate):
    """The always-true predicate (empty selection condition)."""

    def evaluate(self, row: dict) -> bool:
        return True

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], bool]:
        return lambda row: True

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"

    def __eq__(self, other) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TruePredicate")


class Comparison(Predicate):
    """``attribute op constant`` — the unary predicates of the paper's σφ."""

    def __init__(self, attribute: str, op: str, value: object):
        self.attribute = attribute
        self.op = _CANONICAL_OP.get(op, op)
        self.value = value
        self._fn = _op_function(op)

    def evaluate(self, row: dict) -> bool:
        actual = row.get(self.attribute)
        if actual is None:
            return False
        return self._fn(actual, self.value)

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], bool]:
        index = schema.index_of(self.attribute)
        fn, value = self._fn, self.value
        return lambda row: row[index] is not None and fn(row[index], value)

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.attribute})

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"

    def __repr__(self) -> str:
        return f"Comparison({self.attribute!r}, {self.op!r}, {self.value!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Comparison)
            and (self.attribute, self.op, self.value)
            == (other.attribute, other.op, other.value)
        )

    def __hash__(self) -> int:
        return hash((self.attribute, self.op, self.value))


class AttributeComparison(Predicate):
    """``left_attribute op right_attribute`` — used for theta-join conditions."""

    def __init__(self, left: str, op: str, right: str):
        self.left = left
        self.op = _CANONICAL_OP.get(op, op)
        self.right = right
        self._fn = _op_function(op)

    def evaluate(self, row: dict) -> bool:
        left, right = row.get(self.left), row.get(self.right)
        if left is None or right is None:
            return False
        return self._fn(left, right)

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], bool]:
        left_index = schema.index_of(self.left)
        right_index = schema.index_of(self.right)
        fn = self._fn
        return lambda row: (
            row[left_index] is not None
            and row[right_index] is not None
            and fn(row[left_index], row[right_index])
        )

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.left, self.right})

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AttributeComparison)
            and (self.left, self.op, self.right) == (other.left, other.op, other.right)
        )

    def __hash__(self) -> int:
        return hash((self.left, self.op, self.right, "attr"))


class _Compound(Predicate):
    """Shared behaviour of conjunctions and disjunctions."""

    combiner = all  # overridden

    def __init__(self, parts: Iterable[Predicate]):
        self.parts: List[Predicate] = list(parts)

    def evaluate(self, row: dict) -> bool:
        return type(self).combiner(part.evaluate(row) for part in self.parts)

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], bool]:
        bound = [part.bind(schema) for part in self.parts]
        combiner = type(self).combiner
        return lambda row: combiner(fn(row) for fn in bound)

    def attributes(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.attributes()
        return result

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(str(p) for p in self.parts)))


class Conjunction(_Compound):
    """Logical AND of predicates."""

    combiner = all

    def __str__(self) -> str:
        if not self.parts:
            return "true"
        return " AND ".join(f"({part})" for part in self.parts)


class Disjunction(_Compound):
    """Logical OR of predicates."""

    combiner = any

    def __str__(self) -> str:
        if not self.parts:
            return "false"
        return " OR ".join(f"({part})" for part in self.parts)

    def evaluate(self, row: dict) -> bool:
        return any(part.evaluate(row) for part in self.parts)


class Negation(Predicate):
    """Logical NOT of a predicate."""

    def __init__(self, part: Predicate):
        self.part = part

    def evaluate(self, row: dict) -> bool:
        return not self.part.evaluate(row)

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], bool]:
        bound = self.part.bind(schema)
        return lambda row: not bound(row)

    def attributes(self) -> FrozenSet[str]:
        return self.part.attributes()

    def __str__(self) -> str:
        return f"NOT ({self.part})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Negation) and self.part == other.part

    def __hash__(self) -> int:
        return hash(("not", str(self.part)))


def conjunction_of(parts: Sequence[Predicate]) -> Predicate:
    """Build the flattest possible conjunction of ``parts``.

    Empty input yields :class:`TruePredicate`; a single part is returned as-is;
    nested conjunctions and TruePredicates are flattened away.
    """
    flattened: List[Predicate] = []
    for part in parts:
        if isinstance(part, TruePredicate):
            continue
        if isinstance(part, Conjunction):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    if not flattened:
        return TruePredicate()
    if len(flattened) == 1:
        return flattened[0]
    return Conjunction(flattened)

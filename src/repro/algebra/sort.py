"""Sorting and duplicate-elimination operators."""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.algebra.operators import Operator, Row
from repro.storage.external_sort import SortStats, external_sort
from repro.storage.schema import Schema

__all__ = ["SortOp", "DistinctOp"]


class SortOp(Operator):
    """Sort the child's output by the given columns.

    Small inputs are sorted in memory; larger inputs spill sorted runs to disk
    via :func:`repro.storage.external_sort.external_sort`, mirroring the
    secondary-storage sort that precedes the confidence operator in SPROUT.
    """

    def __init__(
        self,
        child: Operator,
        by: Sequence[str],
        max_rows_in_memory: int = 100_000,
    ):
        super().__init__()
        self.child = child
        self.by = list(by)
        self.max_rows_in_memory = max_rows_in_memory
        self.sort_stats = SortStats()
        self._key_indices = child.schema.indices_of(self.by)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> List[Operator]:
        return [self.child]

    def _execute(self) -> Iterator[Row]:
        self.sort_stats = SortStats()
        yield from external_sort(
            self.child,
            self._key_indices,
            max_rows_in_memory=self.max_rows_in_memory,
            stats=self.sort_stats,
        )

    def label(self) -> str:
        return f"Sort({', '.join(self.by)})"


class DistinctOp(Operator):
    """Remove duplicate rows (hash-based, preserves first-seen order)."""

    def __init__(self, child: Operator):
        super().__init__()
        self.child = child

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> List[Operator]:
        return [self.child]

    def _execute(self) -> Iterator[Row]:
        seen = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                yield row

    def label(self) -> str:
        return "Distinct"

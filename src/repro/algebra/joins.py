"""Join operators: hash join, sort-merge join, and nested-loop join.

All three implement *natural equi-joins*: the join attributes are either given
explicitly or default to the data attributes shared by both inputs (the paper
assumes join attributes carry the same name in the joined tables).  The output
schema keeps the left input's columns and appends the right input's columns
minus the join attributes — variable/probability columns of both sides are
always preserved, which is what lets the confidence operator be placed
anywhere above.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.algebra.operators import Operator, Row
from repro.storage.external_sort import sort_key_for
from repro.storage.schema import ColumnRole, Schema

__all__ = ["JoinOp", "HashJoinOp", "MergeJoinOp", "NestedLoopJoinOp", "natural_join_attributes"]


def natural_join_attributes(left: Schema, right: Schema) -> List[str]:
    """Shared DATA attribute names of the two schemas, in left-schema order."""
    right_names = {a.name for a in right if a.role is ColumnRole.DATA}
    return [a.name for a in left if a.role is ColumnRole.DATA and a.name in right_names]


class JoinOp(Operator):
    """Common machinery of the concrete join operators."""

    join_kind = "Join"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        on: Optional[Sequence[str]] = None,
    ):
        super().__init__()
        self.left = left
        self.right = right
        if on is None:
            on = natural_join_attributes(left.schema, right.schema)
        self.on = list(on)
        for name in self.on:
            left.schema.index_of(name)
            right.schema.index_of(name)
        self._left_key_indices = left.schema.indices_of(self.on)
        self._right_key_indices = right.schema.indices_of(self.on)
        # Right columns that are kept: everything except the join attributes
        # (they are equal to the left copies anyway).
        self._right_keep_indices = [
            i for i, attribute in enumerate(right.schema) if attribute.name not in self.on
        ]
        self._schema = Schema(
            tuple(left.schema.attributes)
            + tuple(right.schema.attributes[i] for i in self._right_keep_indices)
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def label(self) -> str:
        condition = ", ".join(self.on) if self.on else "cross"
        return f"{self.join_kind}({condition})"

    # -- helpers ---------------------------------------------------------------

    def _combine(self, left_row: Row, right_row: Row) -> Row:
        return left_row + tuple(right_row[i] for i in self._right_keep_indices)

    def _left_key(self, row: Row) -> Tuple[object, ...]:
        return tuple(row[i] for i in self._left_key_indices)

    def _right_key(self, row: Row) -> Tuple[object, ...]:
        return tuple(row[i] for i in self._right_key_indices)


class HashJoinOp(JoinOp):
    """Classic build/probe hash join (builds on the right input)."""

    join_kind = "HashJoin"

    def _execute(self) -> Iterator[Row]:
        table: Dict[Tuple[object, ...], List[Row]] = {}
        for right_row in self.right:
            key = self._right_key(right_row)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(right_row)
        for left_row in self.left:
            key = self._left_key(left_row)
            if any(value is None for value in key):
                continue
            for right_row in table.get(key, ()):
                yield self._combine(left_row, right_row)


class NestedLoopJoinOp(JoinOp):
    """Nested-loop join; with an empty ``on`` list this is a cross product."""

    join_kind = "NestedLoopJoin"

    def _execute(self) -> Iterator[Row]:
        right_rows = list(self.right)
        for left_row in self.left:
            left_key = self._left_key(left_row)
            if any(value is None for value in left_key):
                continue
            for right_row in right_rows:
                if left_key == self._right_key(right_row):
                    yield self._combine(left_row, right_row)


class MergeJoinOp(JoinOp):
    """Sort-merge join; sorts both inputs on the join key, then merges."""

    join_kind = "MergeJoin"

    def __init__(self, left: Operator, right: Operator, on: Optional[Sequence[str]] = None):
        super().__init__(left, right, on)
        if not self.on:
            raise QueryError("merge join requires at least one join attribute")

    def _execute(self) -> Iterator[Row]:
        def sort_rows(rows, key_indices):
            return sorted(
                (row for row in rows if all(row[i] is not None for i in key_indices)),
                key=lambda row: tuple(sort_key_for(row[i]) for i in key_indices),
            )

        left_rows = sort_rows(self.left, self._left_key_indices)
        right_rows = sort_rows(self.right, self._right_key_indices)
        left_position = right_position = 0
        while left_position < len(left_rows) and right_position < len(right_rows):
            left_key = self._left_key(left_rows[left_position])
            right_key = self._right_key(right_rows[right_position])
            left_sort = tuple(sort_key_for(v) for v in left_key)
            right_sort = tuple(sort_key_for(v) for v in right_key)
            if left_sort < right_sort:
                left_position += 1
            elif left_sort > right_sort:
                right_position += 1
            else:
                # Collect the group of equal keys on both sides and emit the product.
                left_end = left_position
                while (
                    left_end < len(left_rows)
                    and self._left_key(left_rows[left_end]) == left_key
                ):
                    left_end += 1
                right_end = right_position
                while (
                    right_end < len(right_rows)
                    and self._right_key(right_rows[right_end]) == right_key
                ):
                    right_end += 1
                for i in range(left_position, left_end):
                    for j in range(right_position, right_end):
                        yield self._combine(left_rows[i], right_rows[j])
                left_position, right_position = left_end, right_end

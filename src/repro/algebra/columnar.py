"""Columnar batch execution: vectorized counterparts of the row operators.

The iterator-model operators in :mod:`repro.algebra.operators` process one
Python tuple at a time; every row travels through a chain of generator frames
and is rebuilt by each projection.  At TPC-H scale the interpreter overhead of
that per-row choreography dominates the runtime.  The operators here process
:class:`ColumnBatch` chunks of ~4k rows instead: a batch is a list of column
lists, transposition happens at C speed via ``zip``, selections evaluate one
comparison per *column* with list comprehensions, and joins/projections gather
values with per-column comprehensions instead of per-row tuple surgery.

Semantics are kept deliberately identical to the row operators — same output
order, same ``None`` handling in predicates and join keys, same
insertion-ordered grouping — so that ``execution="batch"`` produces
bit-identical answer relations (see ``tests/test_batch_execution.py``).
"""

from __future__ import annotations

import abc
from itertools import compress
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.algebra.aggregate import AGGREGATE_FUNCTIONS, AggregateSpec, aggregate_output_schema
from repro.algebra.expressions import (
    AttributeComparison,
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
    TruePredicate,
)
from repro.algebra.joins import natural_join_attributes
from repro.storage.external_sort import sort_key_for
from repro.storage.relation import Relation
from repro.storage.schema import Schema

__all__ = [
    "DEFAULT_BATCH_ROWS",
    "ColumnBatch",
    "BatchOperator",
    "BatchScanOp",
    "BatchMaterializedOp",
    "BatchSelectOp",
    "BatchProjectOp",
    "BatchHashJoinOp",
    "BatchGroupByOp",
    "BatchSortOp",
    "build_group_buckets",
    "compile_mask",
    "group_by_columns",
    "sort_batch",
]

#: Rows per batch.  Large enough to amortise per-batch Python overhead, small
#: enough that a batch's columns stay cache-friendly.
DEFAULT_BATCH_ROWS = 4096

Column = List[object]


class ColumnBatch:
    """A chunk of rows stored column-wise: one Python list per attribute.

    The columns are treated as immutable once the batch is constructed;
    operators build new column lists instead of mutating their input.
    ``length`` is stored explicitly so zero-column batches (Boolean query
    answers) keep their row count.
    """

    __slots__ = ("schema", "columns", "length")

    def __init__(self, schema: Schema, columns: Sequence[Column], length: Optional[int] = None):
        if len(columns) != len(schema):
            raise SchemaError(
                f"batch has {len(columns)} columns for a schema of arity {len(schema)}"
            )
        self.schema = schema
        self.columns = list(columns)
        if length is None:
            length = len(self.columns[0]) if self.columns else 0
        if any(len(column) != length for column in self.columns):
            raise SchemaError(
                f"ragged batch: column lengths {[len(c) for c in self.columns]} "
                f"do not all equal {length}"
            )
        self.length = length

    # -- construction ---------------------------------------------------------

    @classmethod
    def empty(cls, schema: Schema) -> "ColumnBatch":
        return cls(schema, [[] for _ in schema], 0)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Sequence[object]]) -> "ColumnBatch":
        """Transpose a chunk of row tuples into a batch (C-speed via ``zip``)."""
        if not rows:
            return cls.empty(schema)
        return cls(schema, [list(column) for column in zip(*rows)], len(rows))

    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnBatch":
        return cls.from_rows(relation.schema, relation.rows)

    @classmethod
    def concat(cls, schema: Schema, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate batches of the same schema into one."""
        if not batches:
            return cls.empty(schema)
        if len(batches) == 1:
            return batches[0]
        columns: List[Column] = []
        for position in range(len(schema)):
            merged: Column = []
            for batch in batches:
                merged.extend(batch.columns[position])
            columns.append(merged)
        return cls(schema, columns, sum(b.length for b in batches))

    # -- basic protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"ColumnBatch({self.length} rows, {len(self.schema)} cols)"

    # -- access ---------------------------------------------------------------

    def column(self, name: str) -> Column:
        return self.columns[self.schema.index_of(name)]

    def rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate the batch row-wise (transposes via ``zip``)."""
        if not self.columns:
            return iter([()] * self.length)
        return zip(*self.columns)

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather the rows at ``indices`` (in the given order)."""
        return ColumnBatch(
            self.schema,
            [[column[i] for i in indices] for column in self.columns],
            len(indices),
        )

    def to_relation(self, name: str = "result") -> Relation:
        return Relation.from_columns(name, self.schema, self.columns, length=self.length)


# ---------------------------------------------------------------------------
# Columnar predicate compilation
# ---------------------------------------------------------------------------


MaskFn = Callable[[ColumnBatch], List[bool]]


def compile_mask(predicate: Predicate, schema: Schema) -> MaskFn:
    """Compile ``predicate`` to a per-batch boolean-mask function.

    The known predicate classes are evaluated column-wise with one list
    comprehension per atomic comparison; anything else falls back to binding
    the row predicate and evaluating it over the transposed batch.  ``None``
    handling matches :meth:`Predicate.bind` exactly (``None`` never satisfies
    a comparison).
    """
    if isinstance(predicate, TruePredicate):
        return lambda batch: [True] * batch.length
    if isinstance(predicate, Comparison):
        index = schema.index_of(predicate.attribute)
        fn, value = predicate._fn, predicate.value
        if predicate.op == "=" and value is not None:
            # `None == constant` is already False, so the None guard that the
            # ordered comparisons need (they would raise on None) can be
            # dropped — one comparison per element instead of two.
            return lambda batch: [v == value for v in batch.columns[index]]
        return lambda batch: [
            v is not None and fn(v, value) for v in batch.columns[index]
        ]
    if isinstance(predicate, AttributeComparison):
        left = schema.index_of(predicate.left)
        right = schema.index_of(predicate.right)
        fn = predicate._fn
        return lambda batch: [
            a is not None and b is not None and fn(a, b)
            for a, b in zip(batch.columns[left], batch.columns[right])
        ]
    if isinstance(predicate, Conjunction):
        parts = [compile_mask(part, schema) for part in predicate.parts]

        def conjunction_mask(batch: ColumnBatch) -> List[bool]:
            if not parts:
                return [True] * batch.length
            mask = parts[0](batch)
            for part in parts[1:]:
                other = part(batch)
                mask = [a and b for a, b in zip(mask, other)]
            return mask

        return conjunction_mask
    if isinstance(predicate, Disjunction):
        parts = [compile_mask(part, schema) for part in predicate.parts]

        def disjunction_mask(batch: ColumnBatch) -> List[bool]:
            if not parts:
                return [False] * batch.length
            mask = parts[0](batch)
            for part in parts[1:]:
                other = part(batch)
                mask = [a or b for a, b in zip(mask, other)]
            return mask

        return disjunction_mask
    if isinstance(predicate, Negation):
        inner = compile_mask(predicate.part, schema)
        return lambda batch: [not flag for flag in inner(batch)]
    # Unknown predicate class: row-at-a-time fallback with identical semantics.
    bound = predicate.bind(schema)
    return lambda batch: [bound(row) for row in batch.rows()]


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class BatchOperator(abc.ABC):
    """Base class of the columnar plan operators.

    Mirrors :class:`repro.algebra.operators.Operator`: ``schema``,
    ``children``, a ``rows_out`` work counter (rows, not batches, so the
    metric is comparable with the row engine), and materialisation helpers.
    """

    def __init__(self) -> None:
        self.rows_out = 0

    @property
    @abc.abstractmethod
    def schema(self) -> Schema:
        """Output schema of this operator."""

    @property
    def children(self) -> List["BatchOperator"]:
        return []

    @abc.abstractmethod
    def _execute(self) -> Iterator[ColumnBatch]:
        """Yield output batches.  Subclasses implement this, not ``batches``."""

    def batches(self) -> Iterator[ColumnBatch]:
        self.rows_out = 0
        for batch in self._execute():
            self.rows_out += batch.length
            yield batch

    def __iter__(self) -> Iterator[ColumnBatch]:
        return self.batches()

    # -- execution helpers ----------------------------------------------------

    def to_batch(self, name: str = "result") -> ColumnBatch:
        """Run the operator and concatenate its output into a single batch."""
        return ColumnBatch.concat(self.schema, list(self.batches()))

    def to_relation(self, name: str = "result") -> Relation:
        return self.to_batch(name).to_relation(name)

    def total_rows_processed(self) -> int:
        """Total rows emitted by this operator and all descendants (last run)."""
        return self.rows_out + sum(child.total_rows_processed() for child in self.children)

    # -- presentation ---------------------------------------------------------

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<{self.label()}>"


class BatchScanOp(BatchOperator):
    """Sequential scan of a stored relation, emitted in column chunks."""

    def __init__(
        self,
        relation: Relation,
        alias: Optional[str] = None,
        batch_size: int = DEFAULT_BATCH_ROWS,
    ):
        super().__init__()
        self.relation = relation
        self.alias = alias or relation.name
        self.batch_size = batch_size

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    def _execute(self) -> Iterator[ColumnBatch]:
        # Read the stored relation through its cached column view: the table
        # is transposed once, batches are cheap column slices.
        columns = self.relation.columns_cached()
        schema = self.relation.schema
        total = len(self.relation)
        for start in range(0, total, self.batch_size):
            end = min(start + self.batch_size, total)
            yield ColumnBatch(
                schema, [column[start:end] for column in columns], end - start
            )

    def label(self) -> str:
        return f"BatchScan({self.alias}, {len(self.relation)} rows)"


class BatchMaterializedOp(BatchOperator):
    """Wrap an already-materialised relation or batch as a plan leaf."""

    def __init__(
        self,
        source,
        label: str = "BatchMaterialized",
        batch_size: int = DEFAULT_BATCH_ROWS,
    ):
        super().__init__()
        self.source = source
        self._label = label
        self.batch_size = batch_size

    @property
    def schema(self) -> Schema:
        return self.source.schema

    def _execute(self) -> Iterator[ColumnBatch]:
        if isinstance(self.source, ColumnBatch):
            if self.source.length:
                yield self.source
            return
        columns = self.source.columns_cached()
        schema = self.source.schema
        total = len(self.source)
        for start in range(0, total, self.batch_size):
            end = min(start + self.batch_size, total)
            yield ColumnBatch(
                schema, [column[start:end] for column in columns], end - start
            )

    def label(self) -> str:
        return f"{self._label}({len(self.source)} rows)"


class BatchSelectOp(BatchOperator):
    """Filter batches by a predicate compiled to a columnar mask."""

    def __init__(self, child: BatchOperator, predicate: Predicate):
        super().__init__()
        self.child = child
        self.predicate = predicate

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> List[BatchOperator]:
        return [self.child]

    def _execute(self) -> Iterator[ColumnBatch]:
        mask_fn = compile_mask(self.predicate, self.child.schema)
        for batch in self.child.batches():
            mask = mask_fn(batch)
            kept = sum(mask)
            if kept == batch.length:
                yield batch
            elif kept:
                yield ColumnBatch(
                    batch.schema,
                    [list(compress(column, mask)) for column in batch.columns],
                    kept,
                )

    def label(self) -> str:
        return f"BatchSelect({self.predicate})"


class BatchProjectOp(BatchOperator):
    """Bag projection: batches just re-reference the kept column lists."""

    def __init__(self, child: BatchOperator, names: Sequence[str]):
        super().__init__()
        self.child = child
        self.names = list(names)
        self._schema = child.schema.project(self.names)
        self._indices = child.schema.indices_of(self.names)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> List[BatchOperator]:
        return [self.child]

    def _execute(self) -> Iterator[ColumnBatch]:
        for batch in self.child.batches():
            yield ColumnBatch(
                self._schema, [batch.columns[i] for i in self._indices], batch.length
            )

    def label(self) -> str:
        return f"BatchProject({', '.join(self.names)})"


class BatchHashJoinOp(BatchOperator):
    """Build/probe natural hash join over batches (builds on the right input).

    Matches :class:`repro.algebra.joins.HashJoinOp` exactly: the same default
    join attributes, rows with a ``None`` join key are dropped on both sides,
    the output keeps the left columns followed by the right columns minus the
    join attributes, and the output order is (left row order) x (right
    insertion order within a key bucket).
    """

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        on: Optional[Sequence[str]] = None,
    ):
        super().__init__()
        self.left = left
        self.right = right
        if on is None:
            on = natural_join_attributes(left.schema, right.schema)
        self.on = list(on)
        for name in self.on:
            left.schema.index_of(name)
            right.schema.index_of(name)
        self._left_key_indices = left.schema.indices_of(self.on)
        self._right_key_indices = right.schema.indices_of(self.on)
        self._right_keep_indices = [
            i for i, attribute in enumerate(right.schema) if attribute.name not in self.on
        ]
        self._schema = Schema(
            tuple(left.schema.attributes)
            + tuple(right.schema.attributes[i] for i in self._right_keep_indices)
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> List[BatchOperator]:
        return [self.left, self.right]

    def label(self) -> str:
        condition = ", ".join(self.on) if self.on else "cross"
        return f"BatchHashJoin({condition})"

    def _keys(self, batch: ColumnBatch, key_indices: Sequence[int]) -> List[Tuple[object, ...]]:
        key_columns = [batch.columns[i] for i in key_indices]
        if len(key_columns) == 1:
            return key_columns[0]  # single-attribute keys skip tuple packing
        if not key_columns:
            # Cross join: every row hashes to the empty key, like the row
            # HashJoinOp (zip of zero columns would yield no keys at all).
            return [()] * batch.length
        return list(zip(*key_columns))

    def _execute(self) -> Iterator[ColumnBatch]:
        single = len(self._left_key_indices) == 1
        # Build side: concatenate the right input and hash its keys.
        build = ColumnBatch.concat(self.right.schema, list(self.right.batches()))
        table: Dict[object, List[int]] = {}
        build_keys = self._keys(build, self._right_key_indices)
        if single:
            for position, key in enumerate(build_keys):
                if key is None:
                    continue
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [position]
                else:
                    bucket.append(position)
        else:
            for position, key in enumerate(build_keys):
                if any(value is None for value in key):
                    continue
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [position]
                else:
                    bucket.append(position)
        build_columns = [build.columns[i] for i in self._right_keep_indices]

        # Probe side: one output batch per input batch.
        get = table.get
        for batch in self.left.batches():
            probe_keys = self._keys(batch, self._left_key_indices)
            left_indices: List[int] = []
            right_indices: List[int] = []
            append_left = left_indices.append
            append_right = right_indices.append
            if single:
                for position, key in enumerate(probe_keys):
                    if key is None:
                        continue
                    bucket = get(key)
                    if bucket is None:
                        continue
                    if len(bucket) == 1:
                        append_left(position)
                        append_right(bucket[0])
                    else:
                        left_indices.extend([position] * len(bucket))
                        right_indices.extend(bucket)
            else:
                for position, key in enumerate(probe_keys):
                    if any(value is None for value in key):
                        continue
                    bucket = get(key)
                    if bucket is None:
                        continue
                    if len(bucket) == 1:
                        append_left(position)
                        append_right(bucket[0])
                    else:
                        left_indices.extend([position] * len(bucket))
                        right_indices.extend(bucket)
            if not left_indices:
                continue
            columns = [[column[i] for i in left_indices] for column in batch.columns]
            columns += [[column[j] for j in right_indices] for column in build_columns]
            yield ColumnBatch(self._schema, columns, len(left_indices))


def build_group_buckets(
    batch: ColumnBatch, group_indices: Sequence[int]
) -> Tuple[List[Column], List[int], List[List[int]]]:
    """Hash rows into insertion-ordered groups by the columns at ``group_indices``.

    Returns ``(group_columns, first_rows, buckets)``: the grouping columns,
    the row index of each group's first occurrence, and each group's row
    indices in row order.  This is the single definition of the grouping
    order every columnar aggregation shares — it must stay in lockstep with
    :class:`repro.algebra.aggregate.GroupByOp` for the bit-identical
    row/batch guarantee.
    """
    group_columns = [batch.columns[i] for i in group_indices]
    if len(group_columns) == 1:
        keys: Sequence[object] = group_columns[0]
    elif group_columns:
        keys = list(zip(*group_columns))
    else:
        keys = [()] * batch.length

    positions: Dict[object, int] = {}
    buckets: List[List[int]] = []
    first_rows: List[int] = []
    for row, key in enumerate(keys):
        slot = positions.get(key)
        if slot is None:
            positions[key] = len(buckets)
            buckets.append([row])
            first_rows.append(row)
        else:
            buckets[slot].append(row)
    return group_columns, first_rows, buckets


def group_by_columns(
    batch: ColumnBatch,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    schema: Optional[Schema] = None,
) -> ColumnBatch:
    """Hash-grouped aggregation of one batch (insertion-ordered groups).

    Behaves exactly like :class:`repro.algebra.aggregate.GroupByOp`: the output
    schema is the grouping attributes followed by one column per aggregate
    (same dtype/role inheritance), groups appear in first-occurrence order, and
    each aggregate sees its group's values in row order.
    """
    child_schema = batch.schema
    if schema is None:
        schema = aggregate_output_schema(child_schema, group_by, aggregates)
    group_indices = child_schema.indices_of(group_by)
    aggregate_indices = [child_schema.index_of(s.input_attribute) for s in aggregates]

    group_columns, first_rows, buckets = build_group_buckets(batch, group_indices)
    out_columns: List[Column] = [
        [column[i] for i in first_rows] for column in group_columns
    ]
    for spec, index in zip(aggregates, aggregate_indices):
        function = AGGREGATE_FUNCTIONS[spec.function]
        column = batch.columns[index]
        out_columns.append([function([column[i] for i in bucket]) for bucket in buckets])
    return ColumnBatch(schema, out_columns, len(buckets))


class BatchGroupByOp(BatchOperator):
    """Batched hash group-by; consumes the whole input, emits one batch."""

    def __init__(
        self,
        child: BatchOperator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        super().__init__()
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self._schema = aggregate_output_schema(child.schema, self.group_by, self.aggregates)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> List[BatchOperator]:
        return [self.child]

    def _execute(self) -> Iterator[ColumnBatch]:
        gathered = ColumnBatch.concat(self.child.schema, list(self.child.batches()))
        result = group_by_columns(gathered, self.group_by, self.aggregates, self._schema)
        if result.length:
            yield result

    def label(self) -> str:
        aggregates = ", ".join(str(spec) for spec in self.aggregates)
        return f"BatchGroupBy([{', '.join(self.group_by)}]; {aggregates})"


def sort_batch(batch: ColumnBatch, names: Sequence[str]) -> ColumnBatch:
    """Stable sort of a batch by the named columns.

    Uses the same per-value total order as :meth:`Relation.sorted_by`
    (``sort_key_for``), so the resulting permutation is identical to the row
    engine's sort.
    """
    key_indices = batch.schema.indices_of(names)
    if not key_indices or batch.length <= 1:
        return batch
    mapped = [list(map(sort_key_for, batch.columns[i])) for i in key_indices]
    if len(mapped) == 1:
        keys: Sequence[object] = mapped[0]
    else:
        keys = list(zip(*mapped))
    order = sorted(range(batch.length), key=keys.__getitem__)
    if order == list(range(batch.length)):
        return batch
    return batch.take(order)


class BatchSortOp(BatchOperator):
    """Sort the child's output (consumes everything, emits one sorted batch)."""

    def __init__(self, child: BatchOperator, by: Sequence[str]):
        super().__init__()
        self.child = child
        self.by = list(by)
        child.schema.indices_of(self.by)  # validate

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> List[BatchOperator]:
        return [self.child]

    def _execute(self) -> Iterator[ColumnBatch]:
        gathered = ColumnBatch.concat(self.child.schema, list(self.child.batches()))
        if gathered.length:
            yield sort_batch(gathered, self.by)

    def label(self) -> str:
        return f"BatchSort({', '.join(self.by)})"

"""Relational algebra: row (iterator) and columnar (batch) physical operators.

Two complete physical backends with bit-identical semantics:

* :mod:`repro.algebra.operators`, :mod:`repro.algebra.joins`,
  :mod:`repro.algebra.aggregate`, :mod:`repro.algebra.sort` — the
  iterator-model operators (scan, select, project, hash join, group-by with
  the ``prob`` disjunction aggregate, sort): one Python tuple at a time.
* :mod:`repro.algebra.columnar` — the batch backend: operators exchange
  :class:`repro.algebra.columnar.ColumnBatch` chunks (one Python list per
  column) and evaluate selections/joins/aggregations column-wise.
* :mod:`repro.algebra.expressions` — selection predicates shared by both.
* :mod:`repro.algebra.stats` — table statistics and selectivity estimation
  for the lazy planner's greedy join ordering.

The engine picks the backend per call via ``execution="row"|"batch"``; see
``docs/architecture.md`` for how plans are assembled from these operators.
"""

from repro.algebra.aggregate import (
    AGGREGATE_FUNCTIONS,
    AggregateSpec,
    GroupByOp,
    mystiq_log_prob_or,
    prob_or,
)
from repro.algebra.columnar import (
    DEFAULT_BATCH_ROWS,
    BatchGroupByOp,
    BatchHashJoinOp,
    BatchMaterializedOp,
    BatchOperator,
    BatchProjectOp,
    BatchScanOp,
    BatchSelectOp,
    BatchSortOp,
    ColumnBatch,
    compile_mask,
    group_by_columns,
    sort_batch,
)
from repro.algebra.expressions import (
    AttributeComparison,
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
    TruePredicate,
    conjunction_of,
)
from repro.algebra.joins import (
    HashJoinOp,
    JoinOp,
    MergeJoinOp,
    NestedLoopJoinOp,
    natural_join_attributes,
)
from repro.algebra.operators import (
    MaterializedOp,
    Operator,
    ProjectOp,
    RenameOp,
    ScanOp,
    SelectOp,
)
from repro.algebra.plan import ExecutionResult, count_operators, execute, explain, walk
from repro.algebra.sort import DistinctOp, SortOp
from repro.algebra.stats import (
    StatisticsCatalog,
    TableStatistics,
    estimate_join_size,
    estimate_selectivity,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AggregateSpec",
    "AttributeComparison",
    "BatchGroupByOp",
    "BatchHashJoinOp",
    "BatchMaterializedOp",
    "BatchOperator",
    "BatchProjectOp",
    "BatchScanOp",
    "BatchSelectOp",
    "BatchSortOp",
    "ColumnBatch",
    "Comparison",
    "Conjunction",
    "DEFAULT_BATCH_ROWS",
    "Disjunction",
    "DistinctOp",
    "compile_mask",
    "group_by_columns",
    "sort_batch",
    "ExecutionResult",
    "GroupByOp",
    "HashJoinOp",
    "JoinOp",
    "MaterializedOp",
    "MergeJoinOp",
    "Negation",
    "NestedLoopJoinOp",
    "Operator",
    "Predicate",
    "ProjectOp",
    "RenameOp",
    "ScanOp",
    "SelectOp",
    "SortOp",
    "StatisticsCatalog",
    "TableStatistics",
    "TruePredicate",
    "conjunction_of",
    "count_operators",
    "estimate_join_size",
    "estimate_selectivity",
    "execute",
    "explain",
    "mystiq_log_prob_or",
    "natural_join_attributes",
    "prob_or",
    "walk",
]

"""Relational algebra substrate: iterator-model operators and plan utilities."""

from repro.algebra.aggregate import (
    AGGREGATE_FUNCTIONS,
    AggregateSpec,
    GroupByOp,
    mystiq_log_prob_or,
    prob_or,
)
from repro.algebra.expressions import (
    AttributeComparison,
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
    TruePredicate,
    conjunction_of,
)
from repro.algebra.joins import (
    HashJoinOp,
    JoinOp,
    MergeJoinOp,
    NestedLoopJoinOp,
    natural_join_attributes,
)
from repro.algebra.operators import (
    MaterializedOp,
    Operator,
    ProjectOp,
    RenameOp,
    ScanOp,
    SelectOp,
)
from repro.algebra.plan import ExecutionResult, count_operators, execute, explain, walk
from repro.algebra.sort import DistinctOp, SortOp
from repro.algebra.stats import (
    StatisticsCatalog,
    TableStatistics,
    estimate_join_size,
    estimate_selectivity,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AggregateSpec",
    "AttributeComparison",
    "Comparison",
    "Conjunction",
    "Disjunction",
    "DistinctOp",
    "ExecutionResult",
    "GroupByOp",
    "HashJoinOp",
    "JoinOp",
    "MaterializedOp",
    "MergeJoinOp",
    "Negation",
    "NestedLoopJoinOp",
    "Operator",
    "Predicate",
    "ProjectOp",
    "RenameOp",
    "ScanOp",
    "SelectOp",
    "SortOp",
    "StatisticsCatalog",
    "TableStatistics",
    "TruePredicate",
    "conjunction_of",
    "count_operators",
    "estimate_join_size",
    "estimate_selectivity",
    "execute",
    "explain",
    "mystiq_log_prob_or",
    "natural_join_attributes",
    "prob_or",
    "walk",
]

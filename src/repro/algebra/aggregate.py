"""Group-by aggregation, the building block of the conf() operator semantics.

Fig. 5 of the paper defines the confidence operator by translation to SQL
``GRP[a; b](Q) = select distinct a, b from Q group by a`` statements whose
aggregate functions are

* ``min`` over a variable column (pick a representative variable), and
* ``prob`` over a probability column (probability of a disjunction of
  independent events: ``1 - prod(1 - p)``).

This module provides a generic hash-based group-by operator plus the aggregate
functions needed by the paper (including MystiQ's numerically fragile
``log``-based variant of ``prob``, used to reproduce the runtime failures
reported in Section VII).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.errors import NumericalError, QueryError
from repro.algebra.operators import Operator, Row
from repro.storage.external_sort import sort_key_for
from repro.storage.schema import Attribute, Schema

__all__ = [
    "AggregateSpec",
    "GroupByOp",
    "AGGREGATE_FUNCTIONS",
    "aggregate_output_schema",
    "prob_or",
    "mystiq_log_prob_or",
]


def prob_or(probabilities: Sequence[float]) -> float:
    """Probability that at least one of several independent events occurs."""
    result = 1.0
    for p in probabilities:
        result *= 1.0 - p
    return 1.0 - result


def mystiq_log_prob_or(probabilities: Sequence[float]) -> float:
    """MystiQ's aggregation 1 - POWER(10000, SUM(log(1.001 - p))).

    The paper reports that for long disjunctions this formula computes
    logarithms of very small numbers and fails at runtime; we reproduce that
    failure mode by raising :class:`NumericalError` when an intermediate value
    underflows, so benchmarks can mark the corresponding queries as not
    computable by the MystiQ baseline.
    """
    log_sum = 0.0
    for p in probabilities:
        shifted = 1.001 - p
        if shifted <= 0:
            raise NumericalError("MystiQ log-based aggregation: log of non-positive value")
        log_sum += math.log10(shifted)
    if log_sum < -300:  # POWER(10, log_sum) underflows double precision
        raise NumericalError(
            "MystiQ log-based aggregation underflowed "
            f"(sum of logs = {log_sum:.1f} over {len(probabilities)} events)"
        )
    return 1.0 - 10.0 ** log_sum


def _min(values: Sequence[object]) -> object:
    return min(values, key=sort_key_for)


def _max(values: Sequence[object]) -> object:
    return max(values, key=sort_key_for)


def _sum(values: Sequence[object]) -> float:
    return sum(values)


def _count(values: Sequence[object]) -> int:
    return len(values)


def _product(values: Sequence[object]) -> float:
    result = 1.0
    for value in values:
        result *= value
    return result


#: Registry of aggregate functions by name.
AGGREGATE_FUNCTIONS: Dict[str, Callable[[Sequence[object]], object]] = {
    "min": _min,
    "max": _max,
    "sum": _sum,
    "count": _count,
    "product": _product,
    "prob": prob_or,
    "mystiq_prob": mystiq_log_prob_or,
}


def aggregate_output_schema(
    child_schema: Schema, group_by: Sequence[str], aggregates: Sequence["AggregateSpec"]
) -> Schema:
    """Output schema of a group-by: grouping attributes, then one per aggregate.

    Aggregate columns inherit the role/source of their input column (``min``
    over a variable column stays a variable column, etc.); counting yields
    ``int`` and the numeric folds yield ``float``.  Shared by the row
    :class:`GroupByOp` and the columnar backend so the two backends can never
    disagree on schemas.
    """
    attributes: List[Attribute] = [child_schema[name] for name in group_by]
    for spec in aggregates:
        source_attribute = child_schema[spec.input_attribute]
        dtype = source_attribute.dtype
        if spec.function in ("count",):
            dtype = "int"
        elif spec.function in ("sum", "product", "prob", "mystiq_prob"):
            dtype = "float"
        attributes.append(
            Attribute(
                spec.output_name,
                dtype,
                role=source_attribute.role,
                source=source_attribute.source,
            )
        )
    return Schema(attributes)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: ``function(input_attribute) AS output_name``."""

    function: str
    input_attribute: str
    output_name: str

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise QueryError(
                f"unknown aggregate function {self.function!r}; "
                f"known: {sorted(AGGREGATE_FUNCTIONS)}"
            )

    def __str__(self) -> str:
        return f"{self.function}({self.input_attribute}) AS {self.output_name}"


class GroupByOp(Operator):
    """Hash-based group-by with a list of aggregates.

    The output schema consists of the grouping attributes (with their original
    types and roles) followed by one column per aggregate.  Aggregate output
    columns inherit the role/source of their input column so that ``min`` over
    a variable column stays a variable column and ``prob`` over a probability
    column stays a probability column — this is what keeps the relational
    encoding of partially aggregated lineage well-formed between the steps of
    Fig. 6.
    """

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        super().__init__()
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self._schema = aggregate_output_schema(child.schema, self.group_by, self.aggregates)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> List[Operator]:
        return [self.child]

    def _execute(self) -> Iterator[Row]:
        child_schema = self.child.schema
        group_indices = child_schema.indices_of(self.group_by)
        aggregate_indices = [child_schema.index_of(s.input_attribute) for s in self.aggregates]
        groups: Dict[Tuple[object, ...], List[List[object]]] = {}
        order: List[Tuple[object, ...]] = []
        for row in self.child:
            key = tuple(row[i] for i in group_indices)
            bucket = groups.get(key)
            if bucket is None:
                bucket = [[] for _ in self.aggregates]
                groups[key] = bucket
                order.append(key)
            for position, index in enumerate(aggregate_indices):
                bucket[position].append(row[index])
        for key in order:
            bucket = groups[key]
            aggregated = tuple(
                AGGREGATE_FUNCTIONS[spec.function](values)
                for spec, values in zip(self.aggregates, bucket)
            )
            yield key + aggregated

    def label(self) -> str:
        aggregates = ", ".join(str(spec) for spec in self.aggregates)
        return f"GroupBy([{', '.join(self.group_by)}]; {aggregates})"

"""Table statistics and selectivity estimation for the planner.

SPROUT delegates join ordering to the host engine's cost-based optimizer
(Section V.B: "Cost-based decisions can be made using the host relational
database engine").  Our substrate plays that role with textbook System-R style
estimates: per-table row counts, per-column distinct counts, and the usual
selectivity formulas for equality/range predicates and equi-joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.algebra.expressions import (
    AttributeComparison,
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
    TruePredicate,
)
from repro.storage.relation import Relation

__all__ = ["TableStatistics", "StatisticsCatalog", "estimate_selectivity", "estimate_join_size"]

#: Fallback selectivities when no statistics are available (System-R defaults).
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3


@dataclass
class TableStatistics:
    """Row count and per-column distinct-value counts of one table."""

    table: str
    row_count: int
    distinct_counts: Dict[str, int] = field(default_factory=dict)
    min_values: Dict[str, object] = field(default_factory=dict)
    max_values: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_relation(cls, relation: Relation) -> "TableStatistics":
        """Collect statistics by a single scan of ``relation``."""
        distinct: Dict[str, set] = {name: set() for name in relation.schema.names}
        minimums: Dict[str, object] = {}
        maximums: Dict[str, object] = {}
        for row in relation:
            for name, value in zip(relation.schema.names, row):
                if value is None:
                    continue
                distinct[name].add(value)
                try:
                    if name not in minimums or value < minimums[name]:
                        minimums[name] = value
                    if name not in maximums or value > maximums[name]:
                        maximums[name] = value
                except TypeError:
                    pass
        return cls(
            table=relation.name,
            row_count=len(relation),
            distinct_counts={name: len(values) for name, values in distinct.items()},
            min_values=minimums,
            max_values=maximums,
        )

    def distinct(self, attribute: str) -> int:
        """Distinct-value count of ``attribute`` (at least 1)."""
        return max(1, self.distinct_counts.get(attribute, max(1, self.row_count)))


class StatisticsCatalog:
    """Statistics for a set of tables, computed lazily from their relations."""

    def __init__(self) -> None:
        self._stats: Dict[str, TableStatistics] = {}

    def register(self, relation: Relation, name: Optional[str] = None) -> TableStatistics:
        stats = TableStatistics.from_relation(relation)
        stats.table = name or relation.name
        self._stats[stats.table] = stats
        return stats

    def get(self, table: str) -> Optional[TableStatistics]:
        return self._stats.get(table)

    def row_count(self, table: str, default: int = 1000) -> int:
        stats = self._stats.get(table)
        return stats.row_count if stats is not None else default


def estimate_selectivity(predicate: Predicate, stats: Optional[TableStatistics]) -> float:
    """Estimate the fraction of rows satisfying ``predicate``."""
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, Conjunction):
        result = 1.0
        for part in predicate.parts:
            result *= estimate_selectivity(part, stats)
        return result
    if isinstance(predicate, Disjunction):
        result = 1.0
        for part in predicate.parts:
            result *= 1.0 - estimate_selectivity(part, stats)
        return 1.0 - result
    if isinstance(predicate, Negation):
        return max(0.0, 1.0 - estimate_selectivity(predicate.part, stats))
    if isinstance(predicate, Comparison):
        if predicate.op in ("=",):
            if stats is not None:
                return 1.0 / stats.distinct(predicate.attribute)
            return DEFAULT_EQUALITY_SELECTIVITY
        if predicate.op in ("!=",):
            if stats is not None:
                return 1.0 - 1.0 / stats.distinct(predicate.attribute)
            return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
        return _range_selectivity(predicate, stats)
    if isinstance(predicate, AttributeComparison):
        if predicate.op == "=" and stats is not None:
            distinct = max(stats.distinct(predicate.left), stats.distinct(predicate.right))
            return 1.0 / distinct
        return DEFAULT_RANGE_SELECTIVITY
    return DEFAULT_RANGE_SELECTIVITY


def _range_selectivity(predicate: Comparison, stats: Optional[TableStatistics]) -> float:
    """Interpolate selectivity of a range predicate from min/max statistics."""
    if stats is None:
        return DEFAULT_RANGE_SELECTIVITY
    low = stats.min_values.get(predicate.attribute)
    high = stats.max_values.get(predicate.attribute)
    value = predicate.value
    if (
        low is None
        or high is None
        or not isinstance(value, (int, float))
        or not isinstance(low, (int, float))
        or not isinstance(high, (int, float))
        or high <= low
    ):
        return DEFAULT_RANGE_SELECTIVITY
    fraction = (value - low) / (high - low)
    fraction = min(1.0, max(0.0, fraction))
    if predicate.op in ("<", "<="):
        return fraction
    if predicate.op in (">", ">="):
        return 1.0 - fraction
    return DEFAULT_RANGE_SELECTIVITY


def estimate_join_size(
    left_rows: float,
    right_rows: float,
    left_stats: Optional[TableStatistics],
    right_stats: Optional[TableStatistics],
    join_attributes: Sequence[str],
) -> float:
    """Estimate the cardinality of an equi-join using distinct-value counts."""
    if not join_attributes:
        return left_rows * right_rows
    size = left_rows * right_rows
    for attribute in join_attributes:
        left_distinct = left_stats.distinct(attribute) if left_stats else 10
        right_distinct = right_stats.distinct(attribute) if right_stats else 10
        size /= max(left_distinct, right_distinct, 1)
    return max(size, 1.0)

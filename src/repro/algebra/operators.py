"""Iterator-model plan operators: base class, scan, selection, projection.

Every operator exposes

* ``schema`` — the output schema,
* ``children`` — input operators (empty for leaves),
* ``__iter__`` — a generator of output rows (tuples in schema order),
* ``rows_out`` — how many rows the operator emitted during the last execution,

plus an ``explain`` label.  ``rows_out`` is the work metric used by the
benchmarks in addition to wall-clock time: an eager plan that aggregates a
large table early emits (and therefore processes) many more intermediate rows
than a lazy plan, which is exactly the effect Figures 9-12 measure.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional, Sequence, Tuple


from repro.algebra.expressions import Predicate
from repro.storage.relation import Relation
from repro.storage.schema import Schema

__all__ = ["Operator", "ScanOp", "SelectOp", "ProjectOp", "RenameOp", "MaterializedOp"]

Row = Tuple[object, ...]


class Operator(abc.ABC):
    """Base class of all plan operators."""

    def __init__(self) -> None:
        self.rows_out = 0

    @property
    @abc.abstractmethod
    def schema(self) -> Schema:
        """Output schema of this operator."""

    @property
    def children(self) -> List["Operator"]:
        """Input operators (empty for leaf operators)."""
        return []

    @abc.abstractmethod
    def _execute(self) -> Iterator[Row]:
        """Yield output rows.  Subclasses implement this, not ``__iter__``."""

    def __iter__(self) -> Iterator[Row]:
        self.rows_out = 0
        for row in self._execute():
            self.rows_out += 1
            yield row

    # -- execution helpers -----------------------------------------------------

    def to_relation(self, name: str = "result") -> Relation:
        """Materialise the operator's output into a relation."""
        relation = Relation(name, self.schema)
        relation.extend(self)
        return relation

    def total_rows_processed(self) -> int:
        """Total rows emitted by this operator and all descendants (last run)."""
        return self.rows_out + sum(child.total_rows_processed() for child in self.children)

    # -- presentation ----------------------------------------------------------

    def label(self) -> str:
        """Short one-line description used by ``explain``."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Render the plan rooted at this operator as an indented tree."""
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<{self.label()}>"


class ScanOp(Operator):
    """Sequential scan of a stored relation."""

    def __init__(self, relation: Relation, alias: Optional[str] = None):
        super().__init__()
        self.relation = relation
        self.alias = alias or relation.name

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    def _execute(self) -> Iterator[Row]:
        yield from self.relation

    def label(self) -> str:
        return f"Scan({self.alias}, {len(self.relation)} rows)"


class MaterializedOp(Operator):
    """Wrap an already-materialised relation as a plan leaf.

    Used by hybrid plans and by the confidence operator when an intermediate
    result has been written to a temporary table (or heap file).
    """

    def __init__(self, relation: Relation, label: str = "Materialized"):
        super().__init__()
        self.relation = relation
        self._label = label

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    def _execute(self) -> Iterator[Row]:
        yield from self.relation

    def label(self) -> str:
        return f"{self._label}({len(self.relation)} rows)"


class SelectOp(Operator):
    """Filter rows by a predicate."""

    def __init__(self, child: Operator, predicate: Predicate):
        super().__init__()
        self.child = child
        self.predicate = predicate

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> List[Operator]:
        return [self.child]

    def _execute(self) -> Iterator[Row]:
        bound = self.predicate.bind(self.child.schema)
        for row in self.child:
            if bound(row):
                yield row

    def label(self) -> str:
        return f"Select({self.predicate})"


class ProjectOp(Operator):
    """Bag projection onto a list of attribute names (no duplicate removal).

    Variable/probability columns survive a projection only if listed; the
    planner takes care of always carrying along the pairs that the confidence
    operator still needs (Section V.B: a probability computation operator is
    preceded by a projection on the selection attributes and the join
    attributes of joins still above it, plus the V/P pairs).
    """

    def __init__(self, child: Operator, names: Sequence[str]):
        super().__init__()
        self.child = child
        self.names = list(names)
        self._schema = child.schema.project(self.names)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> List[Operator]:
        return [self.child]

    def _execute(self) -> Iterator[Row]:
        indices = self.child.schema.indices_of(self.names)
        for row in self.child:
            yield tuple(row[i] for i in indices)

    def label(self) -> str:
        return f"Project({', '.join(self.names)})"


class RenameOp(Operator):
    """Rename output attributes (old name -> new name)."""

    def __init__(self, child: Operator, mapping: dict):
        super().__init__()
        self.child = child
        self.mapping = dict(mapping)
        self._schema = child.schema.rename(self.mapping)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> List[Operator]:
        return [self.child]

    def _execute(self) -> Iterator[Row]:
        yield from self.child

    def label(self) -> str:
        pairs = ", ".join(f"{old}->{new}" for old, new in self.mapping.items())
        return f"Rename({pairs})"

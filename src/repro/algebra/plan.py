"""Plan-level utilities: execution, explanation, and traversal."""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterator, Optional

from repro.algebra.operators import Operator
from repro.storage.relation import Relation

__all__ = ["ExecutionResult", "execute", "explain", "walk", "count_operators"]


@dataclass
class ExecutionResult:
    """A materialised plan result together with simple execution metrics."""

    relation: Relation
    wall_clock_seconds: float
    rows_processed: int

    def __len__(self) -> int:
        return len(self.relation)


def execute(plan: Operator, name: str = "result") -> ExecutionResult:
    """Run ``plan`` to completion, materialising its output."""
    started = perf_counter()
    relation = plan.to_relation(name)
    elapsed = perf_counter() - started
    return ExecutionResult(
        relation=relation,
        wall_clock_seconds=elapsed,
        rows_processed=plan.total_rows_processed(),
    )


def explain(plan: Operator) -> str:
    """Render a plan as an indented operator tree."""
    return plan.explain()


def walk(plan: Operator) -> Iterator[Operator]:
    """Pre-order traversal of the operator tree."""
    yield plan
    for child in plan.children:
        yield from walk(child)


def count_operators(plan: Operator, predicate: Optional[Callable[[Operator], bool]] = None) -> int:
    """Number of operators in the plan (optionally only those matching ``predicate``)."""
    return sum(1 for op in walk(plan) if predicate is None or predicate(op))

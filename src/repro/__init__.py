"""SPROUT reproduction: exact confidence computation for tuple-independent
probabilistic databases with lazy, eager, and hybrid query plans.

This package reimplements the system described in

    Dan Olteanu, Jiewen Huang, Christoph Koch.
    "SPROUT: Lazy vs. Eager Query Plans for Tuple-Independent Probabilistic
    Databases." ICDE 2009.

Quickstart
----------

>>> from repro import ProbabilisticDatabase, SproutEngine, ConjunctiveQuery, Atom
>>> from repro.storage import Relation, Schema
>>> db = ProbabilisticDatabase("demo")
>>> cust = Relation("Cust", Schema.of("ckey:int", "cname:str"), [(1, "Joe"), (2, "Dan")])
>>> _ = db.add_table(cust, probabilities=[0.1, 0.2], primary_key=["ckey"])
>>> engine = SproutEngine(db)
>>> query = ConjunctiveQuery("Q", [Atom("Cust", ["ckey", "cname"])], projection=["cname"])
>>> sorted(engine.evaluate(query).confidences().items())
[(('Dan',), 0.2), (('Joe',), 0.1)]

Package layout (bottom up): :mod:`repro.storage` (schemas with V/P column
roles, relations, heap files), :mod:`repro.algebra` (row and columnar
physical operators), :mod:`repro.query` (conjunctive queries, hierarchies,
FDs, signatures), :mod:`repro.prob` (probabilistic model, lineage, d-trees,
possible worlds), :mod:`repro.sprout` (the engine: planners, confidence
operator, top-k/threshold, the parallel executor), :mod:`repro.safeplans`
(the MystiQ-style baseline), and :mod:`repro.tpch` (the experimental
workload).  The ``docs/`` tree documents the architecture
(``docs/architecture.md``), the confidence-computation routing and its
epsilon/bounds semantics (``docs/confidence.md``), multi-core evaluation
(``docs/parallelism.md``), and the benchmark suite (``docs/benchmarks.md``).
"""

from repro.errors import (
    ApproximationBudgetError,
    NonHierarchicalQueryError,
    NumericalError,
    ParallelExecutionError,
    PlanningError,
    ProbabilityError,
    QueryError,
    ReproError,
    SchemaError,
    StorageError,
    UnsafePlanError,
    UnsupportedQueryError,
)
from repro.prob import ProbabilisticDatabase, ProbabilisticTable, VariableRegistry
from repro.query import (
    Atom,
    ConjunctiveQuery,
    Signature,
    build_hierarchy,
    effective_signature,
    fd_reduct,
    is_hierarchical,
    parse_query,
    parse_signature,
    signature_of_query,
)
from repro.safeplans import MystiqEngine, build_safe_plan, has_safe_plan
from repro.sprout import EvaluationResult, SproutEngine
from repro.storage import Attribute, Catalog, FunctionalDependency, Relation, Schema

__version__ = "1.0.0"

__all__ = [
    "ApproximationBudgetError",
    "Atom",
    "Attribute",
    "Catalog",
    "ConjunctiveQuery",
    "EvaluationResult",
    "FunctionalDependency",
    "MystiqEngine",
    "NonHierarchicalQueryError",
    "NumericalError",
    "ParallelExecutionError",
    "PlanningError",
    "ProbabilisticDatabase",
    "ProbabilisticTable",
    "ProbabilityError",
    "QueryError",
    "Relation",
    "ReproError",
    "Schema",
    "SchemaError",
    "Signature",
    "SproutEngine",
    "StorageError",
    "UnsafePlanError",
    "UnsupportedQueryError",
    "VariableRegistry",
    "build_hierarchy",
    "build_safe_plan",
    "effective_signature",
    "fd_reduct",
    "has_safe_plan",
    "is_hierarchical",
    "parse_query",
    "parse_signature",
    "signature_of_query",
    "__version__",
]

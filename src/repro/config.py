"""One shared parser for the ``REPRO_*`` environment knobs.

Every environment variable the library reads — ``REPRO_WORKERS``,
``REPRO_SHARED_LINEAGE``, ``REPRO_DTREE_CACHE``, ``REPRO_VECTORIZE``,
``REPRO_LANES``, the benchmark knobs — goes through the two parsers here,
so a malformed value
raises the same documented :class:`repro.errors.ConfigurationError` (a
:class:`ValueError` subclass) with the same wording no matter which call
site reads it first.  Before this module each knob had its own inline
parser and the behaviour drifted: engine knobs raised ``PlanningError``
with per-knob phrasing while ``REPRO_VECTORIZE`` silently *ignored*
malformed values, which made ``REPRO_VECTORIZE=fale`` (a typo for
``false``) run vectorized without a word.

Both parsers re-read the environment per call (never cached) so tests and
CI legs can flip a variable without re-importing anything, and both treat
an unset or empty variable as "use the default".
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["env_flag", "env_int"]

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")


def env_flag(name: str, default: Optional[bool] = None) -> Optional[bool]:
    """The boolean environment knob ``name``, or ``default`` when unset.

    Accepts ``1/true/yes/on`` and ``0/false/no/off`` (case-insensitive,
    surrounding whitespace ignored).  Anything else raises
    :class:`repro.errors.ConfigurationError` — a malformed flag must fail
    loudly, not silently fall back to the default.
    """
    value = os.environ.get(name, "").strip().lower()
    if not value:
        return default
    if value in _FALSE:
        return False
    if value in _TRUE:
        return True
    raise ConfigurationError(
        f"{name} must be a boolean flag "
        f"({'/'.join(_TRUE)} or {'/'.join(_FALSE)}), got {value!r}"
    )


def env_int(
    name: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
) -> Optional[int]:
    """The integer environment knob ``name``, or ``default`` when unset.

    A non-integer value, or one below ``minimum``, raises
    :class:`repro.errors.ConfigurationError` naming the knob and the
    constraint it violated.
    """
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer"
            + (f" >= {minimum}" if minimum is not None else "")
            + f", got {value!r}"
        ) from None
    if minimum is not None and parsed < minimum:
        raise ConfigurationError(
            f"{name} must be an integer >= {minimum}, got {value!r}"
        )
    return parsed

"""Data cleaning with a probabilistic database.

The Introduction motivates probabilistic databases with data cleaning and
integration.  This example models a typical deduplication pipeline: an entity
matcher has linked dirty CRM records to a master customer registry, attaching
a *match probability* to every candidate link, and a geocoder has attached
probabilities to conflicting address records.  Both tables are
tuple-independent; queries on top compute, for example, the probability that a
given master customer generated revenue in a given city.

Run with:  python examples/data_cleaning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Atom, ConjunctiveQuery, ProbabilisticDatabase, SproutEngine
from repro.algebra import Comparison
from repro.storage import Relation, Schema


def build_database() -> ProbabilisticDatabase:
    db = ProbabilisticDatabase("crm-cleaning")

    # Candidate links produced by an entity matcher: (dirty record, master id)
    # with the matcher's confidence.  Each link is an independent event.
    links = Relation(
        "link",
        Schema.of("record_id:int", "customer_id:int"),
        [
            (101, 1), (102, 1), (103, 2), (104, 2), (105, 2),
            (106, 3), (107, 3), (108, 4), (109, 4), (110, 5),
        ],
    )
    db.add_table(
        links,
        probabilities=[0.95, 0.40, 0.85, 0.30, 0.70, 0.90, 0.20, 0.60, 0.75, 0.99],
        primary_key=["record_id"],
    )

    # Geocoded addresses of the dirty records; conflicting cities for the same
    # record carry probabilities from the geocoder.
    addresses = Relation(
        "address",
        Schema.of("record_id:int", "city:str"),
        [
            (101, "Oxford"), (102, "Oxford"), (103, "Leeds"), (104, "Leeds"),
            (105, "York"), (106, "Oxford"), (107, "Leeds"), (108, "York"),
            (109, "York"), (110, "Oxford"),
        ],
    )
    db.add_table(
        addresses,
        probabilities=[0.9, 0.6, 0.8, 0.5, 0.7, 0.95, 0.45, 0.85, 0.65, 0.9],
        primary_key=["record_id", "city"],
    )

    # Transactions recorded against the dirty records (amounts in pounds);
    # a fraud screen marked each with the probability of being genuine.
    transactions = Relation(
        "txn",
        Schema.of("txn_id:int", "record_id:int", "amount:float"),
        [
            (1, 101, 120.0), (2, 102, 80.0), (3, 103, 300.0), (4, 104, 40.0),
            (5, 105, 250.0), (6, 106, 15.0), (7, 107, 99.0), (8, 108, 400.0),
            (9, 109, 35.0), (10, 110, 60.0),
        ],
    )
    db.add_table(
        transactions,
        probabilities=[0.99, 0.98, 0.80, 0.95, 0.75, 0.99, 0.90, 0.65, 0.97, 0.99],
        primary_key=["txn_id"],
    )
    return db


def main() -> None:
    db = build_database()
    engine = SproutEngine(db)

    # Which master customers have, with what probability, at least one genuine
    # transaction above £100 — taking the uncertain record links into account?
    big_spenders = ConjunctiveQuery(
        "big-spenders",
        [
            Atom("link", ["record_id", "customer_id"]),
            Atom("txn", ["txn_id", "record_id", "amount"]),
        ],
        projection=["customer_id"],
        selections=Comparison("amount", ">", 100.0),
    )
    result = engine.evaluate(big_spenders)
    print("P[customer has a genuine transaction > £100]:")
    print(result.relation.sorted_by(["customer_id"]).pretty())
    print()

    # In which cities does customer 2 plausibly appear (links ⋈ addresses)?
    cities = ConjunctiveQuery(
        "customer-cities",
        [
            Atom("link", ["record_id", "customer_id"]),
            Atom("address", ["record_id", "city"]),
        ],
        projection=["customer_id", "city"],
        selections=Comparison("customer_id", "=", 2),
    )
    result = engine.evaluate(cities)
    print("P[customer 2 has a record in city]:")
    print(result.relation.sorted_by(["city"]).pretty())
    print()

    # A Boolean audit question: is there any genuine transaction above £100
    # whose record links to a customer located in Oxford?
    audit = ConjunctiveQuery(
        "oxford-audit",
        [
            Atom("link", ["record_id", "customer_id"]),
            Atom("address", ["record_id", "city"]),
            Atom("txn", ["txn_id", "record_id", "amount"]),
        ],
        selections=Comparison("city", "=", "Oxford") & Comparison("amount", ">", 100.0),
    )
    print("signature of the audit query:", engine.signature_for(audit))
    confidence = engine.evaluate(audit).boolean_confidence()
    print(f"P[some Oxford-linked record has a genuine transaction > £100] = {confidence:.4f}")


if __name__ == "__main__":
    main()

"""Quickstart: the paper's running example end to end.

Builds the tuple-independent database of Fig. 1 (customers, orders, items),
asks for the dates of discounted orders shipped to customer 'Joe', and computes
the exact confidence of each answer tuple — 0.0028 for 1995-01-10, exactly as
in Example V.1.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Atom, ConjunctiveQuery, ProbabilisticDatabase, SproutEngine
from repro.algebra import Comparison, conjunction_of
from repro.query import parse_query
from repro.storage import Relation, Schema


def build_database() -> ProbabilisticDatabase:
    """The probabilistic TPC-H-like database of Fig. 1."""
    db = ProbabilisticDatabase("quickstart")
    cust = Relation(
        "Cust",
        Schema.of("ckey:int", "cname:str"),
        [(1, "Joe"), (2, "Dan"), (3, "Li"), (4, "Mo")],
    )
    ord_ = Relation(
        "Ord",
        Schema.of("okey:int", "ckey:int", "odate:str"),
        [
            (1, 1, "1995-01-10"),
            (2, 1, "1996-01-09"),
            (3, 2, "1994-11-11"),
            (4, 2, "1993-01-08"),
            (5, 3, "1995-08-15"),
            (6, 3, "1996-12-25"),
        ],
    )
    item = Relation(
        "Item",
        Schema.of("okey:int", "discount:float", "ckey:int"),
        [(1, 0.1, 1), (1, 0.2, 1), (3, 0.4, 2), (3, 0.1, 2), (4, 0.4, 2), (5, 0.1, 3)],
    )
    db.add_table(cust, probabilities=[0.1, 0.2, 0.3, 0.4], primary_key=["ckey"])
    db.add_table(ord_, probabilities=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6], primary_key=["okey"])
    db.add_table(item, probabilities=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
    return db


def main() -> None:
    db = build_database()
    engine = SproutEngine(db)

    # The query of the Introduction, built programmatically ...
    query = ConjunctiveQuery(
        "Q",
        [
            Atom("Cust", ["ckey", "cname"]),
            Atom("Ord", ["okey", "ckey", "odate"]),
            Atom("Item", ["okey", "discount", "ckey"]),
        ],
        projection=["odate"],
        selections=conjunction_of(
            [Comparison("cname", "=", "Joe"), Comparison("discount", ">", 0)]
        ),
    )

    # ... or parsed from the conf() SQL extension.
    parsed = parse_query(
        "SELECT odate, conf() FROM Cust, Ord, Item WHERE cname = 'Joe' AND discount > 0",
        db.catalog,
        name="Q-sql",
    )
    assert parsed.wants_confidence

    print("database:")
    print(db.catalog.describe())
    print()
    print("query:", query)
    print("signature (with FDs):   ", engine.signature_for(query, use_fds=True))
    print("signature (without FDs):", engine.signature_for(query, use_fds=False))
    print()
    print(engine.explain(query, plan="lazy"))
    print()

    for plan in ("lazy", "eager", "hybrid"):
        result = engine.evaluate(query, plan=plan)
        print(f"{plan:>6} plan: {result.summary()}")
        print(result.relation.pretty())
        print()

    boolean = engine.evaluate(query.boolean_version("BQ"))
    print("Boolean version confidence:", round(boolean.boolean_confidence(), 6))


if __name__ == "__main__":
    main()

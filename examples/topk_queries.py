"""Top-k and threshold queries: bound-driven multi-tuple refinement.

Most workloads don't need every answer tuple's confidence to a uniform
precision — they need the k most probable answers, or the answers above a
probability threshold.  This example runs an unsafe (non-hierarchical)
brand-ranking query over probabilistic TPC-H three ways:

1. the baseline: refine *every* tuple's d-tree bracket to epsilon = 0.01,
   then sort;
2. ``evaluate_topk(k)``: interleave refinement across tuples and stop the
   moment the top-k set is provably decided;
3. ``evaluate_threshold(tau)``: stop refining each tuple once its bracket
   clears τ on either side.

It also shows the safe-plan short-circuit (tractable queries keep their exact
operator plans) and the shared d-tree cache (a repeat top-k costs zero steps).

Run with:  python examples/topk_queries.py [scale_factor]
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Atom, ConjunctiveQuery
from repro.algebra import Comparison, conjunction_of
from repro.sprout import SproutEngine
from repro.tpch import probabilistic_tpch


def brand_query() -> ConjunctiveQuery:
    """q(p_brand) :- part ⋈ partsupp ⋈ supplier, availqty < 3000 — unsafe."""
    return ConjunctiveQuery(
        "brands",
        [
            Atom("part", ["partkey", "p_brand"]),
            Atom("partsupp", ["partkey", "suppkey", "ps_availqty"]),
            Atom("supplier", ["suppkey"]),
        ],
        projection=["p_brand"],
        selections=conjunction_of([Comparison("ps_availqty", "<", 3000)]),
    )


def main(scale_factor: float = 0.001) -> None:
    print(f"generating probabilistic TPC-H at scale factor {scale_factor} ...")
    db = probabilistic_tpch(scale_factor=scale_factor)
    query = brand_query()
    engine = SproutEngine(db)
    print(f"tractable: {engine.is_tractable(query)} (routed to the d-tree scheduler)")
    print()

    started = perf_counter()
    baseline = engine.evaluate(query, confidence="approx", epsilon=0.01)
    elapsed = perf_counter() - started
    print(
        f"baseline (all {baseline.distinct_tuples} tuples to eps=0.01): "
        f"{baseline.refine_steps} d-tree steps, {elapsed * 1e3:.1f} ms"
    )

    started = perf_counter()
    top = SproutEngine(db).evaluate_topk(query, k=5, confidence="approx")
    elapsed = perf_counter() - started
    print(
        f"evaluate_topk(k=5): {top.refine_steps} d-tree steps, "
        f"{elapsed * 1e3:.1f} ms, decided={top.decided}"
    )
    for row in top.relation:
        brand, confidence = row
        lower, upper = top.bounds[(brand,)]
        print(f"  {brand}  conf≈{confidence:.3f}  bracket [{lower:.3f}, {upper:.3f}]")
    print()

    tau = 0.9
    started = perf_counter()
    above = SproutEngine(db).evaluate_threshold(query, tau=tau)
    elapsed = perf_counter() - started
    print(
        f"evaluate_threshold(tau={tau}): {above.distinct_tuples} brands above, "
        f"{above.refine_steps} d-tree steps, {elapsed * 1e3:.1f} ms, "
        f"decided={above.decided}"
    )
    print()

    # The shared lineage → d-tree cache: the second call reuses every tree.
    repeat = engine.evaluate_topk(query, k=5, confidence="approx")
    print(
        f"repeat top-k on the warm engine: {repeat.refine_steps} new steps "
        f"({engine.dtree_cache.hits} cache hits)"
    )

    # Tractable queries short-circuit through their exact operator plan.
    safe = ConjunctiveQuery(
        "parts_of_brand",
        [Atom("part", ["partkey", "p_brand"])],
        projection=["p_brand"],
    )
    top_safe = engine.evaluate_topk(safe, k=3)
    print(
        f"safe query keeps its operator plan: style={top_safe.plan_style!r}, "
        f"decided={top_safe.decided}, answers={list(top_safe.relation)[:3]}"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.001)

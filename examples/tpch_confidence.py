"""Probabilistic TPC-H: confidence computation at benchmark scale.

Generates a scaled-down tuple-independent TPC-H database, reports the
Section VI case-study classification, and runs a handful of the paper's
queries with lazy, eager, and MystiQ-style plans, printing wall-clock times
and answer sizes (a miniature of Fig. 9).

Run with:  python examples/tpch_confidence.py [scale_factor]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.errors import NumericalError, UnsafePlanError
from repro.safeplans import MystiqEngine
from repro.sprout import SproutEngine
from repro.tpch import case_study_table, probabilistic_tpch, tpch_query


def main(scale_factor: float = 0.001) -> None:
    print(f"generating probabilistic TPC-H at scale factor {scale_factor} ...")
    db = probabilistic_tpch(scale_factor=scale_factor)
    print({name: len(db.relation(name)) for name in db.table_names()})
    print()

    print("Section VI case study (hierarchical / FD-tractable classification):")
    print(case_study_table())
    print()

    engine = SproutEngine(db)
    mystiq = MystiqEngine(db, use_log_aggregation=True)

    print(f"{'query':>6} {'plan':>8} {'time[s]':>9} {'tuples':>7} {'rows':>7}  signature")
    for key in ("3", "18", "B17", "10", "7", "2"):
        query = tpch_query(key).query
        for plan in ("lazy", "eager"):
            result = engine.evaluate(query, plan=plan)
            print(
                f"{key:>6} {plan:>8} {result.total_seconds:>9.3f} "
                f"{result.distinct_tuples:>7} {result.answer_rows:>7}  {result.signature}"
            )
        try:
            safe = mystiq.evaluate(query)
            print(f"{key:>6} {'mystiq':>8} {safe.total_seconds:>9.3f} {safe.distinct_tuples:>7}")
        except (UnsafePlanError, NumericalError) as error:
            print(f"{key:>6} {'mystiq':>8} {'—':>9}  ({type(error).__name__})")
        print()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.001)

"""Probabilistic TPC-H: confidence computation at benchmark scale.

Generates a scaled-down tuple-independent TPC-H database, reports the
Section VI case-study classification, and runs a handful of the paper's
queries with lazy, eager, and MystiQ-style plans, printing wall-clock times
and answer sizes (a miniature of Fig. 9).  A final section evaluates an
*unsafe* (non-hierarchical) query end to end: the engine routes it to the
anytime d-tree confidence engine, exactly and at several epsilon budgets.

Run with:  python examples/tpch_confidence.py [scale_factor]
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Atom, ConjunctiveQuery
from repro.errors import NumericalError, UnsafePlanError
from repro.safeplans import MystiqEngine
from repro.sprout import SproutEngine
from repro.tpch import case_study_table, probabilistic_tpch, tpch_query


def main(scale_factor: float = 0.001) -> None:
    print(f"generating probabilistic TPC-H at scale factor {scale_factor} ...")
    db = probabilistic_tpch(scale_factor=scale_factor)
    print({name: len(db.relation(name)) for name in db.table_names()})
    print()

    print("Section VI case study (hierarchical / FD-tractable classification):")
    print(case_study_table())
    print()

    engine = SproutEngine(db)
    mystiq = MystiqEngine(db, use_log_aggregation=True)

    print(f"{'query':>6} {'plan':>8} {'time[s]':>9} {'tuples':>7} {'rows':>7}  signature")
    for key in ("3", "18", "B17", "10", "7", "2"):
        query = tpch_query(key).query
        for plan in ("lazy", "eager"):
            result = engine.evaluate(query, plan=plan)
            print(
                f"{key:>6} {plan:>8} {result.total_seconds:>9.3f} "
                f"{result.distinct_tuples:>7} {result.answer_rows:>7}  {result.signature}"
            )
        try:
            safe = mystiq.evaluate(query)
            print(f"{key:>6} {'mystiq':>8} {safe.total_seconds:>9.3f} {safe.distinct_tuples:>7}")
        except (UnsafePlanError, NumericalError) as error:
            print(f"{key:>6} {'mystiq':>8} {'—':>9}  ({type(error).__name__})")
        print()

    unsafe_query_demo(engine)


def unsafe_query_demo(engine: SproutEngine) -> None:
    """An unsafe query end to end: q() :- part ⋈ partsupp ⋈ supplier.

    The query is non-hierarchical and its FD-reduct is too (partsupp has a
    composite key), so exact confidence computation is #P-hard in general and
    no safe plan exists.  The engine routes it to the d-tree engine: exact
    compilation when it completes, anytime lower/upper bounds otherwise.
    """
    query = ConjunctiveQuery(
        "unsafe_partsupp",
        [
            Atom("part", ["partkey"]),
            Atom("partsupp", ["partkey", "suppkey"]),
            Atom("supplier", ["suppkey"]),
        ],
        projection=[],
    )
    print("unsafe query demo (routed to the d-tree engine):")
    print(engine.explain(query))
    print(f"tractable: {engine.is_tractable(query)}")

    for epsilon in (0.05, 0.01, 0.001):
        started = perf_counter()
        result = engine.evaluate(query, confidence="approx", epsilon=epsilon)
        elapsed = perf_counter() - started
        lower, upper = result.bounds[()]
        print(
            f"  approx eps={epsilon:<6} conf={result.boolean_confidence():.6f} "
            f"bounds=[{lower:.6f}, {upper:.6f}] "
            f"({result.answer_rows} lineage clauses, {elapsed:.3f}s)"
        )

    started = perf_counter()
    exact = engine.evaluate(query, plan="dtree")
    elapsed = perf_counter() - started
    print(f"  exact d-tree    conf={exact.boolean_confidence():.6f} ({elapsed:.3f}s)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.001)

"""A standing threshold query over a synthetic feed of probability updates.

Monitoring is the workload incremental evaluation is for: a fleet of smoke
sensors reports alarm events with a confidence attached, the confidences
drift as the detectors re-calibrate, and the question "which rooms are
probably on fire?" has to stay answered — not be re-asked from scratch —
while the probability space moves.

This example builds a small tuple-independent database of alarm events,
sensor uplinks, and zone controllers, opens a standing threshold query over
the (unsafe) chain join through ``SproutEngine.watch_threshold``, and then
replays a deterministic synthetic feed of marginal updates.  Each tick
delta-propagates through the standing query's private shared-lineage DAG
(``repro.prob.delta``) and re-decides the answer set warm; the script prints
the decided-set *transitions* — rooms entering and leaving the alarm set —
together with what each delta actually cost (rows re-seeded, logical steps
spent).  The punchline is in the step counts: the initial build pays the
d-tree compilation, the ticks mostly pay zero.

Run with:  python examples/streaming_monitor.py
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Atom, ConjunctiveQuery, ProbabilisticDatabase, SproutEngine
from repro.storage import Relation, Schema

TAU = 0.5
TICKS = 8
SEED = 2009


def build_database() -> ProbabilisticDatabase:
    db = ProbabilisticDatabase("smoke-monitor")

    # Alarm events: (room, sensor) pairs with the detector's confidence that
    # the event is a real fire rather than burnt toast.
    alarms = Relation(
        "alarm",
        Schema.of("room:str", "sensor:int"),
        [
            ("kitchen", 1), ("kitchen", 2), ("lab", 2), ("lab", 3),
            ("lab", 4), ("archive", 4), ("archive", 5), ("lobby", 5),
            ("lobby", 1), ("server-room", 3), ("server-room", 6),
        ],
    )
    db.add_table(
        alarms,
        probabilities=[0.80, 0.55, 0.70, 0.60, 0.55, 0.45, 0.50, 0.40, 0.35, 0.65, 0.75],
    )

    # Sensor uplinks: each sensor reports through one or two zone
    # controllers, with the probability the uplink relayed the event.
    uplinks = Relation(
        "uplink",
        Schema.of("sensor:int", "zone:str"),
        [
            (1, "east"), (2, "east"), (2, "west"), (3, "west"),
            (4, "east"), (4, "west"), (5, "west"), (6, "east"),
        ],
    )
    db.add_table(uplinks, probabilities=[0.9, 0.8, 0.6, 0.85, 0.7, 0.75, 0.8, 0.95])

    # Zone controllers: the probability each controller is live at all.
    zones = Relation("zone_ok", Schema.of("zone:str"), [("east",), ("west",)])
    db.add_table(zones, probabilities=[0.95, 0.9])
    return db


def monitored_query() -> ConjunctiveQuery:
    # q(room) :- alarm(room, s), uplink(s, z), zone_ok(z): a room is alarmed
    # if any of its events reached a live zone controller.  The chain through
    # sensor and zone makes the query unsafe — per-room lineage needs real
    # d-tree compilation, which is exactly what the standing query keeps warm.
    return ConjunctiveQuery(
        "alarmed_rooms",
        [
            Atom("alarm", ["room", "sensor"]),
            Atom("uplink", ["sensor", "zone"]),
            Atom("zone_ok", ["zone"]),
        ],
        projection=["room"],
    )


def main() -> None:
    db = build_database()
    engine = SproutEngine(db)
    watch = engine.watch_threshold(monitored_query(), tau=TAU)

    print(f"standing query: rooms with alarm confidence >= {TAU}")
    print(
        f"initial build: {len(watch)} rooms compiled, "
        f"{watch.total_steps} d-tree steps, alarmed = {sorted(watch.selected)}"
    )
    print()

    # The synthetic feed: a deterministic drift over the standing probability
    # space.  Every tick nudges one marginal towards 0 or 1 — re-calibrating
    # detectors, degrading uplinks — and the standing query absorbs it.
    feed = random.Random(SEED)
    variables = sorted(watch.probabilities)
    for tick in range(1, TICKS + 1):
        variable = feed.choice(variables)
        old = watch.probabilities[variable]
        new = round(min(0.99, max(0.01, old + feed.choice([-0.35, -0.2, 0.2, 0.35]))), 3)
        report = watch.update_probability(variable, new)
        result = watch.refresh()

        moved = f"variable {variable}: {old:.2f} -> {new:.2f}"
        cost = (
            f"re-seeded {report.reseeded} rows, touched {len(report.touched)} nodes, "
            f"re-decided in {result.delta_steps} steps"
        )
        print(f"tick {tick}: {moved} ({cost})")
        for room in watch.last_entered:
            print(f"  ALARM   {room[0]} entered the answer set")
        for room in watch.last_left:
            print(f"  clear   {room[0]} left the answer set")
        if not watch.last_entered and not watch.last_left:
            print("  steady  decided set unchanged")

    print()
    print(
        f"after {TICKS} ticks: alarmed = {sorted(watch.selected)}, "
        f"{watch.total_steps} cumulative steps "
        f"(initial build included), decided={watch.decided}"
    )


if __name__ == "__main__":
    main()

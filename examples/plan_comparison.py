"""Lazy vs. eager vs. hybrid vs. safe plans on a TPC-H query.

Reproduces, at example scale, the comparison of Fig. 7 / Fig. 9: the same
query evaluated with SPROUT's lazy, eager, and hybrid plans and with a
MystiQ-style safe plan, reporting the plan structure, wall-clock time, and the
number of rows each plan pushes through its operators.

Run with:  python examples/plan_comparison.py [scale_factor]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.safeplans import MystiqEngine, safe_plan_description
from repro.sprout import SproutEngine
from repro.tpch import probabilistic_tpch, tpch_query
from repro.tpch.schema import tpch_functional_dependencies


def main(scale_factor: float = 0.002) -> None:
    db = probabilistic_tpch(scale_factor=scale_factor)
    engine = SproutEngine(db)
    mystiq = MystiqEngine(db, use_log_aggregation=False)

    # Query 18 is the paper's running example: customer ⋈ orders ⋈ lineitem
    # with a very selective condition on the customer.
    spec = tpch_query("18")
    query = spec.query
    print("query:", query)
    print()
    print("safe plan (Fig. 2 shape):")
    print(safe_plan_description(query, tpch_functional_dependencies()))
    print()
    print("SPROUT plans:")
    for plan in ("eager", "hybrid", "lazy"):
        print(f"--- {plan} ---")
        print(engine.explain(query, plan=plan))
        print()

    print(f"{'plan':>8} {'time[s]':>9} {'rows processed':>15} {'distinct tuples':>16}")
    for plan in ("eager", "hybrid", "lazy"):
        result = engine.evaluate(query, plan=plan)
        print(
            f"{plan:>8} {result.total_seconds:>9.3f} {result.rows_processed:>15} "
            f"{result.distinct_tuples:>16}"
        )
    safe = mystiq.evaluate(query)
    print(
        f"{'mystiq':>8} {safe.total_seconds:>9.3f} "
        f"{safe.rows_processed:>15} {safe.distinct_tuples:>16}"
    )

    lazy = engine.evaluate(query, plan="lazy")
    agree = safe.confidences().keys() == lazy.confidences().keys()
    print()
    print("all plans agree on the answer tuples:", agree)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.002)

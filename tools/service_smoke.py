#!/usr/bin/env python3
"""Boot a real query-service process and run a scripted client against it.

CI's ``service-smoke`` job runs this: it launches ``python -m repro.service``
as a subprocess (the demo smoke-monitor dataset), waits for the ``SERVICE
READY <host> <port>`` line, and then exercises every route over real
sockets — health, evaluate, top-k (cold and warm), threshold, and a full
standing-query round trip (subscribe, probability update that moves the
decided set, re-read, unsubscribe).  The script fails loudly on any
deviation, including the warm-reuse contract (a repeated top-k request
must cost zero additional logical steps).  Run locally from the
repository root:

    python tools/service_smoke.py
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.service import ServiceClient  # noqa: E402

SQL = "SELECT room, conf() FROM alarm, uplink, zone_ok"
TAU = 0.5


class SmokeError(RuntimeError):
    """The served behaviour deviated from the scripted expectation."""


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeError(message)


def run_script(client: ServiceClient) -> None:
    check(client.healthz() == {"ok": True}, "healthz did not answer ok")

    evaluated = client.evaluate(SQL)
    check(len(evaluated["rows"]) == 5, f"expected 5 rooms, got {evaluated['rows']}")

    cold = client.topk(SQL, k=2)
    check(cold["decided"], "cold top-k did not decide")
    check(cold["refine_steps"] > 0, "cold top-k reported zero steps")
    warm = client.topk(SQL, k=2)
    check(warm["rows"] == cold["rows"], "warm top-k changed the answer")
    check(
        warm["refine_steps"] == 0,
        f"warm top-k cost {warm['refine_steps']} steps; cross-request reuse broken",
    )

    threshold = client.threshold(SQL, tau=TAU)
    check(
        all(row[-1] >= TAU for row in threshold["rows"]),
        "threshold returned a row below tau",
    )

    # The standing-query round trip: subscribe, kill the strongest alarm
    # event's marginal, and watch the decided set move — all over HTTP.
    sub = client.subscribe(SQL, tau=TAU)
    sid = sub["subscription"]
    check(sub["decided"], "subscription did not decide on build")
    before = sub["selected"]
    check(before, "subscription decided an empty answer on the demo data")

    update = client.update(sid, variable=sub["variables"][0], probability=0.01)
    check(update["report"]["noop"] is False, "the probability update was a no-op")
    check(update["left"] != [] or update["selected"] != before,
          "the delta did not move the decided set")

    reread = client.subscription(sid)
    check(reread["selected"] == update["selected"], "re-read disagrees with update")
    client.unsubscribe(sid)
    status, _ = client.request("GET", f"/subscriptions/{sid}")
    check(status == 400, f"deleted subscription still answers (status {status})")

    stats = client.stats()
    # Exactly one failed request: the deliberate probe of the deleted
    # subscription above (rejected requests count as failed on the lane).
    check(stats["failed"] == 1, f"unexpected failure count: {stats}")
    check(stats["store"]["steps"] > 0, "the shared store did no refinement work")

    print(
        f"service smoke OK: cold={cold['refine_steps']} steps, warm=0, "
        f"update moved {len(update['left'])} row(s) out, "
        f"store steps={stats['store']['steps']}"
    )


def main() -> int:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--dataset", "demo"],
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        ready = process.stdout.readline().split()
        if len(ready) != 4 or ready[:2] != ["SERVICE", "READY"]:
            raise SmokeError(f"server did not come up; first line: {ready}")
        host, port = ready[2], int(ready[3])
        run_script(ServiceClient(host, port))
        return 0
    finally:
        process.terminate()
        process.wait(timeout=30)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeError as error:
        print(f"service smoke FAILED: {error}", file=sys.stderr)
        sys.exit(1)

#!/usr/bin/env python3
"""SIGKILL a real query-service process and prove the snapshot revives it.

CI's ``tests-chaos`` job runs this: it launches ``python -m repro.service``
with ``--snapshot PATH --snapshot-every 1`` (a checkpoint after every
completed request), warms the shared store over real sockets, then sends
the process SIGKILL — no shutdown hook, no atexit, nothing graceful.  A
second server over the *same* snapshot path must restore the checkpoint at
boot and re-decide the warm query in at most one logical step with exactly
the same rows.  Finally the snapshot is stomped (truncated mid-payload) and
a third server must boot **cold with a warning, not a crash**, and still
serve.  The script fails loudly on any deviation.  Run locally from the
repository root:

    python tools/chaos_smoke.py
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.service import ServiceClient  # noqa: E402

SQL = "SELECT room, conf() FROM alarm, uplink, zone_ok"


class SmokeError(RuntimeError):
    """The served behaviour deviated from the scripted expectation."""


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeError(message)


def launch(snapshot: str) -> tuple[subprocess.Popen, ServiceClient]:
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--snapshot",
            snapshot,
            "--snapshot-every",
            "1",
        ],
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    ready = process.stdout.readline().split()
    if len(ready) != 4 or ready[:2] != ["SERVICE", "READY"]:
        process.kill()
        process.wait(timeout=30)
        raise SmokeError(f"server did not come up; first line: {ready}")
    return process, ServiceClient(ready[2], int(ready[3]))


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro_chaos_") as scratch:
        snapshot = str(Path(scratch) / "service.snap")

        # Phase 1: warm the store, then SIGKILL mid-flight.  The refinement
        # lane is serial, so once the second request returns the first
        # request's checkpoint is durably on disk — the kill cannot race it.
        process, client = launch(snapshot)
        try:
            cold = client.topk(SQL, k=2)
            check(cold["decided"], "cold top-k did not decide")
            check(cold["refine_steps"] > 0, "cold top-k reported zero steps")
            warm = client.topk(SQL, k=2)
            check(warm["refine_steps"] == 0, "warm top-k cost steps before the kill")
        finally:
            process.kill()  # SIGKILL: no graceful shutdown, no close() snapshot
            process.wait(timeout=30)
        check(Path(snapshot).exists(), "no checkpoint survived the kill")

        # Phase 2: a reborn server over the same snapshot path must come up
        # warm — the decision replays from restored bounds in at most one
        # logical step, with bit-identical rows.
        process, client = launch(snapshot)
        try:
            stats = client.stats()
            check(stats["snapshot"]["restored"], "reborn server did not restore")
            revived = client.topk(SQL, k=2)
            check(
                revived["refine_steps"] <= 1,
                f"reborn top-k cost {revived['refine_steps']} steps; recovery is cold",
            )
            check(revived["rows"] == cold["rows"], "recovery changed the answer")
            check(revived["decided"], "reborn top-k did not decide")
        finally:
            process.terminate()
            process.wait(timeout=30)

        # Phase 3: stomp the snapshot (truncate mid-payload).  Boot must
        # degrade to cold — structured warning, correct answers, no crash.
        blob = Path(snapshot).read_bytes()
        Path(snapshot).write_bytes(blob[: len(blob) - 10])
        process, client = launch(snapshot)
        try:
            stats = client.stats()
            check(not stats["snapshot"]["restored"], "corrupt snapshot claimed restored")
            check(stats["snapshot"]["failed"] == 1, "corrupt snapshot was not counted")
            cold_again = client.topk(SQL, k=2)
            check(cold_again["refine_steps"] > 0, "corrupt-boot top-k was not cold")
            check(cold_again["rows"] == cold["rows"], "corrupt-boot answer changed")
        finally:
            process.terminate()
            process.wait(timeout=30)

        print(
            f"chaos smoke OK: cold={cold['refine_steps']} steps, "
            f"post-SIGKILL={revived['refine_steps']} step(s), "
            f"corrupt snapshot booted cold and served"
        )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeError as error:
        print(f"chaos smoke FAILED: {error}", file=sys.stderr)
        sys.exit(1)

#!/usr/bin/env python3
"""Documentation checker: links resolve, references are complete.

Run from anywhere (``python tools/check_docs.py``); CI runs it in the
``docs`` job on every push. Three families of checks, all stdlib-only:

1. **Links** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must point at an existing file (anchors and external
   ``http(s)``/``mailto`` links are skipped; pure-anchor links must match a
   heading in the same file).
2. **Package coverage** — ``docs/architecture.md`` and
   ``docs/confidence.md`` must mention every package under ``src/repro/``
   by its dotted name (``repro.storage``, ``repro.sprout``, ...), so the
   architecture docs can never silently omit a subsystem.
3. **Benchmark coverage** — ``docs/benchmarks.md`` must mention every
   ``benchmarks/bench_*.py`` script, so a new benchmark cannot ship
   undocumented.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def heading_anchors(text: str) -> set:
    """GitHub-style anchors for every heading in a markdown document."""
    anchors = set()
    for heading in HEADING.findall(text):
        slug = re.sub(r"[`*_]", "", heading.strip().lower())
        slug = re.sub(r"[^\w\- ]", "", slug).replace(" ", "-")
        anchors.add(slug)
    return anchors


def check_links(problems: list) -> None:
    documents = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    for document in documents:
        text = document.read_text(encoding="utf-8")
        anchors = heading_anchors(text)
        for target in LINK.findall(text):
            if target.startswith(EXTERNAL):
                continue
            if target.startswith("#"):
                if target[1:] not in anchors:
                    problems.append(
                        f"{document.relative_to(REPO)}: broken anchor {target!r}"
                    )
                continue
            path = target.split("#", 1)[0]
            if not (document.parent / path).resolve().exists():
                problems.append(
                    f"{document.relative_to(REPO)}: broken link {target!r}"
                )


def check_package_coverage(problems: list) -> None:
    packages = sorted(
        path.parent.name
        for path in (REPO / "src" / "repro").glob("*/__init__.py")
    )
    if not packages:
        problems.append("src/repro contains no packages — wrong checkout?")
    for name in ("architecture.md", "confidence.md"):
        document = DOCS / name
        if not document.exists():
            problems.append(f"docs/{name} is missing")
            continue
        text = document.read_text(encoding="utf-8")
        for package in packages:
            if f"repro.{package}" not in text:
                problems.append(
                    f"docs/{name}: does not mention package repro.{package}"
                )


def check_benchmark_coverage(problems: list) -> None:
    document = DOCS / "benchmarks.md"
    if not document.exists():
        problems.append("docs/benchmarks.md is missing")
        return
    text = document.read_text(encoding="utf-8")
    for script in sorted((REPO / "benchmarks").glob("bench_*.py")):
        if script.name not in text:
            problems.append(f"docs/benchmarks.md: does not mention {script.name}")


def main() -> int:
    problems: list = []
    check_links(problems)
    check_package_coverage(problems)
    check_benchmark_coverage(problems)
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        print(f"{len(problems)} documentation problem(s)")
        return 1
    documents = len(list(DOCS.glob("*.md")))
    print(f"docs OK: {documents} documents, links resolve, references complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Consolidated benchmark reports: run an SF 0.001 suite, emit one JSON.

Five suites, each pinned to scale factor 0.001 with one round per benchmark
(the asserted quantities are deterministic step counts, not timings):

* ``core`` (default) — the refinement-core, shared-lineage, and top-k
  pruning benchmarks, consolidated into ``BENCH_refinement_core.json``:
  the vectorized-vs-scalar bound-propagation sweep ratio of the columnar
  node table, and the logical steps to decide the unsafe TPC-H brand
  top-10 under the shared-DAG scheduler vs. the per-tuple schedulers.
* ``streaming`` — the delta re-decide benchmarks
  (``benchmarks/bench_streaming.py``), consolidated into
  ``BENCH_streaming.json``: the warm-vs-cold step contrast of a standing
  top-10 query absorbing a probability update, and the structural
  delete/re-insert round trip.
* ``service`` — the query-service benchmarks
  (``benchmarks/bench_service.py``), consolidated into
  ``BENCH_service.json``: cross-request warm-state reuse through the full
  HTTP stack — a repeated top-10 request re-decides within one logical
  step, concurrent clients share one store, and a served standing query
  absorbs deltas warm.
* ``lanes`` — the data-parallel refinement-lane benchmarks
  (``benchmarks/bench_lanes.py``), consolidated into ``BENCH_lanes.json``:
  lanes 0/1/4 decide the brand top-10 and τ-partition bit-identically
  (asserted on every run), per-lane wall times are tracked, and the round
  planner's frontier batching is pinned (fewer propagation passes at
  width 4, same logical steps).
* ``robustness`` — the deadline-degradation benchmarks
  (``benchmarks/bench_robustness.py``), consolidated into
  ``BENCH_robustness.json``: a generous deadline decides the brand top-10
  bit-identically to the no-deadline run (zero-overhead contract, overhead
  ratio tracked), and an already-expired deadline degrades to sound
  monotone brackets that contain every fully-refined marginal.

Each report carries the per-benchmark median wall times and every
``extra_info`` counter, plus a ``summary`` with the headline numbers the
perf trajectory tracks.  CI uploads both files as artifacts on every push
(``smoke-benchmark`` job), seeding a comparable series of step counts and
wall times across commits.  Run locally from the repository root:

    python tools/bench_report.py [--suite core|streaming|service|lanes|robustness] [output.json]

The report fails loudly: a missing raw-result file, a benchmark that did
not run, or an ``extra_info`` counter that a benchmark stopped recording
all exit non-zero with an explicit message — a partial JSON is never
written.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


class ReportError(RuntimeError):
    """A benchmark artifact the report depends on is missing or incomplete."""


def run_benchmarks(benchmarks: list, raw_json: Path) -> int:
    environment = dict(os.environ)
    environment.setdefault("REPRO_TPCH_SF", "0.001")
    environment.setdefault("REPRO_BENCH_ROUNDS", "1")
    pythonpath = str(REPO / "src")
    if environment.get("PYTHONPATH"):
        pythonpath += os.pathsep + environment["PYTHONPATH"]
    environment["PYTHONPATH"] = pythonpath
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        *benchmarks,
        "--benchmark-min-rounds=1",
        "--benchmark-disable-gc",
        f"--benchmark-json={raw_json}",
    ]
    completed = subprocess.run(command, cwd=REPO, env=environment)
    return completed.returncode


def collect(raw_json: Path):
    """The per-benchmark entries of a raw pytest-benchmark file, plus an
    ``extra(name_fragment, key)`` accessor that fails loudly on anything a
    benchmark stopped recording."""
    if not raw_json.is_file():
        raise ReportError(
            f"benchmark run produced no raw result file at {raw_json} "
            "(pytest-benchmark missing or the run crashed before writing)"
        )
    raw = json.loads(raw_json.read_text(encoding="utf-8"))
    benchmarks = []
    for entry in raw.get("benchmarks", []):
        stats = entry.get("stats", {})
        benchmarks.append(
            {
                "name": entry.get("name"),
                "fullname": entry.get("fullname"),
                "wall_seconds_median": stats.get("median"),
                "wall_seconds_mean": stats.get("mean"),
                "rounds": stats.get("rounds"),
                "extra_info": entry.get("extra_info", {}),
            }
        )
    if not benchmarks:
        raise ReportError(
            f"raw result file {raw_json} contains no benchmark entries — "
            "the suite collected nothing"
        )

    def extra(name_fragment: str, key: str):
        """The recorded counter, or a loud failure naming what is missing."""
        matched = False
        for bench in benchmarks:
            if name_fragment in (bench["name"] or ""):
                matched = True
                if key in bench["extra_info"]:
                    return bench["extra_info"][key]
        if matched:
            raise ReportError(
                f"benchmark '{name_fragment}' ran but recorded no "
                f"extra_info[{key!r}] — the report contract is broken"
            )
        raise ReportError(
            f"no benchmark matching '{name_fragment}' in the raw results — "
            "did the suite list change without updating the report?"
        )

    return raw, benchmarks, extra


def wall_clock_summary(summary: dict, raw: dict, benchmarks: list) -> dict:
    summary["wall_seconds_total_median"] = sum(
        bench["wall_seconds_median"]
        for bench in benchmarks
        if bench["wall_seconds_median"] is not None
    )
    medians = [
        bench["wall_seconds_median"]
        for bench in benchmarks
        if bench["wall_seconds_median"] is not None
    ]
    if medians:
        summary["wall_seconds_median_of_medians"] = statistics.median(medians)
    summary["machine_info"] = {
        "cpu": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
        "cores": raw.get("machine_info", {}).get("cpu", {}).get("count"),
    }
    summary["python"] = raw.get("machine_info", {}).get("python_version")
    return summary


def consolidate_core(raw_json: Path) -> dict:
    raw, benchmarks, extra = collect(raw_json)
    shared_steps = extra("test_topk_shared_vs_per_tuple_schedulers", "shared_steps")
    per_tuple_steps = extra(
        "test_topk_shared_vs_per_tuple_schedulers", "per_tuple_scheduler_steps"
    )
    legacy_steps = extra(
        "test_topk_shared_vs_per_tuple_schedulers", "legacy_serial_steps"
    )
    summary = {
        "workload": "unsafe TPC-H brand top-10, SF 0.001",
        "refinement_core": {
            "backend": extra("test_vectorized_sweep_throughput", "backend"),
            "numpy_available": extra(
                "test_vectorized_sweep_throughput", "numpy_available"
            ),
            "table_nodes": extra("test_vectorized_sweep_throughput", "table_nodes"),
            "scalar_sweep_seconds": extra(
                "test_vectorized_sweep_throughput", "scalar_sweep_seconds"
            ),
            "vector_sweep_seconds": extra(
                "test_vectorized_sweep_throughput", "vector_sweep_seconds"
            ),
            "vector_speedup": extra("test_vectorized_sweep_throughput", "vector_speedup"),
            "backends_bit_identical": extra(
                "test_backends_bit_identical_end_to_end", "backends_identical"
            ),
            "shared_parallel_bit_identical": extra(
                "test_shared_parallel_matches_serial_step_counts", "parallel_identical"
            ),
        },
        "topk_decision_steps": {
            "shared_dag": shared_steps,
            "per_tuple_scheduler": per_tuple_steps,
            "legacy_serial": legacy_steps,
        },
        "speedup_vs_per_tuple_scheduler": per_tuple_steps / max(1, shared_steps),
        "speedup_vs_legacy_serial": legacy_steps / max(1, shared_steps),
        "canonical_cache_speedup": extra(
            "test_canonical_clause_caching", "cache_speedup"
        ),
    }
    wall_clock_summary(summary, raw, benchmarks)
    return {"summary": summary, "benchmarks": benchmarks}


def consolidate_streaming(raw_json: Path) -> dict:
    raw, benchmarks, extra = collect(raw_json)
    cold_steps = extra("test_probability_update_redecides_warm", "cold_steps")
    warm_steps = extra("test_probability_update_redecides_warm", "warm_delta_steps")
    summary = {
        "workload": "standing unsafe TPC-H brand top-10 under deltas, SF 0.001",
        "delta_redecide_steps": {
            "cold_build": cold_steps,
            "fresh_rebuild": extra(
                "test_probability_update_redecides_warm", "fresh_cold_steps"
            ),
            "warm_refresh": warm_steps,
            "delete_insert_round_trip": extra(
                "test_delete_insert_round_trip_is_warm", "round_trip_steps"
            ),
        },
        "reseeded_rows": extra("test_probability_update_redecides_warm", "reseeded_rows"),
        "touched_nodes": extra("test_probability_update_redecides_warm", "touched_nodes"),
        "speedup_vs_cold": cold_steps / max(1, warm_steps),
    }
    wall_clock_summary(summary, raw, benchmarks)
    return {"summary": summary, "benchmarks": benchmarks}


def consolidate_service(raw_json: Path) -> dict:
    raw, benchmarks, extra = collect(raw_json)
    cold_steps = extra("test_topk_over_http_is_warm_after_first", "cold_steps")
    warm_steps = extra("test_topk_over_http_is_warm_after_first", "warm_steps")
    summary = {
        "workload": "unsafe TPC-H brand top-10 served over HTTP, SF 0.001",
        "cross_request_reuse_steps": {
            "cold_request": cold_steps,
            "warm_repeat": warm_steps,
            "warm_storm": extra(
                "test_concurrent_clients_share_warm_state", "warm_storm_steps"
            ),
            "subscription_update": extra(
                "test_subscription_update_over_http", "update_delta_steps"
            ),
        },
        "concurrent_clients": extra("test_concurrent_clients_share_warm_state", "clients"),
        "warm_repeat_within_one_step": warm_steps <= 1,
        "speedup_vs_cold": cold_steps / max(1, warm_steps),
    }
    wall_clock_summary(summary, raw, benchmarks)
    return {"summary": summary, "benchmarks": benchmarks}


def consolidate_lanes(raw_json: Path) -> dict:
    raw, benchmarks, extra = collect(raw_json)
    summary = {
        "workload": "unsafe TPC-H brand decisions across refinement lanes, SF 0.001",
        "lane_axis": extra("test_topk_lane_axis", "lane_axis"),
        "topk": {
            "refine_steps": extra("test_topk_lane_axis", "refine_steps"),
            "store_steps": extra("test_topk_lane_axis", "store_steps"),
            "seconds_by_lanes": extra("test_topk_lane_axis", "seconds_by_lanes"),
            "speedup_lanes4": extra("test_topk_lane_axis", "speedup_lanes4"),
        },
        "threshold": {
            "refine_steps": extra("test_threshold_lane_axis", "refine_steps"),
            "store_steps": extra("test_threshold_lane_axis", "store_steps"),
            "seconds_by_lanes": extra("test_threshold_lane_axis", "seconds_by_lanes"),
            "speedup_lanes4": extra("test_threshold_lane_axis", "speedup_lanes4"),
        },
        "round_batching": {
            "serial_rounds": extra("test_round_width_batches_the_frontier", "serial_rounds"),
            "batched_rounds": extra(
                "test_round_width_batches_the_frontier", "batched_rounds"
            ),
            "steps": extra("test_round_width_batches_the_frontier", "steps"),
        },
        "cores": extra("test_topk_lane_axis", "cores"),
        "speedup_asserted": extra("test_topk_lane_axis", "speedup_asserted"),
        # The contract the benchmarks assert unconditionally: lanes 0/1/4
        # are bit-identical; reaching this summary means the gate held.
        "lanes_bit_identical": True,
    }
    wall_clock_summary(summary, raw, benchmarks)
    return {"summary": summary, "benchmarks": benchmarks}


def consolidate_robustness(raw_json: Path) -> dict:
    raw, benchmarks, extra = collect(raw_json)
    generous = "test_generous_deadline_is_free_and_bit_identical"
    expired = "test_expired_deadline_degrades_inside_the_monotone_envelope"
    summary = {
        "workload": "unsafe TPC-H brand top-10 under wall-clock deadlines, SF 0.001",
        "refine_steps": extra(generous, "refine_steps"),
        "generous_deadline": {
            "seconds_no_deadline": extra(generous, "seconds_no_deadline"),
            "seconds_generous_deadline": extra(generous, "seconds_generous_deadline"),
            "overhead_ratio": extra(generous, "overhead_ratio"),
        },
        "expired_deadline": {
            "answers_bracketed": extra(expired, "answers"),
            "full_refine_steps": extra(expired, "full_refine_steps"),
            "degraded_refine_steps": extra(expired, "degraded_refine_steps"),
        },
        # The contracts the benchmarks assert unconditionally: a generous
        # deadline is bit-identical to none, and an expired deadline's
        # brackets contain every refined marginal.  Reaching this summary
        # means both gates held.
        "generous_deadline_bit_identical": True,
        "expired_deadline_envelope_sound": True,
    }
    wall_clock_summary(summary, raw, benchmarks)
    return {"summary": summary, "benchmarks": benchmarks}


def print_core(summary: dict, output: Path) -> None:
    core = summary["refinement_core"]
    steps = summary["topk_decision_steps"]
    print(
        f"bench report OK: sweep speedup={core['vector_speedup']:.2f}x "
        f"({core['backend']} backend), shared={steps['shared_dag']} steps, "
        f"per-tuple scheduler={steps['per_tuple_scheduler']}, "
        f"legacy serial={steps['legacy_serial']} -> {output}"
    )


def print_streaming(summary: dict, output: Path) -> None:
    steps = summary["delta_redecide_steps"]
    print(
        f"bench report OK: warm refresh={steps['warm_refresh']} steps vs "
        f"cold build={steps['cold_build']} "
        f"({summary['speedup_vs_cold']:.1f}x), "
        f"round trip={steps['delete_insert_round_trip']} -> {output}"
    )


def print_service(summary: dict, output: Path) -> None:
    steps = summary["cross_request_reuse_steps"]
    print(
        f"bench report OK: warm repeat={steps['warm_repeat']} steps vs "
        f"cold request={steps['cold_request']} over HTTP, "
        f"warm storm={steps['warm_storm']} "
        f"({summary['concurrent_clients']} clients) -> {output}"
    )


def print_lanes(summary: dict, output: Path) -> None:
    batching = summary["round_batching"]
    print(
        f"bench report OK: lanes {summary['lane_axis']} bit-identical, "
        f"topk={summary['topk']['refine_steps']} steps, "
        f"rounds {batching['serial_rounds']}->{batching['batched_rounds']} "
        f"at width 4 ({summary['cores']} cores) -> {output}"
    )


def print_robustness(summary: dict, output: Path) -> None:
    degradation = summary["expired_deadline"]
    print(
        f"bench report OK: generous deadline bit-identical at "
        f"{summary['refine_steps']} steps "
        f"(overhead {summary['generous_deadline']['overhead_ratio']:.2f}x), "
        f"expired deadline bracketed {degradation['answers_bracketed']} "
        f"answer(s) after {degradation['degraded_refine_steps']} steps -> {output}"
    )


SUITES = {
    "core": {
        "benchmarks": [
            "benchmarks/bench_refinement_core.py",
            "benchmarks/bench_shared_lineage.py",
            "benchmarks/bench_topk_pruning.py",
        ],
        "output": "BENCH_refinement_core.json",
        "consolidate": consolidate_core,
        "print": print_core,
    },
    "streaming": {
        "benchmarks": ["benchmarks/bench_streaming.py"],
        "output": "BENCH_streaming.json",
        "consolidate": consolidate_streaming,
        "print": print_streaming,
    },
    "service": {
        "benchmarks": ["benchmarks/bench_service.py"],
        "output": "BENCH_service.json",
        "consolidate": consolidate_service,
        "print": print_service,
    },
    "lanes": {
        "benchmarks": ["benchmarks/bench_lanes.py"],
        "output": "BENCH_lanes.json",
        "consolidate": consolidate_lanes,
        "print": print_lanes,
    },
    "robustness": {
        "benchmarks": ["benchmarks/bench_robustness.py"],
        "output": "BENCH_robustness.json",
        "consolidate": consolidate_robustness,
        "print": print_robustness,
    },
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=sorted(SUITES), default="core")
    parser.add_argument("output", nargs="?", default=None)
    options = parser.parse_args()
    suite = SUITES[options.suite]
    output = Path(options.output) if options.output else REPO / suite["output"]
    with tempfile.TemporaryDirectory() as scratch:
        raw_json = Path(scratch) / "raw-benchmark.json"
        status = run_benchmarks(suite["benchmarks"], raw_json)
        if status != 0:
            print(f"FAIL benchmark run exited with status {status}", file=sys.stderr)
            return status
        try:
            report = suite["consolidate"](raw_json)
        except ReportError as error:
            print(f"FAIL bench report: {error}", file=sys.stderr)
            return 1
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", "utf-8")
    suite["print"](report["summary"], output)
    return 0


if __name__ == "__main__":
    sys.exit(main())

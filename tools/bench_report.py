#!/usr/bin/env python3
"""Consolidated benchmark report: run the SF 0.001 suite, emit one JSON.

Runs the shared-lineage and top-k pruning benchmarks at scale factor 0.001
(one round each — the asserted quantities are deterministic step counts, not
timings) and consolidates the per-test results into a single
``BENCH_shared_lineage.json``:

* ``benchmarks`` — per benchmark: the median wall time and every
  ``extra_info`` counter the script recorded (refinement steps, cache hits,
  speedup ratios);
* ``summary`` — the headline numbers the perf trajectory tracks: logical
  steps to decide the unsafe TPC-H brand top-10 under the shared-DAG
  scheduler vs. the per-tuple schedulers, and the resulting ratios.

CI uploads the file as an artifact on every push (``smoke-benchmark`` job),
seeding a comparable series of step counts and wall times across commits.
Run locally from the repository root:

    python tools/bench_report.py [output.json]

Exits non-zero if the underlying pytest run fails (the benchmarks assert
the acceptance contract, so a regression fails the report too).
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
BENCHMARKS = [
    "benchmarks/bench_shared_lineage.py",
    "benchmarks/bench_topk_pruning.py",
]
DEFAULT_OUTPUT = "BENCH_shared_lineage.json"


def run_benchmarks(raw_json: Path) -> int:
    environment = dict(os.environ)
    environment.setdefault("REPRO_TPCH_SF", "0.001")
    environment.setdefault("REPRO_BENCH_ROUNDS", "1")
    pythonpath = str(REPO / "src")
    if environment.get("PYTHONPATH"):
        pythonpath += os.pathsep + environment["PYTHONPATH"]
    environment["PYTHONPATH"] = pythonpath
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        *BENCHMARKS,
        "--benchmark-min-rounds=1",
        "--benchmark-disable-gc",
        f"--benchmark-json={raw_json}",
    ]
    completed = subprocess.run(command, cwd=REPO, env=environment)
    return completed.returncode


def consolidate(raw_json: Path) -> dict:
    raw = json.loads(raw_json.read_text(encoding="utf-8"))
    benchmarks = []
    for entry in raw.get("benchmarks", []):
        stats = entry.get("stats", {})
        benchmarks.append(
            {
                "name": entry.get("name"),
                "fullname": entry.get("fullname"),
                "wall_seconds_median": stats.get("median"),
                "wall_seconds_mean": stats.get("mean"),
                "rounds": stats.get("rounds"),
                "extra_info": entry.get("extra_info", {}),
            }
        )

    def extra(name_fragment: str, key: str):
        for bench in benchmarks:
            if name_fragment in (bench["name"] or "") and key in bench["extra_info"]:
                return bench["extra_info"][key]
        return None

    shared_steps = extra("test_topk_shared_vs_per_tuple_schedulers", "shared_steps")
    per_tuple_steps = extra(
        "test_topk_shared_vs_per_tuple_schedulers", "per_tuple_scheduler_steps"
    )
    legacy_steps = extra(
        "test_topk_shared_vs_per_tuple_schedulers", "legacy_serial_steps"
    )
    summary = {
        "workload": "unsafe TPC-H brand top-10, SF 0.001",
        "topk_decision_steps": {
            "shared_dag": shared_steps,
            "per_tuple_scheduler": per_tuple_steps,
            "legacy_serial": legacy_steps,
        },
        "speedup_vs_per_tuple_scheduler": (
            per_tuple_steps / shared_steps if shared_steps and per_tuple_steps else None
        ),
        "speedup_vs_legacy_serial": (
            legacy_steps / shared_steps if shared_steps and legacy_steps else None
        ),
        "canonical_cache_speedup": extra(
            "test_canonical_clause_caching", "cache_speedup"
        ),
        "wall_seconds_total_median": sum(
            bench["wall_seconds_median"]
            for bench in benchmarks
            if bench["wall_seconds_median"] is not None
        ),
        "machine_info": {
            "cpu": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
            "cores": raw.get("machine_info", {}).get("cpu", {}).get("count"),
        },
        "python": raw.get("machine_info", {}).get("python_version"),
    }
    medians = [
        bench["wall_seconds_median"]
        for bench in benchmarks
        if bench["wall_seconds_median"] is not None
    ]
    if medians:
        summary["wall_seconds_median_of_medians"] = statistics.median(medians)
    return {"summary": summary, "benchmarks": benchmarks}


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / DEFAULT_OUTPUT
    with tempfile.TemporaryDirectory() as scratch:
        raw_json = Path(scratch) / "raw-benchmark.json"
        status = run_benchmarks(raw_json)
        if status != 0:
            print(f"FAIL benchmark run exited with status {status}")
            return status
        report = consolidate(raw_json)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", "utf-8")
    steps = report["summary"]["topk_decision_steps"]
    print(
        f"bench report OK: shared={steps['shared_dag']} steps, "
        f"per-tuple scheduler={steps['per_tuple_scheduler']}, "
        f"legacy serial={steps['legacy_serial']} -> {output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

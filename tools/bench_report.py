#!/usr/bin/env python3
"""Consolidated benchmark report: run the SF 0.001 suite, emit one JSON.

Runs the refinement-core, shared-lineage, and top-k pruning benchmarks at
scale factor 0.001 (one round each — the asserted quantities are
deterministic step counts, not timings) and consolidates the per-test
results into a single ``BENCH_refinement_core.json``:

* ``benchmarks`` — per benchmark: the median wall time and every
  ``extra_info`` counter the script recorded (refinement steps, cache hits,
  sweep timings, speedup ratios);
* ``summary`` — the headline numbers the perf trajectory tracks: the
  vectorized-vs-scalar bound-propagation sweep ratio of the columnar node
  table, and the logical steps to decide the unsafe TPC-H brand top-10
  under the shared-DAG scheduler vs. the per-tuple schedulers.

CI uploads the file as an artifact on every push (``smoke-benchmark`` job),
seeding a comparable series of step counts and wall times across commits.
Run locally from the repository root:

    python tools/bench_report.py [output.json]

The report fails loudly: a missing raw-result file, a benchmark that did
not run, or an ``extra_info`` counter that a benchmark stopped recording
all exit non-zero with an explicit message — a partial JSON is never
written.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
BENCHMARKS = [
    "benchmarks/bench_refinement_core.py",
    "benchmarks/bench_shared_lineage.py",
    "benchmarks/bench_topk_pruning.py",
]
DEFAULT_OUTPUT = "BENCH_refinement_core.json"


class ReportError(RuntimeError):
    """A benchmark artifact the report depends on is missing or incomplete."""


def run_benchmarks(raw_json: Path) -> int:
    environment = dict(os.environ)
    environment.setdefault("REPRO_TPCH_SF", "0.001")
    environment.setdefault("REPRO_BENCH_ROUNDS", "1")
    pythonpath = str(REPO / "src")
    if environment.get("PYTHONPATH"):
        pythonpath += os.pathsep + environment["PYTHONPATH"]
    environment["PYTHONPATH"] = pythonpath
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        *BENCHMARKS,
        "--benchmark-min-rounds=1",
        "--benchmark-disable-gc",
        f"--benchmark-json={raw_json}",
    ]
    completed = subprocess.run(command, cwd=REPO, env=environment)
    return completed.returncode


def consolidate(raw_json: Path) -> dict:
    if not raw_json.is_file():
        raise ReportError(
            f"benchmark run produced no raw result file at {raw_json} "
            "(pytest-benchmark missing or the run crashed before writing)"
        )
    raw = json.loads(raw_json.read_text(encoding="utf-8"))
    benchmarks = []
    for entry in raw.get("benchmarks", []):
        stats = entry.get("stats", {})
        benchmarks.append(
            {
                "name": entry.get("name"),
                "fullname": entry.get("fullname"),
                "wall_seconds_median": stats.get("median"),
                "wall_seconds_mean": stats.get("mean"),
                "rounds": stats.get("rounds"),
                "extra_info": entry.get("extra_info", {}),
            }
        )
    if not benchmarks:
        raise ReportError(
            f"raw result file {raw_json} contains no benchmark entries — "
            "the suite collected nothing"
        )

    def extra(name_fragment: str, key: str):
        """The recorded counter, or a loud failure naming what is missing."""
        matched = False
        for bench in benchmarks:
            if name_fragment in (bench["name"] or ""):
                matched = True
                if key in bench["extra_info"]:
                    return bench["extra_info"][key]
        if matched:
            raise ReportError(
                f"benchmark '{name_fragment}' ran but recorded no "
                f"extra_info[{key!r}] — the report contract is broken"
            )
        raise ReportError(
            f"no benchmark matching '{name_fragment}' in the raw results — "
            "did the suite list change without updating the report?"
        )

    shared_steps = extra("test_topk_shared_vs_per_tuple_schedulers", "shared_steps")
    per_tuple_steps = extra(
        "test_topk_shared_vs_per_tuple_schedulers", "per_tuple_scheduler_steps"
    )
    legacy_steps = extra(
        "test_topk_shared_vs_per_tuple_schedulers", "legacy_serial_steps"
    )
    summary = {
        "workload": "unsafe TPC-H brand top-10, SF 0.001",
        "refinement_core": {
            "backend": extra("test_vectorized_sweep_throughput", "backend"),
            "numpy_available": extra(
                "test_vectorized_sweep_throughput", "numpy_available"
            ),
            "table_nodes": extra("test_vectorized_sweep_throughput", "table_nodes"),
            "scalar_sweep_seconds": extra(
                "test_vectorized_sweep_throughput", "scalar_sweep_seconds"
            ),
            "vector_sweep_seconds": extra(
                "test_vectorized_sweep_throughput", "vector_sweep_seconds"
            ),
            "vector_speedup": extra("test_vectorized_sweep_throughput", "vector_speedup"),
            "backends_bit_identical": extra(
                "test_backends_bit_identical_end_to_end", "backends_identical"
            ),
            "shared_parallel_bit_identical": extra(
                "test_shared_parallel_matches_serial_step_counts", "parallel_identical"
            ),
        },
        "topk_decision_steps": {
            "shared_dag": shared_steps,
            "per_tuple_scheduler": per_tuple_steps,
            "legacy_serial": legacy_steps,
        },
        "speedup_vs_per_tuple_scheduler": per_tuple_steps / max(1, shared_steps),
        "speedup_vs_legacy_serial": legacy_steps / max(1, shared_steps),
        "canonical_cache_speedup": extra(
            "test_canonical_clause_caching", "cache_speedup"
        ),
        "wall_seconds_total_median": sum(
            bench["wall_seconds_median"]
            for bench in benchmarks
            if bench["wall_seconds_median"] is not None
        ),
        "machine_info": {
            "cpu": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
            "cores": raw.get("machine_info", {}).get("cpu", {}).get("count"),
        },
        "python": raw.get("machine_info", {}).get("python_version"),
    }
    medians = [
        bench["wall_seconds_median"]
        for bench in benchmarks
        if bench["wall_seconds_median"] is not None
    ]
    if medians:
        summary["wall_seconds_median_of_medians"] = statistics.median(medians)
    return {"summary": summary, "benchmarks": benchmarks}


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / DEFAULT_OUTPUT
    with tempfile.TemporaryDirectory() as scratch:
        raw_json = Path(scratch) / "raw-benchmark.json"
        status = run_benchmarks(raw_json)
        if status != 0:
            print(f"FAIL benchmark run exited with status {status}", file=sys.stderr)
            return status
        try:
            report = consolidate(raw_json)
        except ReportError as error:
            print(f"FAIL bench report: {error}", file=sys.stderr)
            return 1
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", "utf-8")
    core = report["summary"]["refinement_core"]
    steps = report["summary"]["topk_decision_steps"]
    print(
        f"bench report OK: sweep speedup={core['vector_speedup']:.2f}x "
        f"({core['backend']} backend), shared={steps['shared_dag']} steps, "
        f"per-tuple scheduler={steps['per_tuple_scheduler']}, "
        f"legacy serial={steps['legacy_serial']} -> {output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

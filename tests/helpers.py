"""Shared, importable test helpers.

These used to live in ``tests/conftest.py``, but importing them with
``from conftest import ...`` is fragile: pytest inserts every conftest's
directory on ``sys.path``, so whichever ``conftest.py`` (tests/ or
benchmarks/) happens to be imported first wins the module name ``conftest``.
Keeping the helpers in a plain module with a unique name makes the imports
deterministic.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import Atom, ConjunctiveQuery, ProbabilisticDatabase  # noqa: E402
from repro.algebra import Comparison, conjunction_of  # noqa: E402
from repro.storage import Relation, Schema  # noqa: E402

__all__ = ["build_paper_database", "paper_query", "assert_confidences_close"]


def build_paper_database() -> ProbabilisticDatabase:
    """The tuple-independent database of Fig. 1 (Cust / Ord / Item)."""
    db = ProbabilisticDatabase("paper-toy")
    cust = Relation(
        "Cust",
        Schema.of("ckey:int", "cname:str"),
        [(1, "Joe"), (2, "Dan"), (3, "Li"), (4, "Mo")],
    )
    ord_ = Relation(
        "Ord",
        Schema.of("okey:int", "ckey:int", "odate:str"),
        [
            (1, 1, "1995-01-10"),
            (2, 1, "1996-01-09"),
            (3, 2, "1994-11-11"),
            (4, 2, "1993-01-08"),
            (5, 3, "1995-08-15"),
            (6, 3, "1996-12-25"),
        ],
    )
    item = Relation(
        "Item",
        Schema.of("okey:int", "discount:float", "ckey:int"),
        [(1, 0.1, 1), (1, 0.2, 1), (3, 0.4, 2), (3, 0.1, 2), (4, 0.4, 2), (5, 0.1, 3)],
    )
    db.add_table(cust, probabilities=[0.1, 0.2, 0.3, 0.4], primary_key=["ckey"])
    db.add_table(ord_, probabilities=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6], primary_key=["okey"])
    db.add_table(item, probabilities=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
    return db


def paper_query() -> ConjunctiveQuery:
    """The Introduction's query Q: dates of discounted orders shipped to Joe."""
    return ConjunctiveQuery(
        "Q",
        [
            Atom("Cust", ["ckey", "cname"]),
            Atom("Ord", ["okey", "ckey", "odate"]),
            Atom("Item", ["okey", "discount", "ckey"]),
        ],
        projection=["odate"],
        selections=conjunction_of(
            [Comparison("cname", "=", "Joe"), Comparison("discount", ">", 0)]
        ),
    )


def assert_confidences_close(actual, expected, tolerance: float = 1e-9) -> None:
    """Assert two tuple->confidence mappings agree up to ``tolerance``."""
    assert set(actual) == set(expected), (
        f"answer tuples differ: only in actual {set(actual) - set(expected)}, "
        f"only in expected {set(expected) - set(actual)}"
    )
    for key, value in expected.items():
        assert actual[key] == pytest.approx(value, abs=tolerance), f"confidence of {key} differs"

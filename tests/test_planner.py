"""Tests for join ordering, answer plans, and eager/hybrid evaluation."""

import pytest

from repro.errors import PlanningError
from repro.algebra.operators import ProjectOp, ScanOp, SelectOp
from repro.algebra.plan import walk
from repro.query.hierarchy import build_hierarchy
from repro.sprout.engine import SproutEngine
from repro.sprout.planner import (
    JoinOrderPlanner,
    base_table_plan,
    build_answer_plan,
    eager_evaluation,
    evaluate_deterministic,
    needed_data_attributes,
    project_answer_columns,
)
from repro.storage.schema import ColumnRole

from helpers import build_paper_database, paper_query


@pytest.fixture
def db():
    return build_paper_database()


@pytest.fixture
def query():
    return paper_query()


class TestBaseTablePlan:
    def test_needed_data_attributes(self, query):
        assert needed_data_attributes(query, "Cust") == ["ckey"]
        assert needed_data_attributes(query, "Ord") == ["okey", "ckey", "odate"]
        assert needed_data_attributes(query, "Item") == ["okey", "ckey"]

    def test_plan_structure(self, db, query):
        plan = base_table_plan(db, query, "Cust")
        operators = list(walk(plan))
        assert any(isinstance(op, ScanOp) for op in operators)
        assert any(isinstance(op, SelectOp) for op in operators)
        assert any(isinstance(op, ProjectOp) for op in operators)
        relation = plan.to_relation("cust")
        assert len(relation) == 1  # only Joe survives
        assert relation.schema.names == ("ckey", "Cust.V", "Cust.P")

    def test_plan_without_selection(self, db, query):
        plan = base_table_plan(db, query, "Ord")
        assert not any(isinstance(op, SelectOp) for op in walk(plan))


class TestJoinOrder:
    def test_lazy_order_starts_with_most_selective_table(self, db, query):
        planner = JoinOrderPlanner(db)
        order = planner.lazy_join_order(query)
        assert order[0] == "Cust"
        assert set(order) == {"Cust", "Ord", "Item"}

    def test_lazy_order_prefers_connected_tables(self, db, query):
        planner = JoinOrderPlanner(db)
        order = planner.lazy_join_order(query)
        # every prefix is connected for this query
        assert order.index("Ord") < 3 and order.index("Item") < 3

    def test_hierarchical_order_joins_deep_subtree_first(self, db, query):
        planner = JoinOrderPlanner(db)
        tree = build_hierarchy(query.boolean_version())
        order = planner.hierarchical_join_order(query, tree)
        # The Ord/Item component is deeper than the Cust leaf, so it comes first.
        assert set(order[:2]) == {"Ord", "Item"}
        assert order[2] == "Cust"

    def test_filtered_cardinality(self, db, query):
        planner = JoinOrderPlanner(db)
        assert planner.filtered_cardinality(query, "Cust") < planner.filtered_cardinality(
            query, "Ord"
        )


class TestAnswerPlan:
    def test_build_and_project(self, db, query):
        order = ["Cust", "Ord", "Item"]
        plan = project_answer_columns(build_answer_plan(db, query, order), query)
        relation = plan.to_relation("answer")
        assert len(relation) == 2  # the two derivations of the single answer tuple
        data_names = [a.name for a in relation.schema if a.role is ColumnRole.DATA]
        assert data_names == ["odate"]
        assert {pair.source for pair in relation.schema.var_prob_pairs()} == {"Cust", "Ord", "Item"}

    def test_any_join_order_gives_same_answer(self, db, query):
        reference = None
        for order in (["Cust", "Ord", "Item"], ["Ord", "Item", "Cust"], ["Item", "Cust", "Ord"]):
            plan = project_answer_columns(build_answer_plan(db, query, order), query)
            rows = sorted(plan.to_relation("a").project(["odate"]).rows)
            if reference is None:
                reference = rows
            assert rows == reference

    def test_incomplete_join_order_rejected(self, db, query):
        with pytest.raises(PlanningError):
            build_answer_plan(db, query, ["Cust", "Ord"])


class TestDeterministicEvaluation:
    def test_on_full_instance(self, db, query):
        instance = {
            name: db.table(name).relation.project(list(db.table(name).data_schema.names))
            for name in db.table_names()
        }
        answer = evaluate_deterministic(query, instance)
        assert answer.rows == [("1995-01-10",)]

    def test_boolean_query(self, db, query):
        instance = {
            name: db.table(name).relation.project(list(db.table(name).data_schema.names))
            for name in db.table_names()
        }
        answer = evaluate_deterministic(query.boolean_version(), instance)
        assert answer.rows == [()]


class TestEagerEvaluation:
    def test_eager_and_hybrid_compute_the_paper_probability(self, db, query):
        engine = SproutEngine(db)
        tree = engine.hierarchy_for(query)
        signature = engine.signature_for(query)
        for aggregate_leaves in (True, False):
            result = eager_evaluation(
                db, query, tree, signature, aggregate_leaves=aggregate_leaves,
                head_attributes=engine.planning_head(query),
            )
            pair = result.relation.schema.var_prob_pairs()[0]
            confidences = {
                row[0]: row[pair.prob_index] for row in result.relation
            }
            assert confidences["1995-01-10"] == pytest.approx(0.0028)

    def test_rows_processed_reported(self, db, query):
        engine = SproutEngine(db)
        result = eager_evaluation(
            db, query, engine.hierarchy_for(query), engine.signature_for(query)
        )
        assert result.rows_processed > 0

"""Crash-recoverable snapshots: atomic format, warm restore, corrupt fallback.

The acceptance bar from PR 10: a killed-and-restarted server re-decides a
warm query in ≤1 logical step (the snapshot carries the shared store's
refined bounds), restored subscriptions keep their ids and decided sets,
and a truncated or corrupt snapshot boots the service **cold with a
structured warning** — never a crash, never a wrong answer.
"""

import pytest

from repro.errors import SnapshotError
from repro.service import (
    QueryService,
    ServiceConfig,
    read_snapshot,
    write_snapshot,
)
from repro.service.__main__ import demo_database
from repro.service.snapshot import MAGIC
from repro.sprout.engine import SproutEngine

SQL = "SELECT room, conf() FROM alarm, uplink, zone_ok"


def shared_service(config):
    """A service over a shared-lineage engine, regardless of env knobs.

    The warm-restart contract snapshots the shared d-tree cache, so these
    tests must not silently degrade to the legacy per-tuple path on the
    REPRO_SHARED_LINEAGE=0 CI leg (which has no exportable warm state).
    """
    db = demo_database()
    return QueryService(db, config=config, engine=SproutEngine(db, workers=0, shared_lineage=True))


class TestSnapshotFormat:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "s.snap")
        payload = {"answer": [1, 2, 3], "nested": {"pi": 3.14159}}
        size = write_snapshot(path, payload)
        assert size > 0
        assert read_snapshot(path) == payload

    def test_overwrite_is_atomic_at_the_api_level(self, tmp_path):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, {"generation": 1})
        write_snapshot(path, {"generation": 2})
        assert read_snapshot(path) == {"generation": 2}
        assert list(tmp_path.iterdir()) == [tmp_path / "s.snap"]  # no temp litter

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_snapshot(str(tmp_path / "absent.snap"))

    def test_garbled_magic(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(str(path), {"x": 1})
        blob = path.read_bytes()
        path.write_bytes(b"NOTASNAP" + blob[8:])
        with pytest.raises(SnapshotError, match="header"):
            read_snapshot(str(path))

    def test_truncation_at_every_boundary_class(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(str(path), {"x": list(range(50))})
        blob = path.read_bytes()
        header = len(MAGIC) + 8 + 32
        # Inside the magic, inside the length, inside the digest, inside the
        # payload, and one byte short of complete — all must fail loudly.
        for cut in (0, len(MAGIC) - 1, len(MAGIC) + 4, header - 1, header + 3, len(blob) - 1):
            path.write_bytes(blob[:cut])
            with pytest.raises(SnapshotError):
                read_snapshot(str(path))

    def test_bit_flip_fails_the_checksum(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(str(path), {"x": 1})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(str(path))

    def test_unpicklable_payload(self, tmp_path):
        with pytest.raises(SnapshotError, match="picklable"):
            write_snapshot(str(tmp_path / "s.snap"), {"f": lambda: None})


class TestServiceRecovery:
    def _config(self, tmp_path):
        return ServiceConfig(snapshot_path=str(tmp_path / "service.snap"))

    def test_warm_restart_re_decides_in_at_most_one_step(self, tmp_path):
        config = self._config(tmp_path)
        with shared_service(config) as service:
            cold = service.execute("topk", {"sql": SQL, "k": 2})
            assert cold["refine_steps"] > 0
        # A brand-new service over a brand-new database copy: all warmth
        # must come from the snapshot written at close().
        with shared_service(config) as reborn:
            assert reborn.snapshot_restored is True
            warm = reborn.execute("topk", {"sql": SQL, "k": 2})
        assert warm["refine_steps"] <= 1
        assert warm["rows"] == cold["rows"]
        assert warm["decided"] is True

    def test_subscriptions_survive_with_ids_and_decided_sets(self, tmp_path):
        config = self._config(tmp_path)
        with QueryService(demo_database(), config=config) as service:
            created = service.execute("subscribe", {"sql": SQL, "k": 2})
            assert created["subscription"] == "sub-0"
            before = service.execute(
                "subscription_get", {"subscription": "sub-0"}
            )
        with QueryService(demo_database(), config=config) as reborn:
            assert reborn.subscriptions() == ["sub-0"]
            after = reborn.execute("subscription_get", {"subscription": "sub-0"})
            assert after["selected"] == before["selected"]
            assert after["decided"] == before["decided"]
            # The id sequence continues; restored ids are never reissued.
            fresh = reborn.execute("subscribe", {"sql": SQL, "tau": 0.5})
            assert fresh["subscription"] == "sub-1"

    def test_restored_subscription_still_processes_deltas(self, tmp_path):
        config = self._config(tmp_path)
        with QueryService(demo_database(), config=config) as service:
            service.execute("subscribe", {"sql": SQL, "k": 2})
            variables = service.execute(
                "subscription_get", {"subscription": "sub-0"}
            )["variables"]
        with QueryService(demo_database(), config=config) as reborn:
            updated = reborn.execute(
                "subscription_update",
                {"subscription": "sub-0", "variable": variables[0], "probability": 0.01},
            )
            assert updated["kind"] == "update"
            assert updated["decided"] in (True, False)

    def test_corrupt_snapshot_boots_cold_with_a_warning(self, tmp_path):
        config = self._config(tmp_path)
        with QueryService(demo_database(), config=config) as service:
            service.execute("topk", {"sql": SQL, "k": 2})
        # Stomp the snapshot: truncate it mid-payload.
        path = tmp_path / "service.snap"
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.warns(RuntimeWarning, match="booting cold"):
            reborn = QueryService(demo_database(), config=config)
        try:
            assert reborn.snapshot_restored is False
            assert reborn.snapshot_failed == 1
            reborn.start()
            cold = reborn.execute("topk", {"sql": SQL, "k": 2})
            assert cold["decided"] is True
            assert cold["refine_steps"] > 0  # genuinely cold, and serving
        finally:
            reborn.close()

    def test_foreign_bytes_boot_cold_too(self, tmp_path):
        config = self._config(tmp_path)
        (tmp_path / "service.snap").write_bytes(b"not a snapshot at all")
        with pytest.warns(RuntimeWarning, match="booting cold"):
            reborn = QueryService(demo_database(), config=config)
        try:
            reborn.start()
            assert reborn.execute("topk", {"sql": SQL, "k": 2})["decided"] is True
        finally:
            reborn.close()

    def test_periodic_snapshots_by_request_count(self, tmp_path):
        config = ServiceConfig(
            snapshot_path=str(tmp_path / "service.snap"), snapshot_every=2
        )
        with shared_service(config) as service:
            for _ in range(4):
                service.execute("topk", {"sql": SQL, "k": 2})
            # Request 4 runs after request 2's checkpoint; at least that one
            # is guaranteed visible from here (the lane is serial).
            assert service.stats()["snapshot"]["written"] >= 1
        # close() writes the final snapshot on top.
        state = read_snapshot(str(tmp_path / "service.snap"))
        assert state["version"] == 1
        assert state["engine_cache"] is not None

    def test_snapshot_config_validation(self, tmp_path):
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            ServiceConfig(snapshot_every=0, snapshot_path="x")
        with pytest.raises(PlanningError):
            ServiceConfig(snapshot_every=3)  # no path to write to
        with pytest.raises(PlanningError):
            ServiceConfig(default_timeout_ms=-1)

"""The columnar node table: layout, kernels, and backend bit-identity.

Unit tests pin the storage primitives (append, contiguous edges, in-edge
threading, level lifting, pickling) and the per-node arithmetic against
:func:`repro.prob.dtree.combine_bounds`.  Hypothesis properties assert, on
random lineage families refined along arbitrary interleavings, that

* the topological level invariant ``level(parent) > level(child)`` survives
  every in-place leaf expansion,
* the vectorized (NumPy) and scalar propagation backends leave bit-identical
  columns behind — same bounds, same structure, same step counts,
* a full :meth:`repro.prob.nodetable.NodeTable.refresh_all_bounds` sweep is
  idempotent on a propagated table under either backend, and
* every view's bounds stay sound (bracketing enumeration truth) and
  monotone along the interleaving.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prob.backend import HAS_NUMPY
from repro.prob.dtree import DTree, combine_bounds, refine_to_budget
from repro.prob.formulas import DNF, dnf_probability_enumeration
from repro.prob.nodetable import (
    KIND_CLOSED,
    KIND_DET_OR,
    KIND_IND_AND,
    KIND_IND_OR,
    KIND_LEAF,
    NodeTable,
)
from repro.prob.sharedag import SharedDTree, SharedLineageStore

TOLERANCE = 1e-9


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def lineage_family(draw):
    """2–4 DNFs drawing clauses from one shared pool (≤ 10 variables)."""
    nvars = draw(st.integers(4, 10))
    probability = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
    probabilities = {v: draw(probability) for v in range(nvars)}
    clause = st.sets(st.integers(0, nvars - 1), min_size=1, max_size=3).map(frozenset)
    pool = draw(st.lists(clause, min_size=2, max_size=6, unique=True))
    members = []
    for _ in range(draw(st.integers(2, 4))):
        shared = draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=len(pool), unique=True)
        )
        private = draw(st.lists(clause, min_size=0, max_size=3))
        members.append(DNF(shared + private))
    return members, probabilities


@st.composite
def family_with_interleaving(draw):
    """A lineage family plus an arbitrary (view, steps) refinement schedule."""
    members, probabilities = draw(lineage_family())
    schedule = draw(
        st.lists(
            st.tuples(st.integers(0, len(members) - 1), st.integers(1, 3)),
            min_size=0,
            max_size=12,
        )
    )
    return members, probabilities, schedule


def build_and_refine(members, probabilities, schedule, vectorize):
    """One store + views for the family, refined along the schedule."""
    store = SharedLineageStore(vectorize=vectorize)
    for dnf in members:
        store.add_probabilities(dnf, probabilities)
    views = [SharedDTree(store, dnf) for dnf in members]
    for index, steps in schedule:
        views[index].refine(steps)
    return store, views


def column_fingerprint(table):
    """Every column as plain tuples — the bit-level comparison unit."""
    return tuple(
        tuple(getattr(table, name))
        for name in (
            "kind",
            "lower",
            "upper",
            "level",
            "child_start",
            "child_count",
            "in_head",
            "edge_child",
            "edge_parent",
            "edge_weight",
            "edge_next",
        )
    )


# ---------------------------------------------------------------------------
# storage primitives
# ---------------------------------------------------------------------------


class TestTablePrimitives:
    def build_small_dag(self):
        """⊗(leaf, ⊕(leaf, leaf)) with hand-set bounds."""
        table = NodeTable(vectorize=False)
        a = table.new_node(KIND_LEAF, 0.2, 0.6)
        b = table.new_node(KIND_LEAF, 0.1, 0.3)
        c = table.new_node(KIND_LEAF, 0.4, 0.9)
        disj = table.new_node(KIND_IND_OR)
        table.attach_children(disj, [b, c])
        root = table.new_node(KIND_IND_AND)
        table.attach_children(root, [a, disj])
        return table, a, b, c, disj, root

    def test_append_and_edges_are_contiguous(self):
        table, a, b, c, disj, root = self.build_small_dag()
        assert len(table) == 5
        assert table.children_of(disj) == [b, c]
        assert table.children_of(root) == [a, disj]
        assert table.child(root, 1) == disj
        # Out-edges of one node occupy one contiguous range.
        start = table.child_start[root]
        assert list(table.edge_child[start : start + 2]) == [a, disj]

    def test_levels_satisfy_the_invariant(self):
        table, a, b, c, disj, root = self.build_small_dag()
        assert table.level[disj] > max(table.level[b], table.level[c])
        assert table.level[root] > max(table.level[a], table.level[disj])

    def test_level_lifting_cascades_through_existing_parents(self):
        # Attaching a high-level child to a node that already has parents
        # must lift the whole ancestor chain (the in-place ⊙ expansion case).
        table, a, b, c, disj, root = self.build_small_dag()
        deep = table.new_node(KIND_IND_AND)
        table.attach_children(deep, [root])
        former_leaf = a  # mutate the leaf into an inner node, like expand_leaf
        table.kind[former_leaf] = KIND_DET_OR
        tall = table.new_node(KIND_IND_AND)
        table.attach_children(tall, [b])
        table.level[tall] = 7  # simulate an interned, already-deep child
        table.attach_children(former_leaf, [tall, c], weights=[0.5, 0.5])
        assert table.level[former_leaf] > table.level[tall]
        assert table.level[root] > table.level[former_leaf]
        assert table.level[deep] > table.level[root]

    def test_refresh_one_matches_combine_bounds(self):
        table, a, b, c, disj, root = self.build_small_dag()
        table.refresh_all_bounds(vectorize=False)

        class Node:
            def __init__(self, lower, upper):
                self.lower = lower
                self.upper = upper

        children = [Node(0.1, 0.3), Node(0.4, 0.9)]
        expected = combine_bounds("ind_or", children, None)
        assert (table.lower[disj], table.upper[disj]) == expected
        conj = [Node(0.2, 0.6), Node(*expected)]
        assert (table.lower[root], table.upper[root]) == combine_bounds("ind_and", conj, None)

    def test_influence_matches_det_or_weights_and_ind_midpoints(self):
        table, a, b, c, disj, root = self.build_small_dag()
        table.refresh_all_bounds(vectorize=False)
        weighted = table.new_node(KIND_DET_OR)
        table.attach_children(weighted, [a, disj], weights=[0.25, 0.75])
        assert table.influence(weighted, 0) == 0.25
        assert table.influence(weighted, 1) == 0.75
        # ⊗ influence on slot 0 is the product of the *other* midpoints.
        mid_disj = 0.5 * (table.lower[disj] + table.upper[disj])
        assert table.influence(root, 0) == mid_disj

    def test_pickle_roundtrip_preserves_every_column(self):
        table, *_ = self.build_small_dag()
        clone = pickle.loads(pickle.dumps(table))
        assert column_fingerprint(clone) == column_fingerprint(table)
        assert clone.vectorize == table.vectorize

    def test_open_leaf_influences_sums_shared_paths(self):
        # One leaf reachable through two paths must appear once, with the
        # summed path weight.
        table = NodeTable(vectorize=False)
        leaf = table.new_node(KIND_LEAF, 0.2, 0.8)
        left = table.new_node(KIND_DET_OR)
        table.attach_children(left, [leaf], weights=[0.5])
        right = table.new_node(KIND_DET_OR)
        table.attach_children(right, [leaf], weights=[0.25])
        root = table.new_node(KIND_DET_OR)
        table.attach_children(root, [left, right], weights=[1.0, 1.0])
        found = table.open_leaf_influences(root, 1.0)
        assert found == [(leaf, 0.75)]
        # A closed leaf (degenerate bracket) is not refinable frontier.
        table.lower[leaf] = table.upper[leaf] = 0.5
        assert table.open_leaf_influences(root, 1.0) == []


# ---------------------------------------------------------------------------
# properties: build/propagation equivalence under arbitrary interleavings
# ---------------------------------------------------------------------------


class TestPropagationProperties:
    @given(family_with_interleaving())
    @settings(max_examples=40, deadline=None)
    def test_level_invariant_survives_interleavings(self, family):
        members, probabilities, schedule = family
        store, _ = build_and_refine(members, probabilities, schedule, vectorize=False)
        table = store.table
        for edge in range(len(table.edge_child)):
            parent = table.edge_parent[edge]
            child = table.edge_child[edge]
            assert table.level[parent] > table.level[child]

    @given(family_with_interleaving())
    @settings(max_examples=40, deadline=None)
    def test_vectorized_and_scalar_tables_are_bit_identical(self, family):
        members, probabilities, schedule = family
        scalar_store, scalar_views = build_and_refine(
            members, probabilities, schedule, vectorize=False
        )
        vector_store, vector_views = build_and_refine(
            members, probabilities, schedule, vectorize=True
        )
        assert column_fingerprint(scalar_store.table) == column_fingerprint(
            vector_store.table
        )
        assert scalar_store.steps == vector_store.steps
        for scalar_view, vector_view in zip(scalar_views, vector_views):
            assert scalar_view.bounds() == vector_view.bounds()
            assert scalar_view.steps == vector_view.steps

    @given(family_with_interleaving())
    @settings(max_examples=30, deadline=None)
    def test_refresh_all_bounds_is_idempotent_on_both_backends(self, family):
        members, probabilities, schedule = family
        store, _ = build_and_refine(members, probabilities, schedule, vectorize=False)
        before = column_fingerprint(store.table)
        store.table.refresh_all_bounds(vectorize=False)
        assert column_fingerprint(store.table) == before
        store.table.refresh_all_bounds(vectorize=True)  # scalar without NumPy
        assert column_fingerprint(store.table) == before

    @given(family_with_interleaving())
    @settings(max_examples=30, deadline=None)
    def test_bounds_stay_sound_and_monotone_along_the_schedule(self, family):
        members, probabilities, schedule = family
        store = SharedLineageStore(vectorize=False)
        for dnf in members:
            store.add_probabilities(dnf, probabilities)
        views = [SharedDTree(store, dnf) for dnf in members]
        truths = [dnf_probability_enumeration(dnf, probabilities) for dnf in members]
        brackets = [view.bounds() for view in views]
        for index, steps in schedule:
            views[index].refine(steps)
            for position, view in enumerate(views):
                lower, upper = view.bounds()
                previous_lower, previous_upper = brackets[position]
                assert lower >= previous_lower - TOLERANCE
                assert upper <= previous_upper + TOLERANCE
                assert lower - TOLERANCE <= truths[position] <= upper + TOLERANCE
                brackets[position] = (lower, upper)

    @given(lineage_family())
    @settings(max_examples=30, deadline=None)
    def test_closure_is_bit_identical_to_the_per_tuple_dtree(self, family):
        members, probabilities = family
        for vectorize in (False, True):
            store = SharedLineageStore(vectorize=vectorize)
            for dnf in members:
                store.add_probabilities(dnf, probabilities)
            for dnf in members:
                view = SharedDTree(store, dnf)
                view.refine(None)
                assert view.is_exact
                reference = refine_to_budget(
                    DTree(dnf, probabilities), epsilon=0.0, max_steps=None
                ).probability
                assert view.result().probability == reference


# ---------------------------------------------------------------------------
# backend wiring
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_vectorize_flag_requires_numpy(self):
        table = NodeTable(vectorize=True)
        assert table.vectorize == HAS_NUMPY
        assert NodeTable(vectorize=False).vectorize is False

    def test_kind_codes_are_distinct_and_stable(self):
        codes = [KIND_CLOSED, KIND_LEAF, KIND_IND_AND, KIND_IND_OR, KIND_DET_OR]
        assert codes == [0, 1, 2, 3, 4]

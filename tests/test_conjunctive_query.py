"""Tests for the conjunctive query model."""

import pytest

from repro.errors import QueryError, UnsupportedQueryError
from repro.algebra.expressions import Comparison, Conjunction, TruePredicate, conjunction_of
from repro.query.conjunctive import Atom, ConjunctiveQuery


def make_query(projection=("odate",)):
    return ConjunctiveQuery(
        "Q",
        [
            Atom("Cust", ["ckey", "cname"]),
            Atom("Ord", ["okey", "ckey", "odate"]),
            Atom("Item", ["okey", "discount", "ckey"]),
        ],
        projection=projection,
        selections=conjunction_of(
            [Comparison("cname", "=", "Joe"), Comparison("discount", ">", 0)]
        ),
    )


class TestAtom:
    def test_str(self):
        assert str(Atom("Cust", ["ckey", "cname"])) == "Cust(ckey, cname)"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(QueryError):
            Atom("T", ["a", "a"])

    def test_with_attributes(self):
        assert Atom("T", ["a"]).with_attributes(["a", "b"]).attributes == ("a", "b")


class TestConstruction:
    def test_requires_atoms(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("Q", [])

    def test_rejects_self_joins(self):
        with pytest.raises(UnsupportedQueryError):
            ConjunctiveQuery("Q", [Atom("R", ["a"]), Atom("R", ["b"])])

    def test_projection_must_exist(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("Q", [Atom("R", ["a"])], projection=["missing"])

    def test_selection_attributes_must_exist(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                "Q", [Atom("R", ["a"])], selections=Comparison("missing", "=", 1)
            )

    def test_str_rendering(self):
        query = make_query()
        text = str(query)
        assert "Cust(" in text and "odate" in text and "Joe" in text


class TestAccessors:
    def test_join_attributes(self):
        assert make_query().join_attributes() == {"ckey", "okey"}

    def test_atoms_with(self):
        assert {a.table for a in make_query().atoms_with("okey")} == {"Ord", "Item"}

    def test_attributes_of_unknown_table(self):
        with pytest.raises(QueryError):
            make_query().atom_of("Missing")

    def test_is_boolean(self):
        assert not make_query().is_boolean()
        assert make_query(projection=()).is_boolean()

    def test_selections_on(self):
        query = make_query()
        assert isinstance(query.selections_on("Ord"), TruePredicate)
        assert query.selections_on("Cust") == Comparison("cname", "=", "Joe")

    def test_selection_predicates_single(self):
        query = ConjunctiveQuery(
            "Q", [Atom("R", ["a"])], selections=Comparison("a", "=", 1)
        )
        assert query.selection_predicates() == [Comparison("a", "=", 1)]

    def test_uncovered_selections(self):
        query = ConjunctiveQuery(
            "Q",
            [Atom("R", ["a"]), Atom("S", ["a", "b"])],
            selections=Conjunction([Comparison("a", "=", 1), Comparison("b", "=", 2)]),
        )
        assert query.uncovered_selections() == []
        spanning = ConjunctiveQuery(
            "Q2",
            [Atom("R", ["a", "x"]), Atom("S", ["a", "b"])],
            selections=Conjunction([Comparison("x", "=", 1) | Comparison("b", "=", 2)]),
        )
        assert len(spanning.uncovered_selections()) == 1


class TestDerivedQueries:
    def test_boolean_version(self):
        boolean = make_query().boolean_version()
        assert boolean.is_boolean()
        assert boolean.name == "B(Q)"
        assert boolean.selections == make_query().selections

    def test_with_projection(self):
        query = make_query().with_projection(["odate", "ckey"])
        assert query.projection == ("odate", "ckey")

    def test_with_atoms(self):
        base = ConjunctiveQuery(
            "base",
            [Atom("Cust", ["ckey", "cname"]), Atom("Ord", ["okey", "ckey", "odate"])],
            projection=["odate"],
        )
        query = base.with_atoms(
            [Atom("Cust", ["ckey", "cname"]), Atom("Ord", ["okey", "ckey", "odate", "ostatus"])]
        )
        assert "ostatus" in query.attributes_of("Ord")

    def test_restricted_to(self):
        restricted = make_query().restricted_to(["Cust", "Ord"])
        assert restricted.table_names() == ["Cust", "Ord"]
        assert restricted.projection == ("odate",)
        # The Item-only selection disappears with the Item atom.
        assert restricted.selections == Comparison("cname", "=", "Joe")

    def test_restricted_to_empty_rejected(self):
        with pytest.raises(QueryError):
            make_query().restricted_to(["Nope"])

"""Tests for the safe-plan baseline (Dalvi–Suciu plans, MystiQ evaluator)."""

import pytest

from repro.errors import NumericalError, UnsafePlanError
from repro import Atom, ConjunctiveQuery, MystiqEngine, ProbabilisticDatabase
from repro.safeplans.safe_plan import build_safe_plan, has_safe_plan, safe_plan_description
from repro.storage import Relation, Schema
from repro.storage.catalog import FunctionalDependency

from helpers import assert_confidences_close, build_paper_database, paper_query


def hard_query():
    return ConjunctiveQuery(
        "Qprime",
        [
            Atom("Cust", ["ckey", "cname"]),
            Atom("Ord", ["okey", "ckey", "odate"]),
            Atom("Item", ["okey", "discount"]),
        ],
        projection=["odate"],
    )


class TestSafePlanConstruction:
    def test_paper_query_has_safe_plan(self):
        assert has_safe_plan(paper_query())

    def test_hard_query_has_none_without_fds(self):
        assert not has_safe_plan(hard_query())
        with pytest.raises(UnsafePlanError):
            build_safe_plan(hard_query())

    def test_hard_query_safe_with_fd(self):
        fds = [FunctionalDependency("Ord", ["okey"], ["ckey", "odate"])]
        assert has_safe_plan(hard_query(), fds)
        plan = build_safe_plan(hard_query(), fds)
        assert set(plan.tables()) == {"Cust", "Ord", "Item"}

    def test_plan_shape_matches_fig2(self):
        # Fig. 2: the deepest independent project joins Ord and Item on ckey, okey.
        plan = build_safe_plan(paper_query())
        assert plan.kind == "project-join"
        inner = [child for child in plan.children if child.kind == "project-join"]
        assert len(inner) == 1
        assert set(inner[0].join_attributes) == {"ckey", "okey"}
        assert {child.table for child in plan.children if child.kind == "table"} == {"Cust"}

    def test_description_renders(self):
        text = safe_plan_description(paper_query())
        assert "π^ind" in text and "Cust" in text


class TestMystiqEngine:
    def test_matches_ground_truth_on_paper_example(self, paper_db, paper_q):
        engine = MystiqEngine(paper_db, use_log_aggregation=False)
        result = engine.evaluate(paper_q)
        assert_confidences_close(result.confidences(), {("1995-01-10",): 0.0028}, 1e-9)

    def test_log_aggregation_is_approximate_but_close(self, paper_db, paper_q):
        exact = MystiqEngine(paper_db, use_log_aggregation=False).evaluate(paper_q)
        approximate = MystiqEngine(paper_db, use_log_aggregation=True).evaluate(paper_q)
        exact_value = exact.confidences()[("1995-01-10",)]
        approximate_value = approximate.confidences()[("1995-01-10",)]
        assert approximate_value == pytest.approx(exact_value, abs=5e-3)

    def test_log_aggregation_fails_on_long_disjunctions(self):
        db = ProbabilisticDatabase("wide")
        rows = [(1, i) for i in range(3000)]
        db.add_table(
            Relation("R", Schema.of("g:int", "x:int"), rows), probabilities=0.99
        )
        query = ConjunctiveQuery("wide", [Atom("R", ["g", "x"])], projection=["g"])
        engine = MystiqEngine(db, use_log_aggregation=True, materialize_temporaries=False)
        with pytest.raises(NumericalError):
            engine.evaluate(query)
        # The exact aggregation handles the same query fine.
        exact = MystiqEngine(db, use_log_aggregation=False, materialize_temporaries=False)
        assert exact.evaluate(query).confidences()[(1,)] == pytest.approx(1.0, abs=1e-9)

    def test_unsafe_query_rejected(self, paper_db):
        # Without the Ord key FD the hard query admits no safe plan.
        fresh = ProbabilisticDatabase("no-keys")
        base = build_paper_database()
        for name in ("Cust", "Ord", "Item"):
            table = base.table(name)
            fresh.add_table(
                table.relation.project(list(table.data_schema.names)), probabilities=0.5, name=name
            )
        engine = MystiqEngine(fresh)
        with pytest.raises(UnsafePlanError):
            engine.evaluate(hard_query())

    def test_materialised_temporaries_give_same_result(self, paper_db, paper_q):
        direct = MystiqEngine(paper_db, use_log_aggregation=False, materialize_temporaries=False)
        spooled = MystiqEngine(paper_db, use_log_aggregation=False, materialize_temporaries=True)
        assert_confidences_close(
            spooled.evaluate(paper_q).confidences(), direct.evaluate(paper_q).confidences()
        )

    def test_result_metadata(self, paper_db, paper_q):
        result = MystiqEngine(paper_db, use_log_aggregation=False).evaluate(paper_q)
        assert result.plan_style == "mystiq"
        assert result.rows_processed > 0
        assert set(result.join_order) == {"Cust", "Ord", "Item"}

"""Tests for query signatures: derivation, 1scan property, scans, covers."""

import pytest

from repro.errors import QueryError
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.signature import (
    ConcatSig,
    StarSig,
    TableSig,
    aggregate_starred_table,
    has_one_scan_property,
    minimal_cover,
    num_scans,
    one_scan_tree,
    parse_signature,
    replace_with_leftmost_table,
    restrict_signature,
    signature_of_query,
    sort_table_order,
    starred_tables,
)
from repro.storage.catalog import FunctionalDependency


INTRO_FDS = [
    FunctionalDependency("Ord", ["okey"], ["ckey", "odate"]),
    FunctionalDependency("Cust", ["ckey"], ["cname"]),
]


def intro_query():
    return ConjunctiveQuery(
        "Q",
        [
            Atom("Cust", ["ckey", "cname"]),
            Atom("Ord", ["okey", "ckey", "odate"]),
            Atom("Item", ["okey", "discount", "ckey"]),
        ],
        projection=["odate"],
    )


class TestParsing:
    @pytest.mark.parametrize(
        "text",
        [
            "R",
            "R*",
            "R* S*",
            "(Cust (Ord Item*)*)*",
            "(Cust* (Ord* Item*)*)*",
            "(R1 (R2 R3*)* (R4 R5*)*)*",
            "Nation1 Supp (Nation2 (Cust (Ord Item*)*)*)*",
        ],
    )
    def test_roundtrip(self, text):
        signature = parse_signature(text)
        assert parse_signature(str(signature)) == signature

    def test_nested_star_collapses(self):
        assert parse_signature("(R*)*") == parse_signature("R*")

    def test_unbalanced_rejected(self):
        with pytest.raises(QueryError):
            parse_signature("(R S*")
        with pytest.raises(QueryError):
            parse_signature("R)")
        with pytest.raises(QueryError):
            parse_signature("*R")

    def test_tables_in_order(self):
        assert parse_signature("(Cust (Ord Item*)*)*").tables() == ["Cust", "Ord", "Item"]


class TestDerivation:
    def test_intro_query_without_fds(self):
        # Example III.2: (Cust*(Ord*Item*)*)* without key constraints, when the
        # base tables carry more attributes than the query mentions (the
        # paper's atoms are written Cust(ckey, ..) etc.).
        full_schemas = {
            "Cust": ["ckey", "cname", "caddress"],
            "Ord": ["okey", "ckey", "odate", "opriority"],
            "Item": ["okey", "discount", "ckey", "lcomment"],
        }
        signature = signature_of_query(intro_query(), table_attributes=full_schemas)
        assert str(signature) == "(Cust* (Ord* Item*)*)*"
        # With only the query's own attributes, the visible attributes of Ord
        # are covered by the group (the A -> V P dependency of the data model
        # makes them a key), so its star can soundly be dropped.
        assert str(signature_of_query(intro_query())) == "(Cust* (Ord Item*)*)*"

    def test_intro_query_with_keys(self):
        # Example III.2 refined by the keys: (Cust(Ord Item*)*)*.
        signature = signature_of_query(intro_query(), fds=INTRO_FDS)
        assert str(signature) == "(Cust (Ord Item*)*)*"

    def test_boolean_product_query(self):
        query = ConjunctiveQuery("prod", [Atom("R", ["a"]), Atom("S", ["b"])])
        assert str(signature_of_query(query)) == "R* S*"

    def test_single_table(self):
        query = ConjunctiveQuery("one", [Atom("R", ["a", "b"])], projection=["a"])
        assert str(signature_of_query(query)) == "R*"

    def test_full_table_attributes_prevent_star_drop(self):
        # With the full base-table schema known, a table whose extra columns
        # are not determined keeps its star.
        query = intro_query()
        signature = signature_of_query(
            query,
            fds=INTRO_FDS,
            table_attributes={"Item": ["okey", "discount", "ckey", "comment"]},
        )
        assert str(signature) == "(Cust (Ord Item*)*)*"


class TestOneScanProperty:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("(Cust (Ord Item*)*)*", True),
            ("(Cust* (Ord* Item*)*)*", False),
            ("R* S*", True),
            ("Nation1 Supp (Nation2 (Cust (Ord Item*)*)*)*", True),
            ("R", True),
            ("R*", True),
            ("((R S*)* (U W*)*)*", False),
        ],
    )
    def test_examples(self, text, expected):
        # Example V.9 and Definition V.8.
        assert has_one_scan_property(parse_signature(text)) is expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("(Cust (Ord Item*)*)*", 1),
            ("(Cust* (Ord* Item*)*)*", 3),
            ("R* S*", 1),
            ("((R S*)* (U W*)*)*", 2),
        ],
    )
    def test_num_scans(self, text, expected):
        # Example V.11: the unrefined intro signature needs three scans.
        assert num_scans(parse_signature(text)) == expected


class TestTransformations:
    def test_aggregate_starred_table(self):
        signature = parse_signature("(Cust* (Ord* Item*)*)*")
        after = aggregate_starred_table(signature, "Ord")
        assert str(after) == "(Cust* (Ord Item*)*)*"

    def test_starred_tables(self):
        assert starred_tables(parse_signature("(Cust* (Ord* Item*)*)*")) == ["Cust", "Ord", "Item"]
        assert starred_tables(parse_signature("(Cust (Ord Item*)*)*")) == ["Item"]

    def test_restrict_signature(self):
        signature = parse_signature("(Cust* (Ord* Item*)*)*")
        assert str(restrict_signature(signature, ["Ord", "Item"])) == "(Ord* Item*)*"
        assert str(restrict_signature(signature, ["Cust"])) == "Cust*"
        assert restrict_signature(signature, ["Nope"]) is None

    def test_replace_with_leftmost(self):
        signature = parse_signature("(Cust (Ord Item*)*)*")
        replaced = replace_with_leftmost_table(signature, ["Ord", "Item"])
        assert str(replaced) == "(Cust Ord)*"
        replaced_all = replace_with_leftmost_table(signature, ["Cust", "Ord", "Item"])
        assert str(replaced_all) == "Cust"

    def test_minimal_cover(self):
        # Example III.4.
        signature = parse_signature("(Cust* (Ord* Item*)*)*")
        assert str(minimal_cover(signature, ["Ord", "Item"])) == "(Ord* Item*)*"
        assert str(minimal_cover(signature, ["Cust", "Ord"])) == str(signature)
        with pytest.raises(QueryError):
            minimal_cover(signature, ["Nope"])
        with pytest.raises(QueryError):
            minimal_cover(signature, [])


class TestOneScanTree:
    def test_intro_signature_is_a_path(self):
        # Example V.12: 1scanTree (Cust, Ord, Item); sort order follows it.
        signature = parse_signature("(Cust (Ord Item*)*)*")
        forest = one_scan_tree(signature)
        assert len(forest) == 1
        assert str(forest[0]) == "Cust(Ord(Item))"
        assert sort_table_order(signature) == ["Cust", "Ord", "Item"]

    def test_branching_signature(self):
        # Example V.12: (R1(R2R3*)*(R4R5*)*)* serialises as R1(R2(R3), R4(R5)).
        signature = parse_signature("(R1 (R2 R3*)* (R4 R5*)*)*")
        forest = one_scan_tree(signature)
        assert str(forest[0]) == "R1(R2(R3), R4(R5))"
        assert sort_table_order(signature) == ["R1", "R2", "R3", "R4", "R5"]

    def test_product_signature_gives_forest(self):
        forest = one_scan_tree(parse_signature("R* S*"))
        assert [node.table for node in forest] == ["R", "S"]

    def test_non_1scan_rejected(self):
        with pytest.raises(QueryError):
            one_scan_tree(parse_signature("(Cust* (Ord* Item*)*)*"))

    def test_sort_order_for_non_1scan_signature(self):
        order = sort_table_order(parse_signature("(Cust* (Ord* Item*)*)*"))
        assert order == ["Cust", "Ord", "Item"]


class TestEqualityAndStructure:
    def test_equality_by_structure(self):
        assert parse_signature("(R S*)*") == StarSig(
            ConcatSig([TableSig("R"), StarSig(TableSig("S"))])
        )

    def test_concat_flattening(self):
        nested = ConcatSig([TableSig("A"), ConcatSig([TableSig("B"), TableSig("C")])])
        assert str(nested) == "A B C"

    def test_single_part_concat_collapses(self):
        assert ConcatSig([TableSig("A")]) == TableSig("A")

    def test_table_set(self):
        assert parse_signature("(R S*)*").table_set() == frozenset({"R", "S"})

"""Tests for the iterator-model plan operators (scan/select/project/joins/...)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NumericalError, QueryError
from repro.algebra.aggregate import AggregateSpec, GroupByOp, mystiq_log_prob_or, prob_or
from repro.algebra.expressions import Comparison
from repro.algebra.joins import HashJoinOp, MergeJoinOp, NestedLoopJoinOp, natural_join_attributes
from repro.algebra.operators import MaterializedOp, ProjectOp, RenameOp, ScanOp, SelectOp
from repro.algebra.plan import count_operators, execute, explain, walk
from repro.algebra.sort import DistinctOp, SortOp
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def customers():
    return Relation(
        "Cust", Schema.of("ckey:int", "cname:str"), [(1, "Joe"), (2, "Dan"), (3, "Li")]
    )


@pytest.fixture
def orders():
    return Relation(
        "Ord",
        Schema.of("okey:int", "ckey:int", "total:float"),
        [(10, 1, 5.0), (11, 1, 7.5), (12, 2, 1.0), (13, 9, 2.0)],
    )


class TestBasicOperators:
    def test_scan(self, customers):
        scan = ScanOp(customers)
        assert list(scan) == customers.rows
        assert scan.rows_out == 3
        assert "Scan" in scan.label()

    def test_select(self, customers):
        select = SelectOp(ScanOp(customers), Comparison("cname", "=", "Joe"))
        assert list(select) == [(1, "Joe")]

    def test_project(self, customers):
        project = ProjectOp(ScanOp(customers), ["cname"])
        assert list(project) == [("Joe",), ("Dan",), ("Li",)]
        assert project.schema.names == ("cname",)

    def test_rename(self, customers):
        rename = RenameOp(ScanOp(customers), {"cname": "name"})
        assert rename.schema.names == ("ckey", "name")
        assert list(rename) == customers.rows

    def test_materialized(self, customers):
        op = MaterializedOp(customers, label="Temp")
        assert list(op) == customers.rows
        assert "Temp" in op.label()

    def test_to_relation_and_rows_processed(self, customers):
        plan = SelectOp(ScanOp(customers), Comparison("ckey", "<", 3))
        relation = plan.to_relation("filtered")
        assert len(relation) == 2
        assert plan.total_rows_processed() == 3 + 2


class TestJoins:
    def test_natural_join_attributes(self, customers, orders):
        assert natural_join_attributes(customers.schema, orders.schema) == ["ckey"]

    @pytest.mark.parametrize("join_class", [HashJoinOp, MergeJoinOp, NestedLoopJoinOp])
    def test_join_variants_agree(self, join_class, customers, orders):
        join = join_class(ScanOp(customers), ScanOp(orders))
        rows = sorted(join, key=repr)
        assert len(rows) == 3  # ckey 9 has no customer
        assert join.schema.names == ("ckey", "cname", "okey", "total")
        reference = sorted(HashJoinOp(ScanOp(customers), ScanOp(orders)), key=repr)
        assert rows == reference

    def test_join_on_explicit_attributes(self, customers, orders):
        join = HashJoinOp(ScanOp(orders), ScanOp(customers), on=["ckey"])
        assert len(list(join)) == 3

    def test_cross_product_with_empty_on(self, customers):
        regions = Relation("Region", Schema.of("rkey:int"), [(1,), (2,)])
        join = HashJoinOp(ScanOp(customers), ScanOp(regions), on=[])
        assert len(list(join)) == len(customers) * 2

    def test_null_join_keys_do_not_match(self):
        left = Relation("L", Schema.of("k:int", "x:str"), [(None, "a"), (1, "b")])
        right = Relation("R", Schema.of("k:int", "y:str"), [(None, "c"), (1, "d")])
        assert list(HashJoinOp(ScanOp(left), ScanOp(right))) == [(1, "b", "d")]

    def test_merge_join_requires_keys(self, customers, orders):
        with pytest.raises(QueryError):
            MergeJoinOp(ScanOp(customers), ScanOp(customers.renamed({"ckey": "x", "cname": "y"})))

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=30),
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_join_equivalence_property(self, left_rows, right_rows):
        left = Relation("L", Schema.of("k:int", "a:int"), left_rows)
        right = Relation("R", Schema.of("k:int", "b:int"), right_rows)
        variants = [
            sorted(cls(ScanOp(left), ScanOp(right), on=["k"]), key=repr)
            for cls in (HashJoinOp, MergeJoinOp, NestedLoopJoinOp)
        ]
        assert variants[0] == variants[1] == variants[2]


class TestAggregation:
    def test_prob_or(self):
        assert prob_or([0.5, 0.5]) == pytest.approx(0.75)
        assert prob_or([]) == 0.0

    def test_mystiq_log_prob_close_to_exact_for_small_inputs(self):
        exact = prob_or([0.2, 0.3])
        approximate = mystiq_log_prob_or([0.2, 0.3])
        assert approximate == pytest.approx(exact, abs=5e-3)

    def test_mystiq_log_prob_fails_on_long_disjunctions(self):
        with pytest.raises(NumericalError):
            mystiq_log_prob_or([0.9] * 100_000)

    def test_group_by(self, orders):
        group = GroupByOp(
            ScanOp(orders),
            ["ckey"],
            [
                AggregateSpec("count", "okey", "n"),
                AggregateSpec("sum", "total", "total_sum"),
                AggregateSpec("min", "okey", "first_okey"),
            ],
        )
        result = {row[0]: row[1:] for row in group}
        assert result[1] == (2, 12.5, 10)
        assert result[2] == (1, 1.0, 12)
        assert group.schema.names == ("ckey", "n", "total_sum", "first_okey")

    def test_group_by_preserves_roles(self):
        from repro.storage.schema import Attribute, ColumnRole

        schema = Schema(
            [
                Attribute("g:str".split(":")[0], "str"),
                Attribute("T.V", "int", ColumnRole.VAR, source="T"),
                Attribute("T.P", "float", ColumnRole.PROB, source="T"),
            ]
        )
        relation = Relation("t", schema, [("a", 1, 0.5), ("a", 2, 0.5)])
        group = GroupByOp(
            MaterializedOp(relation),
            ["g"],
            [AggregateSpec("min", "T.V", "T.V"), AggregateSpec("prob", "T.P", "T.P")],
        )
        output = group.to_relation()
        assert output.schema["T.V"].role is ColumnRole.VAR
        assert output.rows == [("a", 1, 0.75)]

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            AggregateSpec("median", "a", "m")


class TestSortDistinct:
    def test_sort(self, orders):
        ordered = list(SortOp(ScanOp(orders), ["total"]))
        assert [row[2] for row in ordered] == [1.0, 2.0, 5.0, 7.5]

    def test_sort_spills(self, orders):
        op = SortOp(ScanOp(orders), ["total"], max_rows_in_memory=2)
        assert len(list(op)) == 4
        assert op.sort_stats.runs_spilled >= 1

    def test_distinct(self):
        relation = Relation("t", Schema.of("a:int"), [(1,), (2,), (1,)])
        assert list(DistinctOp(ScanOp(relation))) == [(1,), (2,)]


class TestPlanUtilities:
    def test_execute_and_explain(self, customers, orders):
        plan = ProjectOp(HashJoinOp(ScanOp(customers), ScanOp(orders)), ["cname", "total"])
        result = execute(plan, "answer")
        assert len(result) == 3
        assert result.rows_processed > 0
        text = explain(plan)
        assert "HashJoin" in text and "Scan" in text

    def test_walk_and_count(self, customers, orders):
        plan = HashJoinOp(ScanOp(customers), ScanOp(orders))
        assert len(list(walk(plan))) == 3
        assert count_operators(plan, lambda op: isinstance(op, ScanOp)) == 2

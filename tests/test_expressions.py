"""Tests for scalar predicate expressions."""

import pytest

from repro.errors import QueryError
from repro.algebra.expressions import (
    AttributeComparison,
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    TruePredicate,
    conjunction_of,
)
from repro.storage.schema import Schema


SCHEMA = Schema.of("a:int", "b:int", "name:str")


def both(predicate, row_dict, row_tuple):
    """Evaluate both the dict and the bound positional form."""
    bound = predicate.bind(SCHEMA)
    return predicate.evaluate(row_dict), bound(row_tuple)


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 5, True),
            ("!=", 5, False),
            ("<", 6, True),
            ("<=", 5, True),
            (">", 5, False),
            (">=", 5, True),
        ],
    )
    def test_operators(self, op, value, expected):
        predicate = Comparison("a", op, value)
        evaluated, bound = both(predicate, {"a": 5, "b": 0, "name": "x"}, (5, 0, "x"))
        assert evaluated is expected and bound is expected

    def test_alias_operators(self):
        assert Comparison("a", "==", 1).op == "="
        assert Comparison("a", "<>", 1).op == "!="

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            Comparison("a", "~", 1)

    def test_null_is_never_matched(self):
        predicate = Comparison("a", "=", 5)
        evaluated, bound = both(predicate, {"a": None, "b": 0, "name": "x"}, (None, 0, "x"))
        assert evaluated is False and bound is False

    def test_attributes_and_equality(self):
        assert Comparison("a", "=", 1).attributes() == frozenset({"a"})
        assert Comparison("a", "=", 1) == Comparison("a", "==", 1)
        assert hash(Comparison("a", "=", 1)) == hash(Comparison("a", "=", 1))


class TestAttributeComparison:
    def test_equality_join_condition(self):
        predicate = AttributeComparison("a", "=", "b")
        assert both(predicate, {"a": 2, "b": 2, "name": ""}, (2, 2, ""))[0]
        assert not both(predicate, {"a": 2, "b": 3, "name": ""}, (2, 3, ""))[1]

    def test_null_never_matches(self):
        predicate = AttributeComparison("a", "<", "b")
        assert not predicate.evaluate({"a": None, "b": 3})

    def test_attributes(self):
        assert AttributeComparison("a", "<", "b").attributes() == frozenset({"a", "b"})


class TestCompound:
    def test_conjunction_and_disjunction(self):
        conjunction = Conjunction([Comparison("a", ">", 0), Comparison("b", "<", 10)])
        disjunction = Disjunction([Comparison("a", ">", 100), Comparison("b", "<", 10)])
        row = {"a": 1, "b": 5, "name": ""}
        assert conjunction.evaluate(row) and disjunction.evaluate(row)
        assert conjunction.bind(SCHEMA)((1, 5, "")) and disjunction.bind(SCHEMA)((1, 5, ""))

    def test_negation(self):
        predicate = Negation(Comparison("a", "=", 1))
        assert predicate.evaluate({"a": 2}) and not predicate.evaluate({"a": 1})
        assert predicate.attributes() == frozenset({"a"})

    def test_operator_overloads(self):
        combined = Comparison("a", ">", 0) & Comparison("b", ">", 0)
        assert isinstance(combined, Conjunction)
        either = Comparison("a", ">", 0) | Comparison("b", ">", 0)
        assert isinstance(either, Disjunction)
        negated = ~Comparison("a", ">", 0)
        assert isinstance(negated, Negation)

    def test_str_forms(self):
        assert "AND" in str(Conjunction([Comparison("a", "=", 1), Comparison("b", "=", 2)]))
        assert "OR" in str(Disjunction([Comparison("a", "=", 1), Comparison("b", "=", 2)]))
        assert str(TruePredicate()) == "true"


class TestConjunctionOf:
    def test_empty_is_true(self):
        assert isinstance(conjunction_of([]), TruePredicate)

    def test_single_part_returned_as_is(self):
        predicate = Comparison("a", "=", 1)
        assert conjunction_of([predicate]) is predicate

    def test_flattens_nested_conjunctions(self):
        nested = Conjunction([Comparison("a", "=", 1), Comparison("b", "=", 2)])
        flat = conjunction_of([nested, Comparison("name", "=", "x")])
        assert isinstance(flat, Conjunction) and len(flat.parts) == 3

    def test_drops_true_predicates(self):
        predicate = conjunction_of([TruePredicate(), Comparison("a", "=", 1)])
        assert predicate == Comparison("a", "=", 1)

"""Tests for heap files, external sort, CSV I/O, and shipped store segments."""

import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageCorruptionError, StorageError
from repro.prob.dtree import canonical_clauses
from repro.prob.formulas import DNF
from repro.prob.sharedag import SharedLineageStore
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.external_sort import SortStats, external_sort, sort_key_for
from repro.storage.heapfile import HeapFile
from repro.storage.relation import Relation
from repro.storage.schema import Schema


class TestHeapFile:
    def test_roundtrip(self, tmp_path):
        schema = Schema.of("a:int", "b:str")
        rows = [(i, f"row{i}") for i in range(100)]
        heap = HeapFile(schema, path=str(tmp_path / "heap.jsonl"), page_size=256)
        written = heap.write_rows(rows)
        assert written == 100
        assert heap.page_count > 1
        assert list(heap.scan()) == rows
        assert heap.stats.pages_read == heap.page_count
        assert heap.stats.tuples_read == 100

    def test_append_across_calls(self, tmp_path):
        heap = HeapFile(Schema.of("a:int"), path=str(tmp_path / "h.jsonl"), page_size=64)
        heap.write_rows([(1,), (2,)])
        heap.write_rows([(3,)])
        assert [row[0] for row in heap.scan()] == [1, 2, 3]
        assert len(heap) == 3

    def test_temporary_file_cleanup(self):
        heap = HeapFile(Schema.of("a:int"))
        path = heap.path
        heap.write_rows([(1,)])
        heap.close()
        assert not os.path.exists(path)
        with pytest.raises(StorageError):
            heap.write_rows([(2,)])

    def test_context_manager(self):
        with HeapFile(Schema.of("a:int")) as heap:
            heap.write_rows([(1,)])
            path = heap.path
        assert not os.path.exists(path)


class TestHeapFileCorruption:
    """Damaged pages must fail loudly, not scan short or leak decode errors.

    PR 10's framing gives every page a ``#P <count> <bytes> <crc32>`` header;
    these tests damage the file at *every* byte position — truncation at
    every boundary, a bit flip at every offset — and demand a structured
    :class:`StorageCorruptionError` each time.  The worst pre-PR behaviours
    were a silent short scan (truncated tail) and a bare
    ``json.JSONDecodeError`` (mid-line damage).
    """

    def _heap(self, tmp_path):
        heap = HeapFile(
            Schema.of("a:int", "b:str"),
            path=str(tmp_path / "heap.jsonl"),
            page_size=128,
        )
        heap.write_rows([(i, f"row{i}") for i in range(40)])
        assert heap.page_count > 1
        return heap

    def test_intact_file_still_round_trips(self, tmp_path):
        heap = self._heap(tmp_path)
        assert list(heap.scan()) == [(i, f"row{i}") for i in range(40)]

    def test_truncation_at_every_byte_boundary(self, tmp_path):
        heap = self._heap(tmp_path)
        blob = open(heap.path, "rb").read()
        for cut in range(len(blob)):
            with open(heap.path, "wb") as handle:
                handle.write(blob[:cut])
            with pytest.raises(StorageCorruptionError):
                list(heap.scan())
        with open(heap.path, "wb") as handle:
            handle.write(blob)
        assert len(list(heap.scan())) == 40

    def test_bit_flip_at_every_offset(self, tmp_path):
        heap = self._heap(tmp_path)
        blob = open(heap.path, "rb").read()
        for position in range(len(blob)):
            flipped = bytes([blob[position] ^ 0xFF])
            with open(heap.path, "wb") as handle:
                handle.write(blob[:position] + flipped + blob[position + 1 :])
            with pytest.raises(StorageCorruptionError):
                list(heap.scan())

    def test_corruption_is_a_storage_error(self, tmp_path):
        # Callers catching the existing StorageError keep working.
        assert issubclass(StorageCorruptionError, StorageError)
        heap = self._heap(tmp_path)
        blob = open(heap.path, "rb").read()
        with open(heap.path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(StorageError):
            list(heap.scan())


class TestExternalSort:
    def test_in_memory_path(self):
        rows = [(3, "c"), (1, "a"), (2, "b")]
        assert list(external_sort(rows, [0])) == sorted(rows)

    def test_spilling_path(self):
        rows = [(i % 17, i) for i in range(500)]
        stats = SortStats()
        result = list(external_sort(rows, [0, 1], max_rows_in_memory=50, stats=stats))
        assert result == sorted(rows)
        assert stats.runs_spilled >= 2
        assert stats.rows_spilled == 500
        # run files are removed once the iterator is exhausted
        assert all(not os.path.exists(path) for path in stats.run_files)

    def test_none_sorts_first(self):
        rows = [(2,), (None,), (1,)]
        assert list(external_sort(rows, [0])) == [(None,), (1,), (2,)]

    def test_mixed_types_do_not_crash(self):
        rows = [("b",), (1,), ("a",), (2,)]
        result = list(external_sort(rows, [0]))
        assert result[0] == (1,) and result[-1] == ("b",)

    @given(st.lists(st.tuples(st.integers(-20, 20), st.integers(-20, 20)), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_builtin_sort(self, rows):
        expected = sorted(rows, key=lambda r: (sort_key_for(r[0]), sort_key_for(r[1])))
        assert list(external_sort(rows, [0, 1], max_rows_in_memory=16)) == expected


class TestSortRunCorruption:
    """Spilled sort runs carry the same loud-failure guarantee as heap pages.

    A run file is ``#R <rows>`` then one ``<crc32hex> <json>`` line per row;
    replaying a damaged or truncated run raises
    :class:`StorageCorruptionError` — a k-way merge that silently merged a
    short run would produce a *wrong sorted result with no error*.
    """

    def _spilled_run(self, tmp_path):
        rows = [(i % 7, i) for i in range(60)]
        stats = SortStats()
        ordered = external_sort(rows, [0, 1], max_rows_in_memory=20, stats=stats)
        first = next(ordered)  # forces the spill + the start of the merge
        assert first == min(rows, key=lambda r: (sort_key_for(r[0]), sort_key_for(r[1])))
        blob = open(stats.run_files[0], "rb").read()
        assert list(ordered)  # exhaust: the iterator removes its run files
        path = tmp_path / "run.jsonl"
        path.write_bytes(blob)
        return str(path), blob

    def test_intact_run_replays(self, tmp_path):
        from repro.storage.external_sort import _read_run

        path, _blob = self._spilled_run(tmp_path)
        assert len(list(_read_run(path))) == 20

    def test_truncation_at_every_byte_boundary(self, tmp_path):
        from repro.storage.external_sort import _read_run

        path, blob = self._spilled_run(tmp_path)
        for cut in range(len(blob)):
            with open(path, "wb") as handle:
                handle.write(blob[:cut])
            with pytest.raises(StorageCorruptionError):
                list(_read_run(path))

    def test_bit_flip_at_every_offset(self, tmp_path):
        from repro.storage.external_sort import _read_run

        path, blob = self._spilled_run(tmp_path)
        for position in range(len(blob)):
            flipped = bytes([blob[position] ^ 0xFF])
            with open(path, "wb") as handle:
                handle.write(blob[:position] + flipped + blob[position + 1 :])
            with pytest.raises(StorageCorruptionError):
                list(_read_run(path))


class TestSegmentRoundTrip:
    """`export_segment`/`from_segment` must preserve the delta registries.

    Lane-shipped segments (the shared-parallel route, `SharedRunTask`) carry
    the whole store across a process boundary; the worker's delta behaviour
    is the driver's only if the PR 7 registries — `_var_index`,
    `_const_vars`, `_leaf_dnf`, `_branch_var` — survive byte-for-byte, not
    just up to semantic equivalence.  Regression guard: rehydration used to
    *replay* the variable index from the other registries, which dropped
    the stale leaf-era entries of expanded rows and reordered the rest.
    """

    def _warm_store(self):
        store = SharedLineageStore()
        probabilities = {v: 0.05 * (v + 3) for v in range(9)}
        # Hierarchical-free chains compile to open leaves (no closed-form
        # decomposition), which is what keeps refinement — and with it the
        # branch/stale-entry registry churn this test pins — alive.
        dnfs = [
            DNF([[0, 1], [1, 2], [2, 3]]),
            DNF([[2, 3], [3, 4], [4, 5]]),
            DNF([[0, 5], [5, 6], [6, 7]]),
            DNF([[6], [7, 8]]),
        ]
        views = []
        for dnf in dnfs:
            store.add_probabilities(dnf, probabilities)
            from repro.prob.sharedag import SharedDTree

            views.append(SharedDTree(store, dnf))
        # Warm the registries past their construction state: expansions pop
        # open leaves, add ⊙ branch entries, and leave stale leaf-era index
        # entries behind — exactly the state a shipped mid-run segment has.
        for _ in range(6):
            if store.refine_most_valuable(views) == 0:
                break
        assert store.steps > 0 and store._branch_var
        return store

    def _rehydrated(self, store):
        # The real shipped path pickles the segment (process boundary);
        # round-tripping through bytes also proves nothing in the segment
        # aliases unpicklable or salted state.
        return SharedLineageStore.from_segment(
            pickle.loads(pickle.dumps(store.export_segment()))
        )

    def test_registries_survive_byte_for_byte(self):
        store = self._warm_store()
        rebuilt = self._rehydrated(store)
        assert rebuilt._var_index == store._var_index
        assert list(rebuilt._var_index) == list(store._var_index)  # key order
        assert rebuilt._const_vars == store._const_vars
        assert list(rebuilt._const_vars) == list(store._const_vars)
        assert rebuilt._branch_var == store._branch_var
        assert list(rebuilt._branch_var) == list(store._branch_var)
        assert list(rebuilt._leaf_dnf) == list(store._leaf_dnf)
        for nid, dnf in store._leaf_dnf.items():
            assert canonical_clauses(rebuilt._leaf_dnf[nid]) == canonical_clauses(dnf)
        assert rebuilt.probabilities == store.probabilities
        assert rebuilt.steps == store.steps
        assert rebuilt.node_count == store.node_count
        assert rebuilt.retired_nodes == store.retired_nodes
        assert rebuilt.table.bounds_fingerprint() == store.table.bounds_fingerprint()

    def test_delta_updates_match_after_round_trip(self):
        store = self._warm_store()
        rebuilt = self._rehydrated(store)
        for variable, probability in ((1, 0.9), (4, 0.01), (8, 0.42)):
            original = store.update_probability(variable, probability)
            shipped = rebuilt.update_probability(variable, probability)
            assert shipped.reseeded == original.reseeded
            assert shipped.touched == original.touched
        assert rebuilt.table.bounds_fingerprint() == store.table.bounds_fingerprint()


class TestSortKey:
    def test_total_order_over_mixed_values(self):
        values = [None, True, 0, 2.5, "abc", "ab"]
        ordered = sorted(values, key=sort_key_for)
        assert ordered[0] is None
        assert ordered[-1] == "abc"


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        schema = Schema.of("a:int", "b:str", "c:float", "flag:bool")
        relation = Relation(
            "t", schema, [(1, "x", 1.5, True), (2, "y", -3.0, False), (3, None, None, None)]
        )
        path = str(tmp_path / "t.csv")
        write_csv(relation, path)
        loaded = read_csv(path, schema, name="t")
        assert loaded == relation

    def test_header_mismatch(self, tmp_path):
        path = str(tmp_path / "t.csv")
        write_csv(Relation("t", Schema.of("a:int"), [(1,)]), path)
        with pytest.raises(StorageError):
            read_csv(path, Schema.of("b:int"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StorageError):
            read_csv(str(path), Schema.of("a:int"))

    def test_bad_arity(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(StorageError):
            read_csv(str(path), Schema.of("a:int", "b:int"))

"""The concurrent query service: unit, HTTP transport, and determinism tests.

The load-bearing test is the concurrency stress
(:class:`TestDeterminismStress`): N asyncio clients fire interleaved
top-k/threshold/evaluate/subscribe/update requests at one live server, then
the *same* requests are replayed one at a time, in admission order, against
a fresh server over the same database — and every response payload must be
bit-identical (decided sets, confidences, bounds, step counts, sequence
numbers, subscription ids).  That is the service's determinism contract:
concurrency changes when a request runs, never what it computes.
"""

import asyncio

import pytest

from repro.errors import PlanningError, ServiceError, ServiceOverloadedError
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    arequest,
)
from repro.service.__main__ import demo_database

SQL = "SELECT room, conf() FROM alarm, uplink, zone_ok"


@pytest.fixture
def service():
    with QueryService(demo_database()) as svc:
        yield svc


@pytest.fixture
def server():
    with ServiceServer(QueryService(demo_database())) as srv:
        yield srv


class TestServiceCore:
    def test_topk_round_trip_and_warm_reuse(self, service):
        cold = service.execute("topk", {"sql": SQL, "k": 2})
        assert cold["kind"] == "topk"
        assert cold["decided"] is True
        assert cold["seq"] == 0
        assert len(cold["rows"]) == 2
        assert cold["refine_steps"] > 0
        warm = service.execute("topk", {"sql": SQL, "k": 2})
        # The shared store is warm: the repeat costs zero logical steps.
        assert warm["refine_steps"] == 0
        assert warm["seq"] == 1
        assert warm["rows"] == cold["rows"]

    def test_matches_the_engine_directly(self, service):
        from repro.query.parser import parse_query
        from repro.sprout.engine import SproutEngine

        served = service.execute("evaluate", {"sql": SQL})
        db = demo_database()
        direct = SproutEngine(db, workers=0).evaluate(parse_query(SQL, db.catalog).query)
        assert {
            tuple(row[:-1]): row[-1] for row in served["rows"]
        } == direct.confidences()

    def test_no_wall_clock_fields_in_payloads(self, service):
        payload = service.execute("threshold", {"sql": SQL, "tau": 0.5})
        assert not any("seconds" in key for key in payload)

    def test_unknown_kind_rejected(self, service):
        with pytest.raises(ServiceError):
            service.submit("explode", {})

    def test_request_validation(self, service):
        for kind, params in [
            ("evaluate", {}),  # no sql
            ("evaluate", {"sql": SQL, "epsilon": -0.5}),
            ("topk", {"sql": SQL}),  # no k
            ("topk", {"sql": SQL, "k": 0}),
            ("topk", {"sql": SQL, "k": True}),
            ("topk", {"sql": SQL, "k": 2, "max_steps": -1}),
            ("threshold", {"sql": SQL, "tau": 1.5}),
            ("subscribe", {"sql": SQL}),  # neither k nor tau
            ("subscribe", {"sql": SQL, "k": 1, "tau": 0.5}),  # both
            ("subscription_get", {"subscription": "sub-999"}),
        ]:
            with pytest.raises(ServiceError):
                service.execute(kind, params)

    def test_bad_sql_raises_a_query_error(self, service):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            service.execute("evaluate", {"sql": "DROP TABLE alarm"})

    def test_max_steps_ceiling(self):
        config = ServiceConfig(max_steps_ceiling=10)
        with QueryService(demo_database(), config=config) as svc:
            ok = svc.execute("topk", {"sql": SQL, "k": 1, "max_steps": 10})
            assert ok["kind"] == "topk"
            with pytest.raises(ServiceError):
                svc.execute("topk", {"sql": SQL, "k": 1, "max_steps": 11})

    def test_admission_control_rejects_when_full(self):
        svc = QueryService(demo_database(), config=ServiceConfig(max_pending=2))
        # The lane is deliberately not started: admitted jobs stay queued.
        first = svc.submit("topk", {"sql": SQL, "k": 1})
        second = svc.submit("topk", {"sql": SQL, "k": 1})
        with pytest.raises(ServiceOverloadedError):
            svc.submit("topk", {"sql": SQL, "k": 1})
        assert svc.rejected == 1
        assert svc.admitted == 2
        svc.start()  # the queued work drains and both futures resolve
        assert first.result(timeout=30)["seq"] == 0
        assert second.result(timeout=30)["seq"] == 1
        svc.close()

    def test_closed_service_rejects_submissions(self):
        svc = QueryService(demo_database())
        svc.start()
        svc.close()
        with pytest.raises(ServiceError):
            svc.submit("evaluate", {"sql": SQL})
        svc.close()  # idempotent

    def test_subscription_lifecycle(self, service):
        sub = service.execute("subscribe", {"sql": SQL, "tau": 0.5})
        assert sub["subscription"] == "sub-0"
        assert sub["decided"] is True
        assert sub["variables"]
        selected = sub["selected"]

        got = service.execute("subscription_get", {"subscription": "sub-0"})
        assert got["selected"] == selected

        # Kill the most confident room's first alarm event: the decided set
        # shrinks, and the delta is reported along with the new answer.
        variable = sub["variables"][0]
        moved = service.execute(
            "subscription_update",
            {"subscription": "sub-0", "variable": variable, "probability": 0.01},
        )
        assert moved["report"]["noop"] is False
        assert moved["selected"] != selected or moved["left"] == []

        gone = service.execute("subscription_delete", {"subscription": "sub-0"})
        assert gone["kind"] == "unsubscribe"
        with pytest.raises(ServiceError):
            service.execute("subscription_get", {"subscription": "sub-0"})

    def test_stats_surface(self, service):
        service.execute("topk", {"sql": SQL, "k": 1})
        stats = service.stats()
        assert stats["admitted"] == 1
        assert stats["completed"] == 1
        assert stats["failed"] == 0
        assert stats["cache"]["closed"] is False
        assert stats["store"]["steps"] > 0
        assert stats["store"]["mutations"] > 0
        assert stats["store"]["reset_epoch"] == 0

    def test_config_validation(self):
        with pytest.raises(PlanningError):
            ServiceConfig(max_pending=0)
        with pytest.raises(PlanningError):
            ServiceConfig(max_steps_ceiling=-1)


class TestServiceHTTP:
    def test_healthz_and_stats(self, server):
        client = ServiceClient(server.host, server.port)
        assert client.healthz() == {"ok": True}
        stats = client.stats()
        assert stats["max_pending"] == 32

    def test_query_routes(self, server):
        client = ServiceClient(server.host, server.port)
        topk = client.topk(SQL, k=2)
        assert len(topk["rows"]) == 2 and topk["decided"]
        threshold = client.threshold(SQL, tau=0.5)
        assert all(row[-1] >= 0.5 for row in threshold["rows"])
        evaluated = client.evaluate(SQL)
        assert len(evaluated["rows"]) == 5  # every room, with its confidence

    def test_subscription_routes(self, server):
        client = ServiceClient(server.host, server.port)
        sub = client.subscribe(SQL, tau=0.5)
        sid = sub["subscription"]
        assert client.subscription(sid)["selected"] == sub["selected"]
        assert sid in client.must("GET", "/subscriptions")["subscriptions"]
        update = client.update(sid, variable=sub["variables"][0], probability=0.02)
        assert update["report"]["noop"] is False
        client.unsubscribe(sid)
        status, _ = client.request("GET", f"/subscriptions/{sid}")
        assert status == 400

    def test_http_error_mapping(self, server):
        client = ServiceClient(server.host, server.port)
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("GET", "/evaluate")[0] == 405
        status, payload = client.request("POST", "/evaluate", {"sql": "not sql"})
        assert status == 400 and "error" in payload
        status, payload = client.request("POST", "/topk", {"sql": SQL})
        assert status == 400  # missing k

    def test_overload_maps_to_429(self, server, monkeypatch):
        def overloaded(kind, params=None):
            raise ServiceOverloadedError("queue full")

        monkeypatch.setattr(server.service, "submit", overloaded)
        client = ServiceClient(server.host, server.port)
        status, payload = client.request("POST", "/evaluate", {"sql": SQL})
        assert status == 429
        with pytest.raises(ServiceOverloadedError):
            client.evaluate(SQL)

    def test_malformed_http_gets_400(self, server):
        import socket

        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"BOGUS\r\n\r\n")
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]


class TestDeterminismStress:
    """Interleaved execution must be bit-identical to serial replay."""

    CLIENTS = 5
    #: ServiceConfig for the interleaved ("live") server and the serial
    #: replay server.  ``None`` means the service default; the multi-lane
    #: subclass points the live side at a lane pool while replaying serial.
    LIVE_CONFIG = None
    REPLAY_CONFIG = None

    async def _client_script(self, host, port, index, records):
        """One client's conversation; every response is recorded verbatim."""

        async def call(method, path, body=None):
            status, payload = await arequest(host, port, method, path, body)
            assert status == 200, payload
            records.append((payload["seq"], method, path, body, payload))
            return payload

        sub = await call(
            "POST", "/subscribe", {"sql": SQL, "tau": 0.35 + 0.05 * index}
        )
        sid = sub["subscription"]
        await call("POST", "/topk", {"sql": SQL, "k": index % 4 + 1})
        variable = sub["variables"][index % len(sub["variables"])]
        await call(
            "POST",
            f"/subscriptions/{sid}/update",
            {"variable": variable, "probability": round(0.1 + 0.15 * index, 3)},
        )
        await call("POST", "/threshold", {"sql": SQL, "tau": 0.45})
        await call("GET", f"/subscriptions/{sid}")
        await call("POST", "/topk", {"sql": SQL, "k": 2})
        if index % 2:
            await call("DELETE", f"/subscriptions/{sid}")

    def test_interleaved_matches_serial_replay(self):
        records = []
        with ServiceServer(
            QueryService(demo_database(), config=self.LIVE_CONFIG)
        ) as live:

            async def storm():
                await asyncio.gather(
                    *(
                        self._client_script(live.host, live.port, i, records)
                        for i in range(self.CLIENTS)
                    )
                )

            asyncio.run(storm())

        # Admission sequence numbers are dense and unique: the interleaved
        # run admitted every request exactly once, in one global order.
        sequences = sorted(record[0] for record in records)
        assert sequences == list(range(len(records)))

        # Serial replay: the same requests, one at a time, in admission
        # order, against a fresh service over the same database.
        replayed = {}
        with ServiceServer(
            QueryService(demo_database(), config=self.REPLAY_CONFIG)
        ) as replay:
            client = ServiceClient(replay.host, replay.port)
            for seq, method, path, body, _payload in sorted(records):
                replayed[seq] = client.must(method, path, body)

        # Bit-identical: confidences, bounds, decided sets, step counts,
        # subscription ids, and sequence numbers all round-trip exactly.
        concurrent = {seq: payload for seq, _m, _p, _b, payload in records}
        assert replayed == concurrent


class TestMultiLaneDeterminismStress(TestDeterminismStress):
    """The stress battery again, with the live server refining on lanes.

    The interleaved run executes against a ``refine_lanes=2`` service —
    concurrent clients *and* data-parallel refinement rounds inside each
    request — while the serial replay runs on a fully serial
    ``refine_lanes=0`` service.  Every payload must still round-trip
    bit-identically: the lane pool may change thread timing, never
    confidences, bounds, decided sets, step counts, or admission order.
    """

    CLIENTS = 6
    LIVE_CONFIG = ServiceConfig(refine_lanes=2)
    REPLAY_CONFIG = ServiceConfig(refine_lanes=0)

    def test_stats_report_the_lane_count(self):
        with QueryService(demo_database(), config=self.LIVE_CONFIG) as svc:
            assert svc.stats()["refine_lanes"] == 2
        with QueryService(demo_database()) as svc:
            # config default defers to the engine default (REPRO_LANES).
            assert svc.stats()["refine_lanes"] == svc.engine.refine_lanes

    def test_config_rejects_negative_lanes(self):
        with pytest.raises(PlanningError):
            ServiceConfig(refine_lanes=-1)

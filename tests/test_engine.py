"""End-to-end tests of the SPROUT engine against possible-worlds enumeration."""

import pytest

from repro.errors import NonHierarchicalQueryError, PlanningError, UnsupportedQueryError
from repro import Atom, ConjunctiveQuery, ProbabilisticDatabase, SproutEngine
from repro.algebra import Comparison, Disjunction
from repro.prob import confidences_by_enumeration
from repro.sprout import evaluate_deterministic
from repro.storage import Relation, Schema

from helpers import assert_confidences_close, build_paper_database, paper_query


ALL_PLANS = ("lazy", "eager", "hybrid", "lineage")


def enumerate_truth(db, query):
    return confidences_by_enumeration(db, lambda instance: evaluate_deterministic(query, instance))


class TestPaperExample:
    """The Introduction's query Q on the Fig. 1 database: confidence 0.0028."""

    @pytest.mark.parametrize("plan", ALL_PLANS)
    def test_all_plan_styles(self, paper_db, paper_q, paper_engine, plan):
        result = paper_engine.evaluate(paper_q, plan=plan)
        assert_confidences_close(result.confidences(), {("1995-01-10",): 0.0028}, 1e-12)

    @pytest.mark.parametrize("conf_method", ("scans", "semantics"))
    def test_confidence_methods(self, paper_engine, paper_q, conf_method):
        result = paper_engine.evaluate(paper_q, conf_method=conf_method)
        assert result.confidences()[("1995-01-10",)] == pytest.approx(0.0028)

    def test_boolean_confidence(self, paper_engine, paper_q):
        result = paper_engine.evaluate(paper_q.boolean_version())
        assert result.boolean_confidence() == pytest.approx(0.0028)

    def test_signatures_with_and_without_fds(self, paper_engine, paper_q):
        assert str(paper_engine.signature_for(paper_q, use_fds=True)) == "(Cust (Ord Item*)*)*"
        with_fds = paper_engine.evaluate(paper_q, use_fds=True)
        without_fds = paper_engine.evaluate(paper_q, use_fds=False)
        assert with_fds.scans_used <= without_fds.scans_used
        assert_confidences_close(with_fds.confidences(), without_fds.confidences())

    def test_matches_possible_worlds(self, paper_db, paper_q, paper_engine):
        truth = enumerate_truth(paper_db, paper_q)
        assert_confidences_close(paper_engine.evaluate(paper_q).confidences(), truth)

    def test_disk_materialisation_flag(self, paper_engine, paper_q):
        result = paper_engine.evaluate(paper_q, materialize_to_disk=True)
        assert result.confidences()[("1995-01-10",)] == pytest.approx(0.0028)

    def test_explicit_join_order(self, paper_engine, paper_q):
        result = paper_engine.evaluate(paper_q, join_order=["Item", "Ord", "Cust"])
        assert result.join_order == ["Item", "Ord", "Cust"]
        assert result.confidences()[("1995-01-10",)] == pytest.approx(0.0028)


class TestMoreQueriesAgainstEnumeration:
    """Several query shapes, every plan style, validated by world enumeration."""

    def queries(self):
        atoms = paper_query().atoms
        yield paper_query()
        yield ConjunctiveQuery("no-selection", atoms, projection=["odate"])
        yield ConjunctiveQuery("cname-head", atoms, projection=["cname", "odate"])
        yield ConjunctiveQuery("boolean", atoms)
        yield ConjunctiveQuery(
            "two-tables",
            [Atom("Cust", ["ckey", "cname"]), Atom("Ord", ["okey", "ckey", "odate"])],
            projection=["cname"],
        )
        yield ConjunctiveQuery(
            "single", [Atom("Ord", ["okey", "ckey", "odate"])], projection=["ckey"]
        )
        yield ConjunctiveQuery(
            "selection-disjunction",
            [Atom("Ord", ["okey", "ckey", "odate"])],
            projection=["ckey"],
            selections=Disjunction(
                [Comparison("odate", "<", "1994-01-01"), Comparison("odate", ">", "1996-06-01")]
            ),
        )

    @pytest.mark.parametrize("plan", ALL_PLANS)
    def test_against_enumeration(self, paper_db, plan):
        engine = SproutEngine(paper_db)
        for query in self.queries():
            truth = enumerate_truth(paper_db, query)
            result = engine.evaluate(query, plan=plan)
            assert_confidences_close(result.confidences(), truth)

    def test_product_query(self):
        db = ProbabilisticDatabase("prod")
        db.add_table(Relation("R", Schema.of("a:int"), [(1,), (2,)]), probabilities=[0.5, 0.5])
        db.add_table(Relation("S", Schema.of("b:int"), [(7,)]), probabilities=[0.25])
        query = ConjunctiveQuery("product", [Atom("R", ["a"]), Atom("S", ["b"])])
        truth = enumerate_truth(db, query)
        engine = SproutEngine(db)
        for plan in ALL_PLANS:
            assert_confidences_close(engine.evaluate(query, plan=plan).confidences(), truth)

    def test_empty_answer(self, paper_db):
        engine = SproutEngine(paper_db)
        query = ConjunctiveQuery(
            "empty",
            paper_query().atoms,
            projection=["odate"],
            selections=Comparison("cname", "=", "Nobody"),
        )
        for plan in ALL_PLANS:
            result = engine.evaluate(query, plan=plan)
            assert result.confidences() == {}
        assert engine.evaluate(query.boolean_version()).boolean_confidence() == 0.0


class TestHardQueries:
    def hard_query(self):
        # Q' of the Introduction: Item without ckey.
        return ConjunctiveQuery(
            "Qprime",
            [
                Atom("Cust", ["ckey", "cname"]),
                Atom("Ord", ["okey", "ckey", "odate"]),
                Atom("Item", ["okey", "discount"]),
            ],
            projection=["odate"],
            selections=Comparison("cname", "=", "Joe"),
        )

    def test_unsafe_routed_to_dtree_without_fds(self, paper_db):
        db_without_keys = build_paper_database()
        # paper_db declares okey as key of Ord, which makes Q' tractable; build
        # a database without that key to exercise the unsafe-query path.
        fresh = ProbabilisticDatabase("no-keys")
        for name in ("Cust", "Ord", "Item"):
            table = db_without_keys.table(name)
            data = table.relation.project(list(table.data_schema.names))
            fresh.add_table(data, probabilities=0.5, name=name)
        engine = SproutEngine(fresh)
        assert not engine.is_tractable(self.hard_query())
        # Operator plans cannot process the query (no hierarchical signature
        # exists), so the engine routes it to the d-tree path instead of
        # raising, and the result is still exact.
        result = engine.evaluate(self.hard_query(), plan="lazy")
        assert result.plan_style == "dtree"
        assert result.confidence == "exact"
        truth = enumerate_truth(fresh, self.hard_query())
        assert_confidences_close(result.confidences(), truth)
        with pytest.raises(NonHierarchicalQueryError):
            engine.signature_for(self.hard_query())

    def test_lineage_fallback_still_works(self, paper_db):
        engine = SproutEngine(paper_db)
        truth = enumerate_truth(paper_db, self.hard_query())
        result = engine.evaluate(self.hard_query(), plan="lineage")
        assert_confidences_close(result.confidences(), truth)

    def test_tractable_with_fd(self, paper_db):
        # okey -> ckey holds (okey is the key of Ord), so Q' is tractable here.
        engine = SproutEngine(paper_db)
        assert engine.is_tractable(self.hard_query())
        truth = enumerate_truth(paper_db, self.hard_query())
        for plan in ("lazy", "eager", "hybrid"):
            assert_confidences_close(
                engine.evaluate(self.hard_query(), plan=plan).confidences(), truth
            )


class TestEngineValidation:
    def test_unknown_plan_style(self, paper_engine, paper_q):
        with pytest.raises(PlanningError):
            paper_engine.evaluate(paper_q, plan="magic")

    def test_unknown_conf_method(self, paper_engine, paper_q):
        with pytest.raises(PlanningError):
            paper_engine.evaluate(paper_q, conf_method="guess")

    def test_cross_table_selection_rejected(self, paper_engine):
        query = ConjunctiveQuery(
            "spanning",
            paper_query().atoms,
            projection=["odate"],
            selections=Disjunction(
                [Comparison("cname", "=", "Joe"), Comparison("discount", ">", 0.3)]
            ),
        )
        with pytest.raises(UnsupportedQueryError):
            paper_engine.evaluate(query)

    def test_explain(self, paper_engine, paper_q):
        text = paper_engine.explain(paper_q, plan="lazy")
        assert "signature" in text and "join order" in text
        eager_text = paper_engine.explain(paper_q, plan="eager")
        assert "hierarchy join order" in eager_text
        lineage_text = paper_engine.explain(paper_q, plan="lineage")
        assert "lineage" in lineage_text

    def test_summary_and_metrics(self, paper_engine, paper_q):
        result = paper_engine.evaluate(paper_q)
        assert result.total_seconds >= 0
        assert result.answer_rows == 2
        assert result.distinct_tuples == 1
        assert "Q" in result.summary()

    def test_boolean_confidence_on_non_boolean_answer(self, paper_engine):
        query = ConjunctiveQuery("multi", paper_query().atoms, projection=["odate"])
        result = paper_engine.evaluate(query)
        assert len(result.confidences()) > 1
        with pytest.raises(PlanningError):
            result.boolean_confidence()


class TestEngineInstrumentation:
    """The cache-counter and backend surfaces added with the columnar core."""

    @staticmethod
    def unsafe_workload():
        """q(a) :- R(a, x), S(x, y), T(y): unsafe, so top-k hits the cache."""
        db = ProbabilisticDatabase("chain-db")
        db.add_table(
            Relation("R", Schema.of("a:int", "x:int"), [(0, 0), (0, 1), (1, 1)]),
            probabilities=[0.8, 0.3, 0.6],
        )
        db.add_table(
            Relation("S", Schema.of("x:int", "y:int"), [(0, 0), (1, 1), (1, 0)]),
            probabilities=[0.45, 0.85, 0.75],
        )
        db.add_table(
            Relation("T", Schema.of("y:int"), [(0,), (1,)]), probabilities=[0.9, 0.35]
        )
        query = ConjunctiveQuery(
            "chain",
            [Atom("R", ["a", "x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])],
            projection=["a"],
        )
        return db, query

    @pytest.mark.parametrize("shared", (True, False))
    def test_cache_stats_counters(self, shared):
        db, query = self.unsafe_workload()
        with SproutEngine(db, workers=0, shared_lineage=shared) as engine:
            stats = engine.cache_stats()
            assert stats == {
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "entries": 0,
                "shared_lineage": shared,
                "backend": engine.backend,
                "closed": False,
                "pool_respawns": 0,
                "pool_fallbacks": 0,
            }
            engine.evaluate_topk(query, k=1)
            warmed = engine.cache_stats()
            assert warmed["misses"] >= 1
            assert warmed["entries"] >= 1
            engine.evaluate_topk(query, k=1)
            assert engine.cache_stats()["hits"] >= 1

    def test_cache_stats_on_closed_engine_is_a_stable_snapshot(self):
        db, query = self.unsafe_workload()
        engine = SproutEngine(db, workers=0)
        engine.evaluate_topk(query, k=1)
        live = engine.cache_stats()
        engine.close()
        snapshot = engine.cache_stats()
        # The snapshot freezes the last live counters (entries included, even
        # though close() cleared the cache itself) and marks itself closed.
        assert snapshot["closed"] is True
        for key in ("hits", "misses", "evictions", "entries"):
            assert snapshot[key] == live[key]
        engine.close()  # idempotent: a second close keeps the same snapshot
        assert engine.cache_stats() == snapshot

    def test_close_survives_a_broken_worker_pool(self):
        db, query = self.unsafe_workload()
        engine = SproutEngine(db, workers=0)
        engine.evaluate_topk(query, k=1)

        class BrokenExecutor:
            def close(self):
                raise RuntimeError("pool already torn down")

        engine._executors["broken"] = BrokenExecutor()
        engine.close()  # must swallow the executor failure, not propagate it
        assert engine.cache_stats()["closed"] is True
        assert engine._executors == {}
        # The engine resurrects on use: evaluation reopens it.
        result = engine.evaluate_topk(query, k=1)
        assert len(result.relation) == 1
        assert engine.cache_stats()["closed"] is False
        engine.close()

    def test_results_surface_the_backend(self, paper_db, paper_q):
        with SproutEngine(paper_db) as engine:
            result = engine.evaluate(paper_q)
            assert result.backend == engine.backend
            assert engine.backend in ("numpy", "python")

    def test_vectorize_off_forces_python_backend(self, paper_db, paper_q):
        with SproutEngine(paper_db, vectorize=False) as scalar:
            assert scalar.backend == "python"
            scalar_result = scalar.evaluate(paper_q, plan="dtree")
            assert scalar_result.backend == "python"
        with SproutEngine(paper_db) as default:
            default_result = default.evaluate(paper_q, plan="dtree")
        assert scalar_result.confidences() == default_result.confidences()
